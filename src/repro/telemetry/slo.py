"""SLO burn-rate tracking: multi-window error budgets for the serving tier.

Implements the multi-window, multi-burn-rate alerting pattern (Google SRE
workbook): each objective is evaluated over a *short* and a *long*
trailing window, and an alert fires only when **both** windows exceed a
burn-rate threshold — the long window proves the budget is really being
spent, the short window proves it is *still* being spent (so alerts clear
promptly once the bleeding stops).

Two objectives ship by default:

* **availability** — fraction of requests that did not fail (5xx /
  handler error).  Deliberate load shedding (429/503 with ``Retry-After``)
  is *not* an SLO violation: backpressure is the system working as
  designed, and it is tracked separately by the windowed counters.
* **latency** — fraction of requests completing under a target; the
  budget is the tolerated fraction of slow requests (default 1%, i.e. the
  target is effectively a p99 bound).

Windows default to 60 s / 600 s — the canonical 5 m / 1 h pair scaled
~5× for sim-time compression, overridable per tracker.  Burn thresholds
follow the workbook: fast = 14.4 (2% of a 30-day budget in an hour →
page), slow = 6.0 (5% in six hours → warn).
"""

from __future__ import annotations

import time
from typing import Any, Callable

from .timeseries import RingCounter

__all__ = ["SLOTracker", "Objective", "FAST_BURN", "SLOW_BURN"]

#: Burn-rate thresholds (multiples of sustainable budget spend).
FAST_BURN = 14.4
SLOW_BURN = 6.0

#: Default short/long evaluation windows, seconds (5m/1h scaled to sim time).
SHORT_WINDOW_S = 60.0
LONG_WINDOW_S = 600.0

#: Alert severity order, for taking the worst across objectives.
_SEVERITY = {"ok": 0, "warn": 1, "page": 2}


class Objective:
    """One SLI with a fractional error budget, observed over two windows."""

    def __init__(
        self,
        name: str,
        budget: float,
        short_window_s: float = SHORT_WINDOW_S,
        long_window_s: float = LONG_WINDOW_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 < budget < 1.0:
            raise ValueError(f"budget must be a fraction in (0, 1), got {budget}")
        self.name = name
        self.budget = budget
        self.short_window_s = short_window_s
        self.long_window_s = long_window_s
        # Per window: one ring for total events, one for bad events.
        self._total_short = RingCounter(short_window_s, clock=clock)
        self._bad_short = RingCounter(short_window_s, clock=clock)
        self._total_long = RingCounter(long_window_s, clock=clock)
        self._bad_long = RingCounter(long_window_s, clock=clock)

    def record(self, good: bool, now: float | None = None) -> None:
        self._total_short.add(1.0, now)
        self._total_long.add(1.0, now)
        if not good:
            self._bad_short.add(1.0, now)
            self._bad_long.add(1.0, now)

    @staticmethod
    def _burn(bad: float, total: float, budget: float) -> float:
        if total <= 0:
            return 0.0
        return (bad / total) / budget

    def snapshot(self, now: float | None = None) -> dict[str, Any]:
        total_s = self._total_short.total(now)
        bad_s = self._bad_short.total(now)
        total_l = self._total_long.total(now)
        bad_l = self._bad_long.total(now)
        burn_short = self._burn(bad_s, total_s, self.budget)
        burn_long = self._burn(bad_l, total_l, self.budget)
        if burn_short >= FAST_BURN and burn_long >= FAST_BURN:
            state = "page"
        elif burn_short >= SLOW_BURN and burn_long >= SLOW_BURN:
            state = "warn"
        else:
            state = "ok"
        bad_frac_long = (bad_l / total_l) if total_l > 0 else 0.0
        return {
            "objective": self.name,
            "budget": self.budget,
            "state": state,
            "burn_short": round(burn_short, 4),
            "burn_long": round(burn_long, 4),
            "window_short_s": self.short_window_s,
            "window_long_s": self.long_window_s,
            "events_short": total_s,
            "bad_short": bad_s,
            "events_long": total_l,
            "bad_long": bad_l,
            # Fraction of the long-window budget still unspent, clamped ≥ 0.
            "budget_remaining": round(max(0.0, 1.0 - bad_frac_long / self.budget), 4),
        }


class SLOTracker:
    """Availability + latency objectives for one service surface."""

    def __init__(
        self,
        availability_budget: float = 0.001,
        latency_target_s: float = 0.5,
        latency_budget: float = 0.01,
        short_window_s: float = SHORT_WINDOW_S,
        long_window_s: float = LONG_WINDOW_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.latency_target_s = latency_target_s
        self.availability = Objective(
            "availability", availability_budget, short_window_s, long_window_s, clock
        )
        self.latency = Objective(
            "latency", latency_budget, short_window_s, long_window_s, clock
        )

    def record(
        self,
        ok: bool,
        latency_s: float | None = None,
        now: float | None = None,
    ) -> None:
        """Record one served request.

        ``ok=False`` spends availability budget.  ``latency_s`` (when the
        request completed at all) spends latency budget if it exceeds the
        target; failed requests don't double-count against latency.
        """
        self.availability.record(ok, now)
        if ok and latency_s is not None:
            self.latency.record(latency_s <= self.latency_target_s, now)

    def snapshot(self, now: float | None = None) -> dict[str, Any]:
        objectives = [
            self.availability.snapshot(now),
            self.latency.snapshot(now),
        ]
        worst = max(objectives, key=lambda o: _SEVERITY[o["state"]])
        return {
            "state": worst["state"],
            "latency_target_s": self.latency_target_s,
            "objectives": objectives,
        }

    def state(self, now: float | None = None) -> str:
        return self.snapshot(now)["state"]
