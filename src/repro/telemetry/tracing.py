"""Lightweight distributed-style tracing for the reproduction pipeline.

The SC'03 system is an *end-to-end* chain — portal request → VO services →
Chimera VDL → Pegasus planning → DAGMan/Condor execution → galMorph
kernels — and operating it at campaign scale requires seeing where time
goes in that chain.  This module provides the span primitives:

* :class:`Tracer` — an append-only, thread-safe store of finished span
  records with JSONL export;
* contextvar-propagated trace/span ids, so a span opened on a worker
  thread (via ``contextvars.copy_context()``) or re-attached in a worker
  *process* (via :class:`TraceContext`) still parents correctly;
* monotonic timings relative to the tracer epoch (small floats, stable
  under clock adjustments);
* synthetic spans with caller-supplied clocks (the discrete-event
  simulator records spans in *virtual* seconds, tagged ``clock="sim"``).

The zero-cost-when-disabled guard lives in :mod:`repro.telemetry`
(``trace_span`` returns a shared no-op handle when telemetry is off);
nothing in this module is imported on the hot path unless enabled.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable

__all__ = [
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "current_ids",
    "set_current",
    "CURRENT_SPAN",
]

#: (trace_id, span_id) of the innermost open span in this execution context.
CURRENT_SPAN: contextvars.ContextVar[tuple[str, str] | None] = contextvars.ContextVar(
    "repro_telemetry_span", default=None
)

_COUNTER = itertools.count(1)


def _pid_salt() -> str:
    return f"{os.getpid():x}"


def new_span_id() -> str:
    """Process-unique span id (pid salt + monotone counter)."""
    return f"s{_pid_salt()}-{next(_COUNTER):x}"


def new_trace_id() -> str:
    """Globally unique trace id."""
    return f"t{_pid_salt()}-{uuid.uuid4().hex[:10]}"


@dataclass(frozen=True)
class TraceContext:
    """Picklable (trace id, span id) pair for cross-process propagation.

    Capture it in the parent with :func:`repro.telemetry.capture_context`,
    ship it to a ``ProcessPoolExecutor`` worker, and re-attach with
    :func:`repro.telemetry.run_with_context`; spans opened in the worker
    then carry the parent's trace id and parent span id.
    """

    trace_id: str
    span_id: str


#: A finished span, as stored and exported.  Plain dict for JSONL friendliness.
SpanRecord = dict


def current_ids() -> tuple[str, str] | None:
    """(trace_id, span_id) of the innermost open span, or ``None``."""
    return CURRENT_SPAN.get()


def set_current(ids: tuple[str, str] | None) -> contextvars.Token:
    """Set the current span ids; returns the token for resetting."""
    return CURRENT_SPAN.set(ids)


class Tracer:
    """Append-only, thread-safe store of finished span records.

    Timings are seconds relative to the tracer's creation (monotonic
    clock), so exported traces contain small, comparable floats.  Records
    from worker processes (whose epochs differ) are ingested verbatim and
    tagged with their origin pid; their *durations* remain meaningful.
    """

    def __init__(self, max_spans: int | None = None) -> None:
        self._lock = threading.Lock()
        self._records: list[SpanRecord] | deque[SpanRecord] = (
            list() if max_spans is None else deque(maxlen=max_spans)
        )
        self._listeners: list[Callable[[SpanRecord], None]] = []
        self.epoch_wall = time.time()
        self._epoch = time.perf_counter()

    # -- clocks ---------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the tracer epoch (monotonic)."""
        return time.perf_counter() - self._epoch

    # -- recording -----------------------------------------------------------
    def add(self, record: SpanRecord) -> SpanRecord:
        with self._lock:
            self._records.append(record)
            listeners = tuple(self._listeners)
        for listener in listeners:
            listener(record)
        return record

    def ingest(self, records: Iterable[SpanRecord]) -> int:
        """Adopt records produced elsewhere (worker processes); returns the
        number ingested."""
        batch = list(records)
        with self._lock:
            self._records.extend(batch)
            listeners = tuple(self._listeners)
        for listener in listeners:
            for record in batch:
                listener(record)
        return len(batch)

    def subscribe(self, listener: Callable[[SpanRecord], None]) -> Callable[[], None]:
        """Call ``listener`` for every span as it lands; returns an
        unsubscribe callable.  Listeners run outside the tracer lock and
        must not raise — the flight recorder is the intended consumer."""
        with self._lock:
            self._listeners.append(listener)

        def _unsubscribe() -> None:
            with self._lock:
                try:
                    self._listeners.remove(listener)
                except ValueError:
                    pass

        return _unsubscribe

    def spans(self) -> list[SpanRecord]:
        """Snapshot of all finished spans, in completion order."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    # -- export ---------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per line, one line per finished span."""
        return "".join(
            json.dumps(rec, sort_keys=True, default=str) + "\n" for rec in self.spans()
        )

    def export_jsonl(self, path: str | os.PathLike) -> int:
        """Write the JSONL trace to ``path``; returns the span count."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as fh:
            for rec in spans:
                fh.write(json.dumps(rec, sort_keys=True, default=str) + "\n")
        return len(spans)


def load_trace_jsonl(source: str | os.PathLike) -> list[SpanRecord]:
    """Parse a JSONL trace from a path; skips blank lines."""
    with open(source, "r", encoding="utf-8") as fh:
        return parse_trace_jsonl(fh.read())


def parse_trace_jsonl(text: str) -> list[SpanRecord]:
    """Parse JSONL trace text into span records."""
    records: list[SpanRecord] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed trace line {lineno}: {exc}") from exc
        if not isinstance(rec, dict) or "name" not in rec or "span" not in rec:
            raise ValueError(f"trace line {lineno} is not a span record")
        records.append(rec)
    return records


def make_record(
    name: str,
    trace_id: str,
    span_id: str,
    parent_id: str | None,
    start: float,
    end: float,
    status: str = "ok",
    clock: str = "wall",
    attrs: dict[str, Any] | None = None,
) -> SpanRecord:
    """Assemble the canonical span-record dict (the JSONL line schema)."""
    return {
        "name": name,
        "trace": trace_id,
        "span": span_id,
        "parent": parent_id,
        "start": round(float(start), 9),
        "end": round(float(end), 9),
        "dur": round(float(end) - float(start), 9),
        "status": status,
        "clock": clock,
        "pid": os.getpid(),
        "attrs": attrs or {},
    }
