"""Dependency-free metrics registry: counters, gauges, histograms.

Prometheus-shaped but with no client-library dependency: metric families
are identified by ``snake_case`` names ending in the conventional suffixes
(``*_total`` counters, ``*_seconds`` histograms), label sets are plain
keyword arguments, and histograms use fixed cumulative buckets.  The
registry is thread-safe (one lock per family) and picklable-dumpable so
worker processes can ship their deltas back to the parent
(:meth:`MetricsRegistry.dump` / :meth:`MetricsRegistry.merge`).

Export formats live in :mod:`repro.telemetry.exporters`.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default latency buckets (seconds), tuned to the galMorph kernel range.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: A label set as stored: sorted (key, value) pairs.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared machinery: a named family of labelled series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not name or not name.replace("_", "a").replace(":", "a").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class Counter(_Metric):
    """Monotonically increasing counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (amount={amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across all label sets."""
        with self._lock:
            return sum(self._values.values())

    def samples(self) -> list[tuple[LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())


class Gauge(_Metric):
    """A value that can go up and down (pool load, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> list[tuple[LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())


class Histogram(_Metric):
    """Fixed-bucket histogram with per-series sum and count.

    Buckets are upper bounds; export is cumulative with a ``+Inf`` bucket,
    matching the Prometheus text exposition format.
    """

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.buckets = bounds
        # per label set: (per-bucket non-cumulative counts + overflow, sum, count)
        self._series: dict[LabelKey, tuple[list[int], float, int]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        v = float(value)
        key = _label_key(labels)
        with self._lock:
            counts, total, n = self._series.get(key, (None, 0.0, 0))
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
            idx = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if v <= bound:
                    idx = i
                    break
            counts[idx] += 1
            self._series[key] = (counts, total + v, n + 1)

    def snapshot(self, **labels: Any) -> dict[str, Any]:
        """Cumulative bucket counts, sum and count for one label set."""
        key = _label_key(labels)
        with self._lock:
            counts, total, n = self._series.get(
                key, ([0] * (len(self.buckets) + 1), 0.0, 0)
            )
            counts = list(counts)
        cumulative: list[int] = []
        running = 0
        for c in counts:
            running += c
            cumulative.append(running)
        snap = {
            "buckets": {
                **{str(b): cumulative[i] for i, b in enumerate(self.buckets)},
                "+Inf": cumulative[-1],
            },
            "sum": total,
            "count": n,
        }
        for q in (50, 95, 99):
            snap[f"p{q}"] = self._bucket_quantile(cumulative, n, q)
        return snap

    def _bucket_quantile(self, cumulative: list[int], n: int, q: float) -> float | None:
        """Nearest-rank quantile estimate from cumulative bucket counts.

        Returns the upper bound of the bucket holding the rank — an upper
        estimate, exact only up to bucket resolution.  Samples landing in
        the ``+Inf`` overflow clamp to the largest finite bound so the
        result stays JSON-serialisable.
        """
        if n == 0:
            return None
        rank = max(1, -(-n * q // 100))  # ceil(n*q/100)
        for i, bound in enumerate(self.buckets):
            if cumulative[i] >= rank:
                return bound
        return self.buckets[-1]

    def series_keys(self) -> list[LabelKey]:
        with self._lock:
            return sorted(self._series)

    def raw_series(self) -> dict[LabelKey, tuple[list[int], float, int]]:
        with self._lock:
            return {k: (list(c), s, n) for k, (c, s, n) in self._series.items()}


class MetricsRegistry:
    """Named families of counters/gauges/histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated calls
    with the same name return the same family, and a name registered as
    one kind cannot be re-registered as another.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # -- family management ------------------------------------------------------
    def _get_or_create(self, cls: type, name: str, help: str, **kwargs: Any) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"not {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)  # type: ignore[return-value]

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def families(self) -> list[_Metric]:
        """All metric families, sorted by name."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- cross-process merge ---------------------------------------------------
    def dump(self) -> dict[str, Any]:
        """Picklable snapshot for shipping worker-process metrics home."""
        out: dict[str, Any] = {}
        for metric in self.families():
            if isinstance(metric, Histogram):
                out[metric.name] = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "buckets": metric.buckets,
                    "series": {k: v for k, v in metric.raw_series().items()},
                }
            else:
                out[metric.name] = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "series": dict(metric.samples()),  # type: ignore[union-attr]
                }
        return out

    def merge(self, dumped: Mapping[str, Any]) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        Counters and histograms add; gauges take the incoming value (last
        writer wins — gauges are instantaneous by definition).
        """
        for name, payload in dumped.items():
            kind = payload["kind"]
            if kind == "counter":
                metric = self.counter(name, payload.get("help", ""))
                for key, value in payload["series"].items():
                    metric.inc(value, **dict(key))
            elif kind == "gauge":
                metric = self.gauge(name, payload.get("help", ""))
                for key, value in payload["series"].items():
                    metric.set(value, **dict(key))
            elif kind == "histogram":
                metric = self.histogram(
                    name, payload.get("help", ""), buckets=payload["buckets"]
                )
                if metric.buckets != tuple(payload["buckets"]):
                    raise ValueError(
                        f"histogram {name!r} bucket mismatch on merge"
                    )
                with metric._lock:
                    for key, (counts, total, n) in payload["series"].items():
                        have = metric._series.get(key)
                        if have is None:
                            metric._series[key] = (list(counts), total, n)
                        else:
                            merged = [a + b for a, b in zip(have[0], counts)]
                            metric._series[key] = (merged, have[1] + total, have[2] + n)
            else:  # pragma: no cover - future kinds
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
