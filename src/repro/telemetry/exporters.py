"""Metric exporters: Prometheus text exposition format and JSON.

The Prometheus renderer follows the text-based exposition format
(``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket{le=...}`` series,
``_sum``/``_count`` for histograms, escaped label values); the bundled
:func:`parse_prometheus_text` is a strict-enough parser used by the
exporter golden tests and ``repro telemetry report --selftest`` to prove
the output round-trips.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["to_prometheus_text", "to_json", "parse_prometheus_text"]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(key: tuple[tuple[str, str], ...], extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = list(key) + list(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render every family in the registry as Prometheus exposition text."""
    lines: list[str] = []
    for metric in registry.families():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            samples = metric.samples()
            if not samples:
                lines.append(f"{metric.name} 0")
            for key, value in samples:
                lines.append(f"{metric.name}{_render_labels(key)} {_format_value(value)}")
        elif isinstance(metric, Histogram):
            for key in metric.series_keys() or [()]:
                snap = metric.snapshot(**dict(key))
                for bound, count in snap["buckets"].items():
                    le = bound if bound == "+Inf" else _format_value(float(bound))
                    lines.append(
                        f"{metric.name}_bucket{_render_labels(key, (('le', le),))} {count}"
                    )
                lines.append(
                    f"{metric.name}_sum{_render_labels(key)} {_format_value(snap['sum'])}"
                )
                lines.append(f"{metric.name}_count{_render_labels(key)} {snap['count']}")
    return "\n".join(lines) + "\n"


def to_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    """JSON snapshot: ``{name: {kind, help, series: [{labels, ...}]}}``."""
    out: dict[str, Any] = {}
    for metric in registry.families():
        entry: dict[str, Any] = {"kind": metric.kind, "help": metric.help, "series": []}
        if isinstance(metric, (Counter, Gauge)):
            for key, value in metric.samples():
                entry["series"].append({"labels": dict(key), "value": value})
        elif isinstance(metric, Histogram):
            for key in metric.series_keys():
                snap = metric.snapshot(**dict(key))
                entry["series"].append({"labels": dict(key), **snap})
        out[metric.name] = entry
    return json.dumps(out, indent=indent, sort_keys=True)


# -- validation ----------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[+-]?(?:Inf|NaN|[0-9.eE+-]+))\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Parse exposition text into ``{name: [(labels, value), ...]}``.

    Raises :class:`ValueError` on any line that is neither a comment nor a
    well-formed sample — the contract the exporter golden tests enforce.
    """
    samples: dict[str, list[tuple[dict[str, str], float]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unknown comment form {line!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            consumed = 0
            for lm in _LABEL_RE.finditer(raw):
                labels[lm.group(1)] = (
                    lm.group(2)
                    .replace(r"\n", "\n")
                    .replace(r"\"", '"')
                    .replace(r"\\", "\\")
                )
                consumed += len(lm.group(0))
            stripped = re.sub(r"[,\s]", "", raw)
            matched = re.sub(r"[,\s]", "", "".join(m.group(0) for m in _LABEL_RE.finditer(raw)))
            if stripped != matched:
                raise ValueError(f"line {lineno}: malformed labels {raw!r}")
        value_text = match.group("value")
        if value_text in ("+Inf", "Inf"):
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        elif value_text == "NaN":
            value = math.nan
        else:
            value = float(value_text)
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples
