"""``repro telemetry report --selftest``: end-to-end check of the pipeline.

Exercises every stage the CLI depends on, with no external files:

1. parse an embedded reference trace (a trimmed recording of a demo
   ``analyze`` run, sim-clock node spans included);
2. walk parent ids: every span must reach a root, and the hierarchy must
   contain the portal -> service -> planner -> condor chain;
3. compute the critical path and render the full report, checking each
   section header appears;
4. round-trip a metrics registry through the Prometheus text format.

Returns a process exit code (0 ok / 1 failure), printing what failed.
"""

from __future__ import annotations

from repro.telemetry.exporters import parse_prometheus_text, to_prometheus_text
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.report import critical_path, node_spans, render_report, summarize
from repro.telemetry.tracing import parse_trace_jsonl

__all__ = ["REFERENCE_TRACE_JSONL", "run_selftest"]

#: A trimmed, hand-checked trace of one portal analysis: the Figure 5 walk
#: (portal -> services -> compute service -> planner -> condor -> kernels)
#: with four sim-clock DAG-node spans carrying ``deps`` edges.
REFERENCE_TRACE_JSONL = """\
{"name": "portal.run_analysis", "trace": "t0-ref", "span": "s1", "parent": null, "start": 0.0, "end": 9.5, "dur": 9.5, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"cluster": "A3526", "galaxies": 4}}
{"name": "portal.select_cluster", "trace": "t0-ref", "span": "s2", "parent": "s1", "start": 0.0, "end": 0.4, "dur": 0.4, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"cluster": "A3526", "images": 10}}
{"name": "service.sia_query", "trace": "t0-ref", "span": "s3", "parent": "s2", "start": 0.1, "end": 0.3, "dur": 0.2, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"survey": "SYNTH-DSS", "records": 8}}
{"name": "portal.build_catalog", "trace": "t0-ref", "span": "s4", "parent": "s1", "start": 0.4, "end": 1.1, "dur": 0.7, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"matched": 4}}
{"name": "service.cone_search", "trace": "t0-ref", "span": "s5", "parent": "s4", "start": 0.5, "end": 0.8, "dur": 0.3, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"service": "SyntheticPhotometryCatalog", "records": 4}}
{"name": "portal.resolve_cutouts", "trace": "t0-ref", "span": "s6", "parent": "s1", "start": 1.1, "end": 1.9, "dur": 0.8, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"resolved": 4}}
{"name": "portal.submit_and_wait", "trace": "t0-ref", "span": "s7", "parent": "s1", "start": 1.9, "end": 9.0, "dur": 7.1, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"polls": 1}}
{"name": "service.request", "trace": "t0-ref", "span": "s8", "parent": "s7", "start": 2.0, "end": 8.8, "dur": 6.8, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"cluster": "A3526", "out": "A3526-morphology.vot"}}
{"name": "service.collect_images", "trace": "t0-ref", "span": "s9", "parent": "s8", "start": 2.1, "end": 3.0, "dur": 0.9, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"downloaded": 4, "cached": 0}}
{"name": "service.vdl_generate", "trace": "t0-ref", "span": "s10", "parent": "s8", "start": 3.0, "end": 3.2, "dur": 0.2, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"galaxies": 4}}
{"name": "vdl.compose", "trace": "t0-ref", "span": "s11", "parent": "s8", "start": 3.2, "end": 3.4, "dur": 0.2, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"requested": 1, "jobs": 5}}
{"name": "pegasus.plan", "trace": "t0-ref", "span": "s12", "parent": "s8", "start": 3.4, "end": 4.0, "dur": 0.6, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"jobs": 5, "concrete_nodes": 14}}
{"name": "pegasus.rls_resolution", "trace": "t0-ref", "span": "s13", "parent": "s12", "start": 3.4, "end": 3.5, "dur": 0.1, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"logical": 9, "physical": 4}}
{"name": "pegasus.reduction", "trace": "t0-ref", "span": "s14", "parent": "s12", "start": 3.5, "end": 3.6, "dur": 0.1, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"before": 5, "after": 5, "pruned": 0}}
{"name": "pegasus.concretize", "trace": "t0-ref", "span": "s15", "parent": "s12", "start": 3.6, "end": 3.9, "dur": 0.3, "status": "ok", "clock": "wall", "pid": 1, "attrs": {}}
{"name": "condor.execute", "trace": "t0-ref", "span": "s16", "parent": "s8", "start": 4.0, "end": 8.7, "dur": 4.7, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"mode": "simulate", "nodes": 14, "succeeded": true}}
{"name": "condor.node", "trace": "t0-ref", "span": "s17", "parent": "s16", "start": 0.0, "end": 2.1, "dur": 2.1, "status": "ok", "clock": "sim", "pid": 1, "attrs": {"node": "stage-in-g1.fit", "kind": "transfer", "site": "pool-a", "attempts": 1, "deps": []}}
{"name": "condor.node", "trace": "t0-ref", "span": "s18", "parent": "s16", "start": 2.1, "end": 14.3, "dur": 12.2, "status": "ok", "clock": "sim", "pid": 1, "attrs": {"node": "dv-g1", "kind": "compute", "site": "pool-a", "attempts": 1, "deps": ["stage-in-g1.fit"]}}
{"name": "condor.node", "trace": "t0-ref", "span": "s19", "parent": "s16", "start": 2.1, "end": 13.1, "dur": 11.0, "status": "ok", "clock": "sim", "pid": 1, "attrs": {"node": "dv-g2", "kind": "compute", "site": "pool-b", "attempts": 2, "deps": ["stage-in-g1.fit"]}}
{"name": "condor.node", "trace": "t0-ref", "span": "s20", "parent": "s16", "start": 14.3, "end": 19.4, "dur": 5.1, "status": "ok", "clock": "sim", "pid": 1, "attrs": {"node": "dv-concat", "kind": "compute", "site": "pool-a", "attempts": 1, "deps": ["dv-g1", "dv-g2"]}}
{"name": "galmorph.batch", "trace": "t0-ref", "span": "s21", "parent": "s16", "start": 5.0, "end": 8.0, "dur": 3.0, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"n": 4, "processes": 1}}
{"name": "galmorph.galaxy", "trace": "t0-ref", "span": "s22", "parent": "s21", "start": 5.1, "end": 5.6, "dur": 0.5, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"galaxy": "g1", "valid": true}}
{"name": "portal.merge_results", "trace": "t0-ref", "span": "s23", "parent": "s1", "start": 9.0, "end": 9.4, "dur": 0.4, "status": "ok", "clock": "wall", "pid": 1, "attrs": {"rows": 4}}
"""

#: Parent-id chains the reference hierarchy must contain (root -> leaf).
_EXPECTED_CHAINS = (
    ("portal.run_analysis", "portal.select_cluster", "service.sia_query"),
    ("portal.run_analysis", "portal.submit_and_wait", "service.request",
     "pegasus.plan", "pegasus.reduction"),
    ("portal.run_analysis", "portal.submit_and_wait", "service.request",
     "condor.execute", "condor.node"),
    ("portal.run_analysis", "portal.submit_and_wait", "service.request",
     "condor.execute", "galmorph.batch", "galmorph.galaxy"),
)

_REPORT_SECTIONS = (
    "== trace summary ==",
    "== span hierarchy ==",
    "== workflow node timeline ==",
    "== critical path ==",
    "== top 5 slowest nodes ==",
)


def _ancestry(spans: list[dict], span_id: str) -> list[str]:
    """Span names from root to ``span_id`` (inclusive)."""
    by_id = {s["span"]: s for s in spans}
    chain: list[str] = []
    cursor: str | None = span_id
    while cursor is not None:
        rec = by_id[cursor]
        chain.append(rec["name"])
        cursor = rec.get("parent")
    chain.reverse()
    return chain


def run_selftest(verbose: bool = True) -> int:
    """Exercise parse -> hierarchy walk -> report -> Prometheus round-trip."""
    failures: list[str] = []

    # 1. parse the embedded trace
    spans = parse_trace_jsonl(REFERENCE_TRACE_JSONL)
    if len(spans) != 23:
        failures.append(f"expected 23 reference spans, parsed {len(spans)}")

    # 2. parent-id walk: every span resolves to the single root
    by_id = {s["span"]: s for s in spans}
    for rec in spans:
        parent = rec.get("parent")
        if parent is not None and parent not in by_id:
            failures.append(f"span {rec['span']} has unresolvable parent {parent}")
    root_names = {_ancestry(spans, s["span"])[0] for s in spans}
    if root_names != {"portal.run_analysis"}:
        failures.append(f"hierarchy roots {sorted(root_names)} != ['portal.run_analysis']")
    ancestries = {tuple(_ancestry(spans, s["span"])) for s in spans}
    for chain in _EXPECTED_CHAINS:
        if chain not in ancestries:
            failures.append(f"missing hierarchy chain {' -> '.join(chain)}")

    # 3. node spans, critical path, rendered report
    nodes = node_spans(spans)
    if len(nodes) != 4:
        failures.append(f"expected 4 DAG-node spans, got {len(nodes)}")
    chain = [str(r["attrs"]["node"]) for r in critical_path(spans)]
    if chain != ["stage-in-g1.fit", "dv-g1", "dv-concat"]:
        failures.append(f"unexpected critical path {chain}")
    summary = summarize(spans)
    if summary["errors"] != 0 or summary["traces"] != 1:
        failures.append(f"unexpected summary rollup {summary}")
    text = render_report(spans, top=5)
    for section in _REPORT_SECTIONS:
        if section not in text:
            failures.append(f"report is missing section {section!r}")

    # 4. Prometheus round-trip
    registry = MetricsRegistry()
    registry.counter("workflow_nodes_total").inc(3, state="succeeded")
    registry.counter("workflow_nodes_total").inc(1, state="failed")
    registry.gauge("pool_busy_slots").set(2, site="pool-a")
    registry.histogram("galmorph_seconds").observe(0.02)
    registry.histogram("galmorph_seconds").observe(0.3)
    exposition = to_prometheus_text(registry)
    parsed = parse_prometheus_text(exposition)
    flat = {
        (name, tuple(sorted(labels.items()))): value
        for name, series in parsed.items()
        for labels, value in series
    }
    n_samples = len(flat)
    if flat.get(("workflow_nodes_total", (("state", "succeeded"),))) != 3.0:
        failures.append("prometheus round-trip lost workflow_nodes_total{state=succeeded}")
    if flat.get(("galmorph_seconds_count", ())) != 2.0:
        failures.append("prometheus round-trip lost galmorph_seconds_count")

    if verbose:
        print(text, end="")
        print()
    if failures:
        for failure in failures:
            print(f"SELFTEST FAIL: {failure}")
        return 1
    print(f"telemetry selftest OK: {len(spans)} spans, {len(nodes)} DAG nodes, "
          f"{n_samples} metric samples round-tripped")
    return 0
