"""Flight recorder: bounded in-memory retention of whole request traces.

A long-running portal server cannot keep every span forever, yet during an
incident the spans you need most are exactly the ones from the requests
that just failed.  The flight recorder subscribes to the tracer's span
stream (:meth:`repro.telemetry.tracing.Tracer.subscribe`) and buckets
spans *by trace id* for traces it has been told to watch:

* the last ``max_completed`` successfully completed request traces are
  retained in a ring (oldest evicted first);
* **all** error and shed traces are retained, up to a separate (larger)
  ``max_errors`` ring;
* everything can be dumped to JSONL on demand — or automatically by the
  serving tier when a handler raises — one JSON object per trace.

Only watched traces cost anything: the listener is a dict lookup for
every span, so background spans (benchmarks, CLI runs sharing the
process) pass straight through.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict, deque
from typing import Any

__all__ = ["FlightRecorder", "TraceEntry"]

#: Spans retained per watched trace; beyond this, spans are counted but dropped.
MAX_SPANS_PER_TRACE = 256

#: Watched-but-never-finished traces are evicted beyond this count (leak guard
#: for requests whose connection died before the finish hook ran).
MAX_OPEN_TRACES = 1024

#: A retained trace: {"trace", "status", "meta", "spans", "dropped_spans", "ts"}.
TraceEntry = dict


class FlightRecorder:
    """Bounded retention of completed / errored request traces."""

    def __init__(
        self,
        max_completed: int = 64,
        max_errors: int = 256,
        max_spans_per_trace: int = MAX_SPANS_PER_TRACE,
    ) -> None:
        self.max_completed = max_completed
        self.max_errors = max_errors
        self.max_spans_per_trace = max_spans_per_trace
        self._lock = threading.Lock()
        # trace_id -> (spans, dropped count); insertion-ordered for eviction.
        self._open: OrderedDict[str, tuple[list[dict], int]] = OrderedDict()
        self._completed: deque[TraceEntry] = deque(maxlen=max_completed)
        self._errors: deque[TraceEntry] = deque(maxlen=max_errors)
        self._unsubscribe = None

    # -- tracer wiring ---------------------------------------------------------
    def attach(self, tracer: Any) -> None:
        """Subscribe to a tracer's span stream (idempotent per recorder)."""
        if self._unsubscribe is None:
            self._unsubscribe = tracer.subscribe(self._on_span)

    def detach(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def _on_span(self, record: dict) -> None:
        trace_id = record.get("trace")
        with self._lock:
            slot = self._open.get(trace_id)
            if slot is None:
                return
            spans, dropped = slot
            if len(spans) < self.max_spans_per_trace:
                spans.append(record)
            else:
                self._open[trace_id] = (spans, dropped + 1)

    # -- request lifecycle -----------------------------------------------------
    def watch(self, trace_id: str) -> None:
        """Start collecting spans for ``trace_id``."""
        with self._lock:
            if trace_id not in self._open:
                self._open[trace_id] = ([], 0)
                while len(self._open) > MAX_OPEN_TRACES:
                    self._open.popitem(last=False)

    def finish(
        self,
        trace_id: str,
        status: str = "ok",
        meta: dict[str, Any] | None = None,
    ) -> TraceEntry | None:
        """Seal a watched trace into the completed or error ring.

        ``status`` ``"ok"`` lands in the completed ring; anything else
        (``"error"``, ``"shed"``) in the error ring, which is never
        displaced by healthy traffic.
        """
        with self._lock:
            slot = self._open.pop(trace_id, None)
            if slot is None:
                return None
            spans, dropped = slot
            entry: TraceEntry = {
                "trace": trace_id,
                "status": status,
                "meta": meta or {},
                "spans": spans,
                "dropped_spans": dropped,
                "ts": time.time(),
            }
            if status == "ok":
                self._completed.append(entry)
            else:
                self._errors.append(entry)
            return entry

    def forget(self, trace_id: str) -> None:
        """Drop a watched trace without retaining it."""
        with self._lock:
            self._open.pop(trace_id, None)

    # -- lookup ----------------------------------------------------------------
    def get(self, trace_id: str) -> TraceEntry | None:
        """Find a retained (or still-open) trace by id."""
        with self._lock:
            slot = self._open.get(trace_id)
            if slot is not None:
                return {
                    "trace": trace_id,
                    "status": "open",
                    "meta": {},
                    "spans": list(slot[0]),
                    "dropped_spans": slot[1],
                    "ts": None,
                }
            for ring in (self._errors, self._completed):
                for entry in reversed(ring):
                    if entry["trace"] == trace_id:
                        return entry
        return None

    def entries(self) -> list[TraceEntry]:
        """All retained traces, errors first, oldest first within each ring."""
        with self._lock:
            return list(self._errors) + list(self._completed)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "open": len(self._open),
                "completed": len(self._completed),
                "errors": len(self._errors),
                "capacity_completed": self.max_completed,
                "capacity_errors": self.max_errors,
            }

    # -- dump ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per retained trace."""
        return "".join(
            json.dumps(entry, sort_keys=True, default=str) + "\n"
            for entry in self.entries()
        )

    def dump(self, path: str | os.PathLike) -> int:
        """Write the retained traces to ``path`` as JSONL; returns the count."""
        entries = self.entries()
        with open(path, "w", encoding="utf-8") as fh:
            for entry in entries:
                fh.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
        return len(entries)
