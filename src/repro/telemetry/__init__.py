"""``repro.telemetry`` — tracing, metrics and run reports for the pipeline.

One guarded runtime serves the whole process: :func:`enable` installs a
fresh :class:`~repro.telemetry.tracing.Tracer` and
:class:`~repro.telemetry.metrics.MetricsRegistry`; every instrumentation
helper (:func:`trace_span`, :func:`count`, :func:`observe`, ...) checks a
single module-level flag first and is a near-free no-op while telemetry is
disabled — the instrumented hot paths (galMorph kernels, geometry caches,
RLS lookups) pay one attribute test and nothing else, which is what keeps
the tier-1 timing-sensitive benchmarks inside their 2% budget.

Quick start::

    from repro import telemetry

    telemetry.enable()
    ...run a portal session / campaign...
    telemetry.get_tracer().export_jsonl("run-trace.jsonl")
    print(telemetry.prometheus_text())
    telemetry.disable()

Span taxonomy, metric-name conventions and the report format are
documented in ``docs/telemetry.md``.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, TypeVar

from repro.telemetry.exporters import parse_prometheus_text, to_json, to_prometheus_text
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.slo import SLOTracker
from repro.telemetry.timeseries import LabelledWindows, LatencyWindow, WindowedCounter
from repro.telemetry.tracing import (
    CURRENT_SPAN,
    SpanRecord,
    TraceContext,
    Tracer,
    load_trace_jsonl,
    make_record,
    new_span_id,
    new_trace_id,
    parse_trace_jsonl,
)

__all__ = [
    "enable",
    "disable",
    "enabled",
    "get_tracer",
    "get_registry",
    "trace_span",
    "record_span",
    "count",
    "gauge_set",
    "observe",
    "capture_context",
    "run_with_context",
    "prometheus_text",
    "metrics_json",
    "TraceContext",
    "Tracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "load_trace_jsonl",
    "parse_trace_jsonl",
    "parse_prometheus_text",
    "FlightRecorder",
    "SLOTracker",
    "WindowedCounter",
    "LatencyWindow",
    "LabelledWindows",
]

T = TypeVar("T")

_ENABLE_LOCK = threading.Lock()


class _Runtime:
    """The process-wide telemetry switchboard."""

    __slots__ = ("enabled", "tracer", "registry")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer = Tracer()
        self.registry = MetricsRegistry()


_RT = _Runtime()


# -- lifecycle -----------------------------------------------------------------
def enable(
    *,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    reset: bool = True,
) -> None:
    """Turn telemetry on (idempotent).

    ``reset=True`` (default) starts a fresh tracer and registry so a run's
    exports contain only that run; pass ``reset=False`` to keep
    accumulating into the current ones.
    """
    with _ENABLE_LOCK:
        if tracer is not None:
            _RT.tracer = tracer
        elif reset:
            _RT.tracer = Tracer()
        if registry is not None:
            _RT.registry = registry
        elif reset:
            _RT.registry = MetricsRegistry()
        _RT.enabled = True


def disable() -> None:
    """Turn telemetry off.  Collected spans/metrics stay readable via
    :func:`get_tracer` / :func:`get_registry` until the next ``enable``."""
    with _ENABLE_LOCK:
        _RT.enabled = False


def enabled() -> bool:
    """Is telemetry currently collecting?"""
    return _RT.enabled


def get_tracer() -> Tracer:
    """The current (or most recent) tracer."""
    return _RT.tracer


def get_registry() -> MetricsRegistry:
    """The current (or most recent) metrics registry."""
    return _RT.registry


# -- spans ---------------------------------------------------------------------
class _NoopSpan:
    """Shared, stateless no-op span handle (telemetry disabled)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NOOP = _NoopSpan()


class _ActiveSpan:
    """A live span: context manager recording on exit."""

    __slots__ = ("_tracer", "name", "attrs", "trace_id", "span_id", "parent_id",
                 "_start", "_token", "status")

    def __init__(self, tracer: Tracer, name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.status = "ok"

    def __enter__(self) -> "_ActiveSpan":
        current = CURRENT_SPAN.get()
        if current is None:
            self.trace_id = new_trace_id()
            self.parent_id = None
        else:
            self.trace_id, self.parent_id = current
        self.span_id = new_span_id()
        self._token = CURRENT_SPAN.set((self.trace_id, self.span_id))
        self._start = self._tracer.now()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        end = self._tracer.now()
        CURRENT_SPAN.reset(self._token)
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", repr(exc))
        self._tracer.add(
            make_record(
                self.name,
                self.trace_id,
                self.span_id,
                self.parent_id,
                self._start,
                end,
                status=self.status,
                attrs=self.attrs,
            )
        )

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span while it is open."""
        self.attrs.update(attrs)


def trace_span(name: str, **attrs: Any):
    """Open a span: ``with trace_span("portal.build_catalog", cluster=n) as sp``.

    Returns a shared no-op handle when telemetry is disabled — one flag
    test, no allocation, no contextvar traffic.
    """
    if not _RT.enabled:
        return _NOOP
    return _ActiveSpan(_RT.tracer, name, dict(attrs))


def record_span(
    name: str,
    start: float,
    end: float,
    *,
    status: str = "ok",
    clock: str = "wall",
    parent: TraceContext | None = None,
    **attrs: Any,
) -> SpanRecord | None:
    """Record a pre-timed (synthetic) span.

    The discrete-event simulator uses this to publish per-node spans in
    *virtual* seconds (``clock="sim"``).  Parents to the innermost open
    span unless an explicit ``parent`` context is given.
    """
    if not _RT.enabled:
        return None
    if parent is not None:
        trace_id, parent_id = parent.trace_id, parent.span_id
    else:
        current = CURRENT_SPAN.get()
        if current is None:
            trace_id, parent_id = new_trace_id(), None
        else:
            trace_id, parent_id = current
    return _RT.tracer.add(
        make_record(
            name, trace_id, new_span_id(), parent_id, start, end,
            status=status, clock=clock, attrs=dict(attrs),
        )
    )


# -- metrics helpers -----------------------------------------------------------
def count(name: str, amount: float = 1.0, **labels: Any) -> None:
    """Increment counter ``name`` (no-op while disabled)."""
    if not _RT.enabled:
        return
    _RT.registry.counter(name).inc(amount, **labels)


def gauge_set(name: str, value: float, **labels: Any) -> None:
    """Set gauge ``name`` (no-op while disabled)."""
    if not _RT.enabled:
        return
    _RT.registry.gauge(name).set(value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Observe ``value`` into histogram ``name`` (no-op while disabled)."""
    if not _RT.enabled:
        return
    _RT.registry.histogram(name).observe(value, **labels)


def prometheus_text() -> str:
    """Current registry in Prometheus text exposition format."""
    return to_prometheus_text(_RT.registry)


def metrics_json(indent: int | None = 2) -> str:
    """Current registry as a JSON snapshot."""
    return to_json(_RT.registry, indent=indent)


# -- cross-process propagation -------------------------------------------------
def capture_context() -> TraceContext | None:
    """The innermost open span as a picklable :class:`TraceContext`
    (``None`` when telemetry is disabled or no span is open)."""
    if not _RT.enabled:
        return None
    current = CURRENT_SPAN.get()
    if current is None:
        return None
    return TraceContext(*current)


def run_with_context(
    ctx: TraceContext | None,
    fn: Callable[..., T],
    *args: Any,
    **kwargs: Any,
) -> tuple[T, list[SpanRecord], dict[str, Any]]:
    """Run ``fn`` under a re-attached trace context, collecting telemetry.

    Designed for ``ProcessPoolExecutor`` workers: the parent captures its
    context, ships it with the task, and the worker calls this.  A
    temporary tracer/registry records everything ``fn`` does; the spans
    (carrying the parent's trace id) and a metrics dump are returned so
    the parent can :meth:`~repro.telemetry.tracing.Tracer.ingest` /
    :meth:`~repro.telemetry.metrics.MetricsRegistry.merge` them.

    With ``ctx=None`` the function runs untraced (telemetry stays in
    whatever state it already is) and empty telemetry is returned.
    """
    if ctx is None:
        return fn(*args, **kwargs), [], {}
    prev_enabled, prev_tracer, prev_registry = _RT.enabled, _RT.tracer, _RT.registry
    tracer, registry = Tracer(), MetricsRegistry()
    token = CURRENT_SPAN.set((ctx.trace_id, ctx.span_id))
    _RT.tracer, _RT.registry, _RT.enabled = tracer, registry, True
    try:
        result = fn(*args, **kwargs)
    finally:
        _RT.enabled, _RT.tracer, _RT.registry = prev_enabled, prev_tracer, prev_registry
        CURRENT_SPAN.reset(token)
    return result, tracer.spans(), registry.dump()


def env_enabled() -> bool:
    """``REPRO_TELEMETRY=1`` in the environment requests telemetry on."""
    return os.environ.get("REPRO_TELEMETRY", "") not in ("", "0", "false", "no")
