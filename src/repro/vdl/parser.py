"""VDL text parser and serializer.

Implements the dialect of §3.2 with a hand-rolled scanner:

* ``TR name( in a, in b, out c ) { <opaque body> }``
* ``DV name->tr( a="scalar", b=@{in:"file"}, c=@{out:"file"} );``
* ``#`` and ``//`` line comments.

``parse_vdl`` returns (transformations, derivations) in document order;
``serialize_vdl`` writes text that parses back to equal objects (verified
by the hypothesis round-trip tests).
"""

from __future__ import annotations

import re

from repro.core.errors import VDLSyntaxError
from repro.vdl.ast import ArgDirection, Derivation, FileBinding, TransformationDecl

_TOKEN = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*|//[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<arrow>->)
  | (?P<at>@\{)
  | (?P<punct>[(){},;:=])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*(?:-[A-Za-z0-9_.]+)*)
    """,
    re.VERBOSE,
)


class _Scanner:
    """Token stream with 1-based line/column error reporting."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.tokens: list[tuple[str, str, int]] = []  # (kind, value, offset)
        while self.pos < len(text):
            m = _TOKEN.match(text, self.pos)
            if not m:
                raise VDLSyntaxError(f"unexpected character {text[self.pos]!r} at {self._loc(self.pos)}")
            self.pos = m.end()
            kind = m.lastgroup or ""
            if kind in ("ws", "comment"):
                continue
            self.tokens.append((kind, m.group(), m.start()))
        self.index = 0

    def _loc(self, offset: int) -> str:
        line = self.text.count("\n", 0, offset) + 1
        col = offset - (self.text.rfind("\n", 0, offset) + 1) + 1
        return f"line {line}, column {col}"

    def peek(self) -> tuple[str, str, int] | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> tuple[str, str, int]:
        tok = self.peek()
        if tok is None:
            raise VDLSyntaxError("unexpected end of VDL input")
        self.index += 1
        return tok

    def expect(self, kind: str, value: str | None = None) -> str:
        tok_kind, tok_value, offset = self.next()
        if tok_kind != kind or (value is not None and tok_value != value):
            want = value if value is not None else kind
            raise VDLSyntaxError(f"expected {want!r}, got {tok_value!r} at {self._loc(offset)}")
        return tok_value


def _unquote(s: str) -> str:
    body = s[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


def _quote(s: str) -> str:
    return '"' + s.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _parse_tr(sc: _Scanner) -> TransformationDecl:
    name = sc.expect("ident")
    sc.expect("punct", "(")
    args: dict[str, ArgDirection] = {}
    while True:
        tok = sc.peek()
        if tok and tok[0] == "punct" and tok[1] == ")":
            sc.next()
            break
        direction_word = sc.expect("ident")
        try:
            direction = ArgDirection(direction_word)
        except ValueError:
            raise VDLSyntaxError(
                f"expected 'in' or 'out' before argument name, got {direction_word!r}"
            ) from None
        arg = sc.expect("ident")
        if arg in args:
            raise VDLSyntaxError(f"duplicate argument {arg!r} in transformation {name!r}")
        args[arg] = direction
        tok = sc.peek()
        if tok and tok[0] == "punct" and tok[1] == ",":
            sc.next()
        elif not (tok and tok[0] == "punct" and tok[1] == ")"):
            raise VDLSyntaxError(
                f"expected ',' or ')' after argument {arg!r} in transformation {name!r}"
            )
    # Opaque brace-balanced body.
    sc.expect("punct", "{")
    depth = 1
    body_parts: list[str] = []
    while depth > 0:
        kind, value, _ = sc.next()
        if kind == "punct" and value == "{":
            depth += 1
        elif kind == "punct" and value == "}":
            depth -= 1
            if depth == 0:
                break
        body_parts.append(value)
    return TransformationDecl(name=name, args=args, body=" ".join(body_parts))


def _parse_dv(sc: _Scanner) -> Derivation:
    name = sc.expect("ident")
    sc.expect("arrow")
    tr_name = sc.expect("ident")
    sc.expect("punct", "(")
    bindings: dict[str, str | FileBinding] = {}
    while True:
        tok = sc.peek()
        if tok and tok[0] == "punct" and tok[1] == ")":
            sc.next()
            break
        arg = sc.expect("ident")
        if arg in bindings:
            raise VDLSyntaxError(f"duplicate binding {arg!r} in derivation {name!r}")
        sc.expect("punct", "=")
        kind, value, offset = sc.next()
        if kind == "string":
            bindings[arg] = _unquote(value)
        elif kind == "at":
            direction_word = sc.expect("ident")
            try:
                direction = ArgDirection(direction_word)
            except ValueError:
                raise VDLSyntaxError(
                    f"expected 'in' or 'out' in file binding, got {direction_word!r}"
                ) from None
            sc.expect("punct", ":")
            lfns = [_unquote(sc.expect("string"))]
            while True:
                nxt = sc.peek()
                if nxt and nxt[0] == "punct" and nxt[1] == ",":
                    sc.next()
                    lfns.append(_unquote(sc.expect("string")))
                else:
                    break
            sc.expect("punct", "}")
            bindings[arg] = FileBinding(direction, tuple(lfns))
        else:
            raise VDLSyntaxError(f"expected a value for {arg!r}, got {value!r} at {sc._loc(offset)}")
        tok = sc.peek()
        if tok and tok[0] == "punct" and tok[1] == ",":
            sc.next()
        elif not (tok and tok[0] == "punct" and tok[1] == ")"):
            raise VDLSyntaxError(
                f"expected ',' or ')' after binding {arg!r} in derivation {name!r}"
            )
    sc.expect("punct", ";")
    return Derivation(name=name, transformation=tr_name, bindings=bindings)


def parse_vdl(text: str) -> tuple[list[TransformationDecl], list[Derivation]]:
    """Parse a VDL document; returns (transformations, derivations)."""
    sc = _Scanner(text)
    transformations: list[TransformationDecl] = []
    derivations: list[Derivation] = []
    while sc.peek() is not None:
        kind, value, offset = sc.next()
        if kind == "ident" and value == "TR":
            transformations.append(_parse_tr(sc))
        elif kind == "ident" and value == "DV":
            derivations.append(_parse_dv(sc))
        else:
            raise VDLSyntaxError(f"expected 'TR' or 'DV', got {value!r} at {sc._loc(offset)}")
    return transformations, derivations


def serialize_vdl(
    transformations: list[TransformationDecl] = (),  # type: ignore[assignment]
    derivations: list[Derivation] = (),  # type: ignore[assignment]
) -> str:
    """Render declarations back to VDL text (parse round-trip safe)."""
    chunks: list[str] = []
    for tr in transformations:
        args = ", ".join(f"{d.value} {a}" for a, d in tr.args.items())
        body = f" {tr.body} " if tr.body else " "
        chunks.append(f"TR {tr.name}( {args} ) {{{body}}}")
    for dv in derivations:
        parts = []
        for arg, value in dv.bindings.items():
            if isinstance(value, FileBinding):
                quoted = ",".join(_quote(lfn) for lfn in value.lfns)
                parts.append(f"{arg}=@{{{value.direction.value}:{quoted}}}")
            else:
                parts.append(f"{arg}={_quote(value)}")
        chunks.append(f"DV {dv.name}->{dv.transformation}( " + ", ".join(parts) + " );")
    return "\n\n".join(chunks) + "\n"
