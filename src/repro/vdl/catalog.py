"""The Virtual Data Catalog: Chimera's store of TRs and DVs.

"When a user or application requests a particular logical file name,
Chimera composes an abstract workflow based on the previously defined
derivations (if that composition is possible)" — the catalog provides the
lookup that drives this: which derivation *produces* a given logical file.
"""

from __future__ import annotations

from repro.core.errors import VDLSyntaxError
from repro.vdl.ast import Derivation, TransformationDecl
from repro.vdl.parser import parse_vdl


class VirtualDataCatalog:
    """Stores transformations and derivations; indexes derivations by output.

    Derivations can carry *metadata annotations* — the GriPhyN promise that
    "a user or application can ask for data using application-specific
    metadata without needing to know whether the data is available on some
    storage system or if it needs to be computed".
    :meth:`find_outputs_by_metadata` resolves such a metadata query to the
    logical files whose derivations match; feed the result to the composer
    (or :meth:`repro.core.vds.VirtualDataSystem.materialize_by_metadata`).
    """

    def __init__(self) -> None:
        self._transformations: dict[str, TransformationDecl] = {}
        self._derivations: dict[str, Derivation] = {}
        self._by_output: dict[str, str] = {}  # lfn -> derivation name
        self._annotations: dict[str, dict[str, str]] = {}  # dv name -> metadata

    # -- definition -----------------------------------------------------------
    def define_transformation(self, tr: TransformationDecl) -> None:
        if tr.name in self._transformations:
            raise VDLSyntaxError(f"transformation {tr.name!r} already defined")
        self._transformations[tr.name] = tr

    def define_derivation(self, dv: Derivation) -> None:
        tr = self._transformations.get(dv.transformation)
        if tr is None:
            raise VDLSyntaxError(
                f"derivation {dv.name!r} references unknown transformation {dv.transformation!r}"
            )
        dv.validate_against(tr)
        if dv.name in self._derivations:
            raise VDLSyntaxError(f"derivation {dv.name!r} already defined")
        for lfn in dv.output_files():
            if lfn in self._by_output:
                raise VDLSyntaxError(
                    f"logical file {lfn!r} already produced by derivation "
                    f"{self._by_output[lfn]!r}; cannot also be produced by {dv.name!r}"
                )
        self._derivations[dv.name] = dv
        for lfn in dv.output_files():
            self._by_output[lfn] = dv.name

    def define(self, vdl_text: str) -> tuple[int, int]:
        """Parse and ingest a VDL document; returns (#TR, #DV) defined."""
        transformations, derivations = parse_vdl(vdl_text)
        for tr in transformations:
            self.define_transformation(tr)
        for dv in derivations:
            self.define_derivation(dv)
        return len(transformations), len(derivations)

    # -- lookup -------------------------------------------------------------------
    def transformation(self, name: str) -> TransformationDecl:
        if name not in self._transformations:
            raise KeyError(f"unknown transformation {name!r}")
        return self._transformations[name]

    def derivation(self, name: str) -> Derivation:
        if name not in self._derivations:
            raise KeyError(f"unknown derivation {name!r}")
        return self._derivations[name]

    def producer_of(self, lfn: str) -> Derivation | None:
        """The derivation producing ``lfn``, or None (raw/input data)."""
        name = self._by_output.get(lfn)
        return self._derivations[name] if name is not None else None

    def transformations(self) -> list[TransformationDecl]:
        return list(self._transformations.values())

    def derivations(self) -> list[Derivation]:
        return list(self._derivations.values())

    def __len__(self) -> int:
        return len(self._derivations)

    # -- metadata annotations --------------------------------------------------
    def annotate(self, derivation_name: str, **metadata: str) -> None:
        """Attach application-specific metadata to a derivation."""
        if derivation_name not in self._derivations:
            raise KeyError(f"unknown derivation {derivation_name!r}")
        self._annotations.setdefault(derivation_name, {}).update(
            {k: str(v) for k, v in metadata.items()}
        )

    def annotations_of(self, derivation_name: str) -> dict[str, str]:
        if derivation_name not in self._derivations:
            raise KeyError(f"unknown derivation {derivation_name!r}")
        return dict(self._annotations.get(derivation_name, {}))

    def find_derivations(self, **metadata: str) -> list[Derivation]:
        """Derivations whose annotations match every given key=value."""
        wanted = {k: str(v) for k, v in metadata.items()}
        out = []
        for name, dv in self._derivations.items():
            annotations = self._annotations.get(name, {})
            if all(annotations.get(k) == v for k, v in wanted.items()):
                out.append(dv)
        return out

    def find_outputs_by_metadata(self, **metadata: str) -> list[str]:
        """Logical files producible by derivations matching the metadata —
        the 'ask for data by metadata' entry point."""
        return [
            lfn for dv in self.find_derivations(**metadata) for lfn in dv.output_files()
        ]
