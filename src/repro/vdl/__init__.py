"""Chimera: the Virtual Data Language and abstract-workflow composition.

"Using the Chimera Virtual Data Language (VDL), the user can describe
*transformations* ... and *derivations*, which are instantiations of these
transformations on specific datasets" (§3.2).  This package implements the
VDL dialect shown in the paper::

    TR galMorph( in redshift, in pixScale, in zeroPoint, in Ho, in om,
                 in flat, in image, out galMorph ) { ... }

    DV d1->galMorph( redshift="0.027886",
                     image=@{in:"NGP9_F323-0927589.fit"},
                     ...,
                     galMorph=@{out:"NGP9_F323-0927589.txt"} );

plus the Virtual Data Catalog that stores them and the composer that turns
"I want logical file X" into an abstract workflow by chaining derivations
backwards (Figure 1).
"""

from repro.vdl.ast import ArgDirection, Derivation, FileBinding, TransformationDecl
from repro.vdl.catalog import VirtualDataCatalog
from repro.vdl.composer import compose_workflow
from repro.vdl.parser import parse_vdl, serialize_vdl

__all__ = [
    "ArgDirection",
    "FileBinding",
    "TransformationDecl",
    "Derivation",
    "VirtualDataCatalog",
    "compose_workflow",
    "parse_vdl",
    "serialize_vdl",
]
