"""Abstract-workflow composition: Chimera's backward chaining.

Given requested logical files, walk the Virtual Data Catalog backwards —
the derivation that produces each file, then the derivations producing its
inputs, and so on — and emit the resulting job set as an
:class:`~repro.workflow.abstract.AbstractWorkflow` (Figure 1).  Files with
no producing derivation are treated as raw inputs, to be located in the RLS
by Pegasus's feasibility check later.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro import telemetry
from repro.core.errors import WorkflowError
from repro.vdl.ast import Derivation
from repro.vdl.catalog import VirtualDataCatalog
from repro.workflow.abstract import AbstractJob, AbstractWorkflow


def _job_from_derivation(dv: Derivation) -> AbstractJob:
    return AbstractJob(
        job_id=dv.name,
        transformation=dv.transformation,
        inputs=dv.input_files(),
        outputs=dv.output_files(),
        parameters=dv.scalar_parameters(),
    )


def compose_workflow(
    catalog: VirtualDataCatalog,
    requested_lfns: Iterable[str],
) -> AbstractWorkflow:
    """Compose the abstract workflow materialising ``requested_lfns``.

    Raises :class:`WorkflowError` when no derivation chain can produce a
    requested file (i.e. it is neither derivable nor... derivable — raw
    inputs are only legal as *intermediate* dependencies, not as the
    requested product itself, matching Chimera's "if that composition is
    possible").
    """
    requested = list(dict.fromkeys(requested_lfns))
    if not requested:
        raise WorkflowError("no logical files requested")
    with telemetry.trace_span("vdl.compose", requested=len(requested)) as span:
        workflow = _compose(catalog, requested)
        span.set(jobs=len(workflow))
    return workflow


def _compose(catalog: VirtualDataCatalog, requested: list[str]) -> AbstractWorkflow:

    needed: dict[str, Derivation] = {}
    frontier: deque[str] = deque()
    for lfn in requested:
        dv = catalog.producer_of(lfn)
        if dv is None:
            raise WorkflowError(
                f"requested file {lfn!r} has no producing derivation in the catalog"
            )
        frontier.append(lfn)

    seen_lfns: set[str] = set()
    while frontier:
        lfn = frontier.popleft()
        if lfn in seen_lfns:
            continue
        seen_lfns.add(lfn)
        dv = catalog.producer_of(lfn)
        if dv is None:
            continue  # raw input: Pegasus will look it up in the RLS
        if dv.name not in needed:
            needed[dv.name] = dv
            frontier.extend(dv.input_files())

    # Insert jobs in dependency order so AbstractWorkflow edge wiring stays
    # O(inputs) per job (producers always precede consumers).
    workflow = AbstractWorkflow()
    emitted: set[str] = set()
    remaining = dict(needed)
    while remaining:
        progressed = False
        for name in list(remaining):
            dv = remaining[name]
            deps = {
                catalog.producer_of(lfn).name  # type: ignore[union-attr]
                for lfn in dv.input_files()
                if catalog.producer_of(lfn) is not None
                and catalog.producer_of(lfn).name in needed  # type: ignore[union-attr]
            }
            if deps <= emitted:
                workflow.add_job(_job_from_derivation(dv))
                emitted.add(name)
                del remaining[name]
                progressed = True
        if not progressed:
            raise WorkflowError(
                f"cyclic derivation chain among {sorted(remaining)}"
            )
    return workflow
