"""VDL abstract syntax: transformation declarations and derivations."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from repro.core.errors import VDLSyntaxError

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")


def _check_ident(name: str, what: str) -> None:
    if not _IDENT.match(name):
        raise VDLSyntaxError(f"invalid {what} name: {name!r}")


class ArgDirection(str, enum.Enum):
    """Formal argument direction: the ``in``/``out`` prefixes of §3.2."""

    IN = "in"
    OUT = "out"


@dataclass(frozen=True)
class TransformationDecl:
    """``TR name( in a, out b ) { body }`` — a template for a program.

    ``args`` maps formal argument name -> direction, in declaration order
    (dicts preserve insertion order).  ``body`` is opaque text (the paper
    elides it with "...").
    """

    name: str
    args: dict[str, ArgDirection] = field(default_factory=dict)
    body: str = ""

    def __post_init__(self) -> None:
        _check_ident(self.name, "transformation")
        for arg in self.args:
            _check_ident(arg, "argument")
        if not any(d is ArgDirection.OUT for d in self.args.values()):
            raise VDLSyntaxError(f"transformation {self.name!r} declares no output argument")

    def output_args(self) -> list[str]:
        return [a for a, d in self.args.items() if d is ArgDirection.OUT]

    def input_args(self) -> list[str]:
        return [a for a, d in self.args.items() if d is ArgDirection.IN]


@dataclass(frozen=True)
class FileBinding:
    """``@{in:"file.fits"}`` — logical file(s) bound to a formal argument.

    Chimera's VDL supports list-valued file parameters (needed by fan-in
    jobs such as the per-cluster result concatenation); we write them as
    ``@{in:"a.txt","b.txt"}``.  ``lfns`` always holds a non-empty tuple; a
    plain string passed to the constructor is normalised to a 1-tuple.
    """

    direction: ArgDirection
    lfns: tuple[str, ...]

    def __post_init__(self) -> None:
        if isinstance(self.lfns, str):
            object.__setattr__(self, "lfns", (self.lfns,))
        else:
            object.__setattr__(self, "lfns", tuple(self.lfns))
        if not self.lfns or any(not lfn for lfn in self.lfns):
            raise VDLSyntaxError("file binding requires non-empty logical file name(s)")

    @property
    def lfn(self) -> str:
        """The single bound file; raises if this is a list binding."""
        if len(self.lfns) != 1:
            raise VDLSyntaxError(
                f"binding holds {len(self.lfns)} files; use .lfns for list bindings"
            )
        return self.lfns[0]


@dataclass(frozen=True)
class Derivation:
    """``DV name->tr( arg=value, file=@{in:"lfn"} );`` — an instantiation.

    ``bindings`` maps formal argument name -> either a scalar string or a
    :class:`FileBinding`.
    """

    name: str
    transformation: str
    bindings: dict[str, str | FileBinding] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_ident(self.name, "derivation")
        _check_ident(self.transformation, "transformation")

    def input_files(self) -> tuple[str, ...]:
        return tuple(
            lfn
            for b in self.bindings.values()
            if isinstance(b, FileBinding) and b.direction is ArgDirection.IN
            for lfn in b.lfns
        )

    def output_files(self) -> tuple[str, ...]:
        return tuple(
            lfn
            for b in self.bindings.values()
            if isinstance(b, FileBinding) and b.direction is ArgDirection.OUT
            for lfn in b.lfns
        )

    def scalar_parameters(self) -> dict[str, str]:
        return {k: v for k, v in self.bindings.items() if isinstance(v, str)}

    def validate_against(self, tr: TransformationDecl) -> None:
        """Check the derivation binds exactly the transformation's formals
        with matching directions (scalars must bind ``in`` formals)."""
        if self.transformation != tr.name:
            raise VDLSyntaxError(
                f"derivation {self.name!r} targets {self.transformation!r}, not {tr.name!r}"
            )
        missing = set(tr.args) - set(self.bindings)
        extra = set(self.bindings) - set(tr.args)
        if missing or extra:
            raise VDLSyntaxError(
                f"derivation {self.name!r} argument mismatch for {tr.name!r}: "
                f"missing={sorted(missing)}, unknown={sorted(extra)}"
            )
        for arg, value in self.bindings.items():
            formal_dir = tr.args[arg]
            if isinstance(value, FileBinding):
                if value.direction is not formal_dir:
                    raise VDLSyntaxError(
                        f"derivation {self.name!r}: argument {arg!r} is "
                        f"{formal_dir.value!r} in the TR but bound as {value.direction.value!r}"
                    )
            elif formal_dir is ArgDirection.OUT:
                raise VDLSyntaxError(
                    f"derivation {self.name!r}: output argument {arg!r} must bind a file, not a scalar"
                )
