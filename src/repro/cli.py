"""Command-line interface: drive the reproduction from a terminal.

Subcommands mirror what an NVO user (or the paper's reader) would do::

    python -m repro clusters                 # the portal's pick-list
    python -m repro analyze A3526            # one Figure 5 session
    python -m repro campaign                 # the full §5 run
    python -m repro dressler A2029           # Figure 7, in ASCII
    python -m repro registry                 # Table 1
    python -m repro explain A3526 A3526-0001.txt   # provenance of a file
    python -m repro analyze A3526 --trace run.jsonl --report
    python -m repro telemetry report run.jsonl     # timeline + critical path
"""

from __future__ import annotations

import argparse
import sys
import time


def _telemetry_begin(args: argparse.Namespace) -> bool:
    """Enable telemetry when any collection flag (or the env var) asks."""
    from repro import telemetry

    wanted = bool(
        getattr(args, "trace", None)
        or getattr(args, "metrics", None)
        or getattr(args, "report", False)
        or telemetry.env_enabled()
    )
    if wanted:
        telemetry.enable()
    return wanted


def _telemetry_end(args: argparse.Namespace, active: bool) -> None:
    """Export whatever the run collected, then switch telemetry off."""
    if not active:
        return
    from repro import telemetry

    telemetry.disable()
    tracer = telemetry.get_tracer()
    trace_path = getattr(args, "trace", None)
    if trace_path:
        tracer.export_jsonl(trace_path)
        print(f"trace: {len(tracer)} span(s) -> {trace_path}")
    metrics_path = getattr(args, "metrics", None)
    if metrics_path:
        with open(metrics_path, "w", encoding="utf-8") as fh:
            fh.write(telemetry.prometheus_text())
        print(f"metrics -> {metrics_path}")
    if getattr(args, "report", False):
        from repro.telemetry.report import render_report, render_resilience_summary

        print()
        print(render_report(tracer.spans(), top=getattr(args, "top", 5)), end="")
        resilience = render_resilience_summary(telemetry.get_registry())
        if resilience:
            print()
            print(resilience, end="")


def _add_telemetry_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="collect a span trace and export it as JSONL",
    )
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="export run metrics in Prometheus text format",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="print the telemetry run report after the command",
    )


def _env(clusters=None, **kwargs):
    from repro.portal.demo import build_demo_environment
    from repro.sky.registry_data import demonstration_cluster

    if clusters:
        clusters = [demonstration_cluster(name) for name in clusters]
        return build_demo_environment(clusters=clusters, **kwargs)
    return build_demo_environment(**kwargs)


def cmd_clusters(_: argparse.Namespace) -> int:
    from repro.sky.registry_data import DEMONSTRATION_CLUSTERS

    print(f"{'name':<8s} {'ra':>9s} {'dec':>8s} {'z':>7s} {'members':>8s}")
    for cluster in DEMONSTRATION_CLUSTERS:
        print(
            f"{cluster.name:<8s} {cluster.center.ra:>9.3f} {cluster.center.dec:>8.3f} "
            f"{cluster.redshift:>7.4f} {cluster.n_galaxies:>8d}"
        )
    return 0


def cmd_registry(_: argparse.Namespace) -> int:
    from repro.services.registry import default_registry

    print(f"{'Data Center':<58s} {'Collection':<46s} Interfaces")
    for center, collection, interfaces in default_registry().table_rows():
        print(f"{center:<58s} {collection:<46s} {interfaces}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    traced = _telemetry_begin(args)
    env = _env([args.cluster])
    t0 = time.time()
    session = env.portal.run_analysis(args.cluster)
    elapsed = time.time() - t0
    merged = session.merged
    assert merged is not None
    valid = sum(1 for r in merged if r["valid"])
    print(
        f"{args.cluster}: {len(merged)} galaxies, {valid} valid measurements, "
        f"{session.n_context_images} context images, {elapsed:.1f}s wall"
    )
    if args.table:
        print(f"\n{'id':<14s} {'C':>6s} {'A':>7s} {'mu':>8s} {'valid':>6s}")
        for row in merged:
            c = f"{row['concentration']:.2f}" if row["concentration"] is not None else "-"
            a = f"{row['asymmetry']:.3f}" if row["asymmetry"] is not None else "-"
            mu = f"{row['surface_brightness']:.2f}" if row["surface_brightness"] is not None else "-"
            print(f"{row['id']:<14s} {c:>6s} {a:>7s} {mu:>8s} {str(row['valid']):>6s}")
    _telemetry_end(args, traced)
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.portal.campaign import run_campaign

    traced = _telemetry_begin(args)
    env = _env(site_selection=args.site_selection)
    t0 = time.time()
    report = run_campaign(env)
    print(report.totals_table())
    print(f"\nwall time: {time.time() - t0:.1f}s; pools: {', '.join(report.pools_used())}")
    ok = [r.analysis.rediscovered for r in report.records if r.analysis]
    print(f"Dressler relation rediscovered in {sum(ok)}/{len(ok)} clusters")
    _telemetry_end(args, traced)
    if not report.succeeded:
        failed = report.failed_clusters
        print(
            f"\nerror: {len(failed)} cluster(s) did not complete "
            f"({report.failed_nodes} failed node(s), "
            f"{report.unrunnable_nodes} unrunnable):",
            file=sys.stderr,
        )
        print(report.failure_summary(), file=sys.stderr)
        return 1
    return 0


def cmd_dressler(args: argparse.Namespace) -> int:
    from repro.portal.analysis import analyze_morphology_catalog
    from repro.portal.visualize import ascii_overlay

    env = _env([args.cluster])
    session = env.portal.run_analysis(args.cluster)
    analysis = analyze_morphology_catalog(session.merged, session.cluster)
    print(analysis.summary())
    print()
    print(ascii_overlay(session.merged, session.cluster))
    return 0


def cmd_bands(args: argparse.Namespace) -> int:
    """Compare morphology across synthetic filters for one cluster."""
    import numpy as np

    from repro.morphology.pipeline import galmorph
    from repro.sky.cluster import MorphType
    from repro.sky.imaging import CutoutFactory
    from repro.sky.registry_data import demonstration_cluster

    cluster = demonstration_cluster(args.cluster)
    print(f"{args.cluster}: mean asymmetry / concentration by band and class\n")
    print(f"{'band':<5s} {'A(late)':>8s} {'A(early)':>9s} {'C(late)':>8s} {'C(early)':>9s}")
    for band in ("g", "r", "i"):
        factory = CutoutFactory(cluster, band=band)
        late_a, early_a, late_c, early_c = [], [], [], []
        for member in factory.members():
            result = galmorph(
                factory.render_cutout(member.galaxy_id),
                redshift=member.redshift,
                pix_scale=0.4 / 3600.0,
            )
            if not result.valid:
                continue
            late = member.morph in (MorphType.SPIRAL, MorphType.IRREGULAR)
            (late_a if late else early_a).append(result.asymmetry)
            (late_c if late else early_c).append(result.concentration)
        print(
            f"{band:<5s} {np.mean(late_a):>8.3f} {np.mean(early_a):>9.3f} "
            f"{np.mean(late_c):>8.2f} {np.mean(early_c):>9.2f}"
        )
    print("\nstar-forming structure is brighter in the blue: A(g) > A(r) > A(i) for late types")
    return 0


def cmd_dynamics(args: argparse.Namespace) -> int:
    from repro.portal.dynamics import analyze_dynamics

    env = _env([args.cluster])
    session = env.portal.run_analysis(args.cluster)
    state = analyze_dynamics(session.merged, session.cluster, n_shuffles=args.shuffles)
    print(state.summary())
    return 0


def cmd_overlay(args: argparse.Namespace) -> int:
    from repro.portal.overlay import build_overlay, write_overlay

    env = _env([args.cluster])
    session = env.portal.run_analysis(args.cluster)
    product = build_overlay(session.merged, session.cluster)
    paths = write_overlay(product, args.outdir)
    for role, path in paths.items():
        print(f"{role:>8s}: {path}")
    print("load the two FITS layers plus the .reg file in DS9/Aladin for Figure 7")
    return 0


def cmd_telemetry_report(args: argparse.Namespace) -> int:
    """Render the run report from a trace JSONL (or run the selftest)."""
    from repro.telemetry.report import render_report
    from repro.telemetry.tracing import load_trace_jsonl

    if args.selftest:
        from repro.telemetry.selftest import run_selftest

        return run_selftest(verbose=not args.quiet)
    if not args.trace_file:
        print("error: provide a trace JSONL file or --selftest", file=sys.stderr)
        return 2
    spans = load_trace_jsonl(args.trace_file)
    if args.trace_id:
        spans = [s for s in spans if s.get("trace") == args.trace_id]
        if not spans:
            print(
                f"error: no spans with trace id {args.trace_id!r} in "
                f"{args.trace_file}",
                file=sys.stderr,
            )
            return 1
    print(render_report(spans, top=args.top), end="")
    return 0


def _coerce_option(text: str) -> object:
    """``k=v`` values arrive as strings; recover numbers and booleans."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_options(pairs: list[str]) -> dict[str, object]:
    options: dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"error: option {pair!r} is not of the form key=value")
        key, _, value = pair.partition("=")
        options[key] = _coerce_option(value)
    return options


def cmd_submit(args: argparse.Namespace) -> int:
    """Queue one analysis job in the journal; ``repro serve`` drains it."""
    from repro.scheduler import JobJournal, WorkloadManager

    manager = WorkloadManager(runner=None, journal=JobJournal(args.journal))
    record = manager.submit(
        args.user, args.cluster, _parse_options(args.option), priority=args.priority
    )
    print(
        f"queued {record.job_id}: user={record.spec.user} "
        f"cluster={record.spec.cluster} priority={record.spec.priority} "
        f"signature={record.signature}"
    )
    print(f"queue depth now {manager.queue_depth()} ({args.journal})")
    return 0


def cmd_queue(args: argparse.Namespace) -> int:
    """Render the journal's replayed queue state."""
    import json

    from repro.scheduler import JobJournal, merge_states
    from repro.scheduler.service import _wall_times

    if getattr(args, "fleet_dir", None):
        from pathlib import Path

        paths = sorted(Path(args.fleet_dir).glob("journal-*.jsonl"))
        if not paths:
            print(f"error: no journal-*.jsonl under {args.fleet_dir}", file=sys.stderr)
            return 2
        state = merge_states(JobJournal(p).replay() for p in paths)
        args.journal = args.fleet_dir
    else:
        state = JobJournal(args.journal).replay()
    if args.json:
        counts: dict[str, int] = {}
        for record in state.jobs.values():
            counts[record.state.value] = counts.get(record.state.value, 0) + 1
        payload = {
            "journal": str(args.journal),
            "jobs": [
                {
                    **record.as_record(),
                    "cache_hit": record.cache_hit,
                    "error": record.error,
                    # Adaptive-execution annotations replayed from the
                    # journal: straggler duplicates and deadline shedding.
                    "speculated": bool(record.extra.get("speculated", False)),
                    "shed": bool(record.extra.get("shed", False)),
                    # Wall-clock journal stamps: when the job was accepted,
                    # started and finished, plus the queue wait they imply.
                    **_wall_times(record),
                }
                for record in state.jobs.values()
            ],
            "counts": counts,
            "queued": counts.get("queued", 0),
            "running": counts.get("running", 0),
            "drained": counts.get("queued", 0) + counts.get("running", 0) == 0,
            "usage": state.usage,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not state.jobs:
        print(f"queue is empty ({args.journal})")
        return 0
    print(
        f"{'seq':>4s} {'job id':<22s} {'user':<10s} {'cluster':<10s} "
        f"{'prio':>4s} {'shard':<6s} {'state':<10s} {'cache':>5s} {'spec':>4s} error"
    )
    counts: dict[str, int] = {}
    for record in state.jobs.values():
        counts[record.state.value] = counts.get(record.state.value, 0) + 1
        print(
            f"{record.seq:>4d} {record.job_id:<22s} {record.spec.user:<10s} "
            f"{record.spec.cluster:<10s} {record.spec.priority:>4d} "
            f"{record.shard or '-':<6s} "
            f"{record.state.value:<10s} {'yes' if record.cache_hit else '-':>5s} "
            f"{'yes' if record.extra.get('speculated') else '-':>4s} "
            f"{record.error or ''}"
        )
    summary = ", ".join(f"{state_}={n}" for state_, n in sorted(counts.items()))
    print(f"\n{len(state.jobs)} job(s): {summary}")
    if state.usage:
        usage = ", ".join(
            f"{user}={cost:.2f}" for user, cost in sorted(state.usage.items())
        )
        print(f"charged usage (slot-seconds): {usage}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Drain the journal's queued jobs on a shared demonstration Grid."""
    from repro.scheduler import JobJournal, WorkloadManager

    traced = _telemetry_begin(args)
    env = _env()
    manager = WorkloadManager.for_environment(
        env,
        journal=JobJournal(args.journal),
        max_workers=args.max_workers,
        slots_per_job=args.slots_per_job,
    )
    depth = manager.queue_depth()
    print(
        f"serving {args.journal}: {depth} queued job(s), "
        f"{manager.leases.total_slots} pool slots, "
        f"{args.max_workers} concurrent campaigns"
    )
    t0 = time.time()
    with manager:
        manager.drain(timeout=args.timeout)
    print(f"\n{'job id':<18s} {'user':<10s} {'cluster':<10s} {'state':<10s} "
          f"{'wait s':>7s} {'run s':>7s} {'cache':>5s}")
    for record in manager.jobs():
        wait = f"{record.wait_seconds:.2f}" if record.wait_seconds is not None else "-"
        run = f"{record.run_seconds:.2f}" if record.run_seconds is not None else "-"
        print(
            f"{record.job_id:<18s} {record.spec.user:<10s} "
            f"{record.spec.cluster:<10s} {record.state.value:<10s} "
            f"{wait:>7s} {run:>7s} {'yes' if record.cache_hit else '-':>5s}"
        )
    debts = manager.fair_share_debts()
    if debts:
        print("\nfair-share debt: " + ", ".join(
            f"{user}={debt:.2f}" for user, debt in sorted(debts.items())
        ))
    failed = [r for r in manager.jobs() if r.state.value == "failed"]
    print(f"wall time: {time.time() - t0:.1f}s")
    _telemetry_end(args, traced)
    if failed:
        print(f"error: {len(failed)} job(s) failed", file=sys.stderr)
        return 1
    return 0


def cmd_serve_http(args: argparse.Namespace) -> int:
    """Run the asyncio portal serving tier until interrupted."""
    import asyncio

    from repro.serve import build_serving_stack
    from repro.serve.harness import ready_line

    async def _run() -> None:
        stack = build_serving_stack(
            journal_path=args.journal,
            runner=args.runner,
            host=args.host,
            port=args.port,
            max_workers=args.max_workers,
            slots_per_job=args.slots_per_job,
            observability=True if args.observe else None,
            access_log_path=args.access_log,
            latency_target_s=args.latency_target,
        )
        async with stack:
            # Machine-readable first line: with --port 0 the kernel picks
            # the port, and harnesses parse this instead of guessing.
            print(ready_line(stack), flush=True)
            print(
                f"portal serving tier on {stack.server.url} "
                f"(journal: {args.journal or 'in-memory'}, runner: {args.runner}, "
                f"{stack.manager.leases.total_slots} pool slots)"
            )
            endpoints = "/cone /sia /jobs /queue /health /metrics"
            if args.observe:
                endpoints += " /debug/requests /debug/slo /debug/trace/{id}"
                print(f"observability plane enabled; watch with: repro top --url {stack.server.url}")
            print(f"endpoints: {endpoints}")
            if args.max_seconds is not None:
                await asyncio.sleep(args.max_seconds)
            else:
                await asyncio.Event().wait()  # serve until Ctrl-C

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nshutdown complete")
    return 0


def cmd_serve_fleet(args: argparse.Namespace) -> int:
    """Run the sharded serving tier: HTTP front door + worker fleet."""
    import asyncio

    from repro.serve.harness import build_fleet_serving_stack, ready_line

    async def _run() -> None:
        stack = build_fleet_serving_stack(
            args.data_dir,
            shards=args.shards,
            runner=args.runner,
            host=args.host,
            port=args.port,
            max_workers=args.max_workers,
            slots_per_job=args.slots_per_job,
            observability=True if args.observe else None,
        )
        async with stack:
            print(ready_line(stack), flush=True)
            print(
                f"sharded portal tier on {stack.server.url} "
                f"({args.shards} shard worker(s), runner: {args.runner}, "
                f"state: {args.data_dir})"
            )
            print("endpoints: /cone /sia /jobs /queue /health /metrics")
            if args.max_seconds is not None:
                await asyncio.sleep(args.max_seconds)
            else:
                await asyncio.Event().wait()  # serve until Ctrl-C

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nshutdown complete")
    return 0


def cmd_shard(args: argparse.Namespace) -> int:
    """Shard topology introspection (``repro shard map``)."""
    import json

    from repro.shard.ring import ConsistentHashRing
    from repro.shard.tiling import tile_for_cluster, tiles_at_level
    from repro.sky.registry_data import DEMONSTRATION_CLUSTERS

    names = tuple(f"s{i}" for i in range(args.shards))
    ring = ConsistentHashRing(names)
    clusters = args.cluster or [c.name for c in DEMONSTRATION_CLUSTERS]
    rows = []
    for cluster in clusters:
        tile = tile_for_cluster(cluster, args.level)
        rows.append((cluster, tile.tile_id, ring.node_for(tile.tile_id)))
    tiles = [t.tile_id for t in tiles_at_level(args.level)]
    counts: dict[str, int] = {name: 0 for name in names}
    for tile_id in tiles:
        counts[ring.node_for(tile_id)] += 1
    if args.json:
        print(json.dumps({
            "shards": list(names),
            "level": args.level,
            "tiles": len(tiles),
            "tile_counts": counts,
            "skew": ring.skew(tiles),
            "clusters": [
                {"cluster": c, "tile": t, "shard": s} for c, t, s in rows
            ],
        }, indent=2, sort_keys=True))
        return 0
    print(f"{'cluster':<12s} {'tile':<10s} shard")
    for cluster, tile_id, shard in rows:
        print(f"{cluster:<12s} {tile_id:<10s} {shard}")
    spread = ", ".join(f"{name}={counts[name]}" for name in names)
    print(
        f"\n{len(tiles)} tile(s) at level {args.level} over {len(names)} "
        f"shard(s): {spread} (max/mean skew {ring.skew(tiles):.2f})"
    )
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Open-loop load generation against a serving tier (or a self-hosted one)."""
    import asyncio
    import json
    import urllib.parse

    from repro.serve import (
        SCENARIOS,
        build_serving_stack,
        demo_cluster_targets,
        run_scenario,
    )

    names = list(SCENARIOS) if args.scenario == "all" else [args.scenario]
    scenarios = []
    for name in names:
        factory = SCENARIOS[name]
        kwargs = {"seed": args.seed}
        if args.requests is not None:
            kwargs["requests"] = args.requests
        if args.rate is not None and name != "herd":
            kwargs["rate"] = args.rate
        scenarios.append(factory(**kwargs))
    targets = demo_cluster_targets()

    async def _run() -> list:
        reports = []
        if args.url:
            parsed = urllib.parse.urlsplit(args.url)
            host, port = parsed.hostname or "127.0.0.1", parsed.port or 80
            for scenario in scenarios:
                reports.append(await run_scenario(host, port, scenario, targets))
        else:
            stack = build_serving_stack(runner=args.runner)
            async with stack:
                for scenario in scenarios:
                    reports.append(
                        await run_scenario("127.0.0.1", stack.server.port, scenario, targets)
                    )
        return reports

    reports = asyncio.run(_run())
    for report in reports:
        print(report.summary())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump([r.as_dict() for r in reports], fh, indent=2, sort_keys=True)
        print(f"report -> {args.out}")
    failures = sum(len(r.failures) for r in reports)
    mismatches = sum(len(r.id_mismatches) for r in reports)
    if failures:
        detail = "5xx, transport, or id echo" if mismatches else "5xx or transport"
        print(f"error: {failures} request(s) failed ({detail})", file=sys.stderr)
        return 1
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard over a serving tier's /debug surface."""
    from repro.serve.top import run_top

    try:
        return run_top(
            args.url,
            interval=args.interval,
            iterations=1 if args.once else args.count,
            clear=not args.once,
        )
    except KeyboardInterrupt:
        return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Fault-injection campaign + recovery invariant (the chaos harness)."""
    import json

    from repro.faults.chaos import run_chaos_campaign, run_sharded_chaos_campaign

    traced = _telemetry_begin(args)
    try:
        if args.shards or args.profile == "worker-crash":
            # worker-crash only exists sharded: the fault IS a shard death.
            report = run_sharded_chaos_campaign(
                profile=args.profile,
                shards=args.shards or 4,
                jobs=args.jobs,
                users=args.users,
                seed=args.seed,
            )
        else:
            report = run_chaos_campaign(
                profile=args.profile,
                clusters=args.cluster or None,
                seed=args.seed,
                max_workers=args.max_workers,
                requeue_attempts=args.requeue_attempts,
            )
    except ValueError as exc:  # unknown profile: list the valid ones
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    _telemetry_end(args, traced)
    if report.recoverable and not report.recovered:
        print("error: recovery invariant violated", file=sys.stderr)
    if not report.recoverable and not report.graceful:
        print("error: degradation was not graceful (wedged jobs)", file=sys.stderr)
    return report.exit_code()


def cmd_explain(args: argparse.Namespace) -> int:
    env = _env([args.cluster])
    env.portal.run_analysis(args.cluster)
    print(env.vds.provenance.lineage_text(args.lfn))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SC'03 NVO Galaxy Morphology reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("clusters", help="list the demonstration clusters").set_defaults(fn=cmd_clusters)
    sub.add_parser("registry", help="print Table 1 (data centers and interfaces)").set_defaults(fn=cmd_registry)

    p = sub.add_parser("analyze", help="run the full portal flow for one cluster")
    p.add_argument("cluster")
    p.add_argument("--table", action="store_true", help="print the per-galaxy results")
    _add_telemetry_options(p)
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("campaign", help="run the full eight-cluster §5 campaign")
    p.add_argument(
        "--site-selection",
        default="round-robin",
        choices=("random", "round-robin", "least-loaded"),
    )
    _add_telemetry_options(p)
    p.set_defaults(fn=cmd_campaign)

    p = sub.add_parser("telemetry", help="trace/metrics tooling")
    tsub = p.add_subparsers(dest="telemetry_command", required=True)
    tr = tsub.add_parser("report", help="render a run report from a trace JSONL")
    tr.add_argument("trace_file", nargs="?", default=None, help="trace JSONL path")
    tr.add_argument("--top", type=int, default=5, help="slowest-node count")
    tr.add_argument(
        "--selftest", action="store_true",
        help="exercise the report pipeline on an embedded reference trace",
    )
    tr.add_argument("--quiet", action="store_true", help="selftest: suppress the rendered report")
    tr.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="only report spans of this trace (as returned in X-Trace-Id)",
    )
    tr.set_defaults(fn=cmd_telemetry_report)

    p = sub.add_parser("dressler", help="Figure 7 analysis + ASCII overlay")
    p.add_argument("cluster")
    p.set_defaults(fn=cmd_dressler)

    p = sub.add_parser("bands", help="morphology across the synthetic g/r/i filters")
    p.add_argument("cluster")
    p.set_defaults(fn=cmd_bands)

    p = sub.add_parser("dynamics", help="velocity dispersion + DS substructure test")
    p.add_argument("cluster")
    p.add_argument("--shuffles", type=int, default=300)
    p.set_defaults(fn=cmd_dynamics)

    p = sub.add_parser("overlay", help="write the Figure 7 FITS + region layers")
    p.add_argument("cluster")
    p.add_argument("--outdir", default="overlay-products")
    p.set_defaults(fn=cmd_overlay)

    p = sub.add_parser("submit", help="queue an analysis job for the workload manager")
    p.add_argument("user", help="tenant submitting the job")
    p.add_argument("cluster", help="demonstration cluster to analyse")
    p.add_argument("--priority", type=int, default=0, help="within-user priority")
    p.add_argument(
        "-o", "--option", action="append", default=[], metavar="KEY=VALUE",
        help="morphology option (part of the derivation signature)",
    )
    p.add_argument(
        "--journal", default="scheduler-journal.jsonl",
        help="the manager's JSONL journal (doubles as the submission spool)",
    )
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("queue", help="show the workload manager's queue state")
    p.add_argument("--journal", default="scheduler-journal.jsonl")
    p.add_argument(
        "--fleet-dir", default=None, metavar="DIR",
        help="replay every shard journal (journal-*.jsonl) under a fleet state dir",
    )
    p.add_argument(
        "--json", action="store_true",
        help="machine-readable queue state (the load harness polls this)",
    )
    p.set_defaults(fn=cmd_queue)

    p = sub.add_parser("serve", help="drain queued jobs on the demonstration Grid")
    p.add_argument("--journal", default="scheduler-journal.jsonl")
    p.add_argument("--max-workers", type=int, default=4, help="concurrent campaigns")
    p.add_argument("--slots-per-job", type=int, default=4, help="pool slots leased per job")
    p.add_argument("--timeout", type=float, default=None, help="drain timeout in seconds")
    _add_telemetry_options(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "serve-http",
        help="run the asyncio HTTP portal tier (Cone/SIA queries, job submit/status)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080, help="0 picks a free port")
    p.add_argument(
        "--journal", default=None,
        help="JSONL journal path (shared with repro submit/queue); default in-memory",
    )
    p.add_argument(
        "--runner", default="portal", choices=("portal", "synthetic"),
        help="job body: the real Figure-5 portal flow, or a cheap synthetic stand-in",
    )
    p.add_argument("--max-workers", type=int, default=4, help="concurrent campaigns")
    p.add_argument("--slots-per-job", type=int, default=4, help="pool slots leased per job")
    p.add_argument(
        "--max-seconds", type=float, default=None,
        help="shut down after this long (default: serve until Ctrl-C)",
    )
    p.add_argument(
        "--observe", action="store_true",
        help="enable the live observability plane (/debug surface, tracing, SLO burn)",
    )
    p.add_argument(
        "--access-log", default=None, metavar="PATH",
        help="append a JSONL access-log line per request (implies nothing unless --observe)",
    )
    p.add_argument(
        "--latency-target", type=float, default=0.5, metavar="SECONDS",
        help="p-latency SLO threshold for the burn tracker (default 0.5s)",
    )
    p.set_defaults(fn=cmd_serve_http)

    p = sub.add_parser(
        "serve-fleet",
        help="run the sharded serving tier: HTTP front door + per-shard worker processes",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080, help="0 picks a free port")
    p.add_argument("--shards", type=int, default=4, help="worker processes (one journal + RLS partition each)")
    p.add_argument(
        "--data-dir", default="fleet-state",
        help="directory for shard journals and the shared signature store",
    )
    p.add_argument(
        "--runner", default="synthetic", choices=("portal", "synthetic"),
        help="job body inside each worker",
    )
    p.add_argument("--max-workers", type=int, default=2, help="concurrent jobs per shard")
    p.add_argument("--slots-per-job", type=int, default=4, help="pool slots leased per job")
    p.add_argument(
        "--max-seconds", type=float, default=None,
        help="shut down after this long (default: serve until Ctrl-C)",
    )
    p.add_argument(
        "--observe", action="store_true",
        help="enable the live observability plane (/debug surface, tracing, SLO burn)",
    )
    p.set_defaults(fn=cmd_serve_fleet)

    p = sub.add_parser("shard", help="spatial-sharding topology tools")
    ssub = p.add_subparsers(dest="shard_command", required=True)
    sm = ssub.add_parser("map", help="tile + shard placement for clusters")
    sm.add_argument(
        "--shards", type=int, default=4, help="ring size to place tiles on"
    )
    sm.add_argument(
        "--level", type=int, default=3, help="quad-tree depth (4**level tiles)"
    )
    sm.add_argument(
        "--cluster", action="append", default=[], metavar="NAME",
        help="cluster to place (repeatable; default: the demonstration set)",
    )
    sm.add_argument("--json", action="store_true", help="machine-readable map")
    sm.set_defaults(fn=cmd_shard)

    p = sub.add_parser(
        "loadgen",
        help="open-loop load generator: Poisson/herd/slow-client scenarios + SLO report",
    )
    p.add_argument(
        "--scenario", default="all", choices=("steady", "herd", "slow", "all"),
    )
    p.add_argument(
        "--url", default=None,
        help="target serving tier (default: self-host a synthetic-runner stack)",
    )
    p.add_argument(
        "--runner", default="synthetic", choices=("portal", "synthetic"),
        help="job body for the self-hosted stack (ignored with --url)",
    )
    p.add_argument("--requests", type=int, default=None, help="override per-scenario request count")
    p.add_argument("--rate", type=float, default=None, help="override Poisson arrival rate (req/s)")
    p.add_argument("--seed", type=int, default=2003, help="arrival-schedule seed")
    p.add_argument("--out", default=None, metavar="PATH", help="write the JSON report here")
    p.set_defaults(fn=cmd_loadgen)

    p = sub.add_parser(
        "top",
        help="live ANSI dashboard over a serving tier's /debug surface",
    )
    p.add_argument(
        "--url", default="http://127.0.0.1:8080",
        help="base URL of a tier started with repro serve-http --observe",
    )
    p.add_argument("--interval", type=float, default=2.0, help="refresh period, seconds")
    p.add_argument(
        "--once", action="store_true",
        help="render a single frame without clearing the screen, then exit",
    )
    p.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="exit after N frames (default: run until Ctrl-C)",
    )
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser(
        "chaos",
        help="run a fault-injection campaign and assert the recovery invariant",
    )
    p.add_argument(
        "--profile", default="recoverable",
        help=(
            "fault profile (recoverable, degraded-archives, grid-down, "
            "slow-site, worker-crash)"
        ),
    )
    p.add_argument(
        "--cluster", action="append", default=[], metavar="NAME",
        help="cluster to run (repeatable; default: a small two-cluster set)",
    )
    p.add_argument("--seed", type=int, default=2003, help="fault-schedule seed")
    p.add_argument("--max-workers", type=int, default=2, help="concurrent campaigns")
    p.add_argument(
        "--requeue-attempts", type=int, default=3,
        help="scheduler attempts per job under chaos (transient requeue)",
    )
    p.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="run the campaign on an N-shard worker fleet (worker-crash implies 4)",
    )
    p.add_argument("--jobs", type=int, default=20, help="sharded campaign job count")
    p.add_argument("--users", type=int, default=4, help="sharded campaign tenant count")
    p.add_argument("--json", action="store_true", help="emit the report as JSON")
    _add_telemetry_options(p)
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("explain", help="provenance of a logical file after an analysis")
    p.add_argument("cluster")
    p.add_argument("lfn")
    p.set_defaults(fn=cmd_explain)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
