"""Workflow rendering: ASCII level diagrams and Graphviz dot output.

Used by the examples and the Figure 1/3/4 benchmarks to print workflows the
way the paper draws them.
"""

from __future__ import annotations

from repro.workflow.concrete import ClusteredComputeNode, ComputeNode, RegistrationNode, TransferNode
from repro.workflow.dag import DAG


def _node_label(payload: object, node_id: str) -> str:
    if isinstance(payload, ClusteredComputeNode):
        return f"{payload.transformation} x{len(payload)}@{payload.site}"
    if isinstance(payload, ComputeNode):
        return f"{payload.job.transformation}@{payload.site}"
    if isinstance(payload, TransferNode):
        return f"move {payload.lfn} {payload.source_site}->{payload.dest_site}"
    if isinstance(payload, RegistrationNode):
        return f"register {payload.lfn}"
    return node_id


def render_ascii(dag: DAG, max_per_level: int = 6) -> str:
    """Render a DAG as indented depth levels with edge arrows.

    Compact and deterministic; suited to golden-output tests.
    """
    lines: list[str] = []
    for depth, level in enumerate(dag.depth_levels()):
        shown = level[:max_per_level]
        labels = [f"[{_node_label(dag.payload(n), n)}]" for n in shown]
        extra = f" ... +{len(level) - len(shown)} more" if len(level) > len(shown) else ""
        lines.append(f"level {depth}: " + "  ".join(labels) + extra)
    lines.append(f"({len(dag)} nodes, {len(dag.edges())} edges)")
    return "\n".join(lines)


def to_dot(dag: DAG, name: str = "workflow") -> str:
    """Graphviz dot source for a DAG (compute=box, transfer=ellipse,
    registration=diamond)."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for node_id, payload in dag.payloads():
        shape = "box"
        if isinstance(payload, TransferNode):
            shape = "ellipse"
        elif isinstance(payload, RegistrationNode):
            shape = "diamond"
        label = _node_label(payload, node_id).replace('"', "'")
        lines.append(f'  "{node_id}" [shape={shape}, label="{label}"];')
    for parent, child in sorted(dag.edges()):
        lines.append(f'  "{parent}" -> "{child}";')
    lines.append("}")
    return "\n".join(lines)
