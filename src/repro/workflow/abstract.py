"""Abstract workflows: logical transformations over logical file names.

"This workflow is termed abstract, because it describes the desired data
product in terms of logical filenames and logical transformations without
specifying the resources that will be used to execute the workflow" (§3.2,
Figure 1).  Dependency edges are *derived from data flow*: the producer of
a logical file precedes each of its consumers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.errors import WorkflowError
from repro.workflow.dag import DAG


@dataclass(frozen=True)
class AbstractJob:
    """One logical job: a transformation applied to logical files.

    Attributes
    ----------
    job_id:
        Unique id within the workflow — conventionally the derivation name.
    transformation:
        Logical transformation name (resolved later via the TC).
    inputs / outputs:
        Logical file names consumed / produced.
    parameters:
        Scalar (non-file) arguments, name -> string value, exactly as bound
        in the VDL derivation.
    """

    job_id: str
    transformation: str
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    parameters: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.outputs:
            raise WorkflowError(f"job {self.job_id!r} produces no outputs")
        overlap = set(self.inputs) & set(self.outputs)
        if overlap:
            raise WorkflowError(f"job {self.job_id!r} both reads and writes {sorted(overlap)}")


class AbstractWorkflow:
    """A DAG of :class:`AbstractJob` with data-flow-derived edges."""

    def __init__(self, jobs: Iterable[AbstractJob] = ()) -> None:
        self.dag: DAG[AbstractJob] = DAG()
        self._producer: dict[str, str] = {}  # lfn -> job_id
        self._consumers: dict[str, list[str]] = {}  # lfn -> job_ids
        for job in jobs:
            self.add_job(job)

    def add_job(self, job: AbstractJob) -> None:
        """Add a job; wires edges to/from already-present jobs by data flow.

        Edge wiring is O(inputs + outputs) via producer/consumer indexes, so
        building an n-job fan-in workflow is linear, not quadratic.
        """
        for lfn in job.outputs:
            if lfn in self._producer:
                raise WorkflowError(
                    f"logical file {lfn!r} produced by both "
                    f"{self._producer[lfn]!r} and {job.job_id!r}"
                )
        self.dag.add_node(job.job_id, job)
        for lfn in job.outputs:
            self._producer[lfn] = job.job_id
        # upstream edges: producers of my inputs
        for lfn in job.inputs:
            self._consumers.setdefault(lfn, []).append(job.job_id)
            producer = self._producer.get(lfn)
            if producer is not None and producer != job.job_id:
                self.dag.add_edge(producer, job.job_id)
        # downstream edges: consumers of my outputs already in the graph
        for lfn in job.outputs:
            for consumer in self._consumers.get(lfn, ()):
                if consumer != job.job_id:
                    self.dag.add_edge(job.job_id, consumer)
        self.dag.validate()

    # -- queries ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.dag)

    def jobs(self) -> list[AbstractJob]:
        return [payload for _, payload in self.dag.payloads()]

    def job(self, job_id: str) -> AbstractJob:
        return self.dag.payload(job_id)

    def producer_of(self, lfn: str) -> str | None:
        """Job id producing ``lfn``, or None if it is a workflow input."""
        return self._producer.get(lfn)

    def required_inputs(self) -> set[str]:
        """Logical files consumed but not produced — must exist in the RLS.

        These belong to the workflow's *root nodes* in the paper's
        feasibility-check sense.
        """
        consumed = {lfn for job in self.jobs() for lfn in job.inputs}
        return consumed - set(self._producer)

    def products(self) -> set[str]:
        """All logical files produced by the workflow."""
        return set(self._producer)

    def final_products(self) -> set[str]:
        """Products not consumed by any job in this workflow."""
        consumed = {lfn for job in self.jobs() for lfn in job.inputs}
        return set(self._producer) - consumed

    def copy(self) -> "AbstractWorkflow":
        return AbstractWorkflow(self.jobs())
