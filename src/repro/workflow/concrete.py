"""Concrete workflows: site-pinned jobs plus data movement and registration.

Figure 4: the concrete workflow "specifies the resources to be used,
performs the data movement, stages the data in and out of the computation,
delivers it to the user-specified location U and registers the newly
created data product in the RLS."  Three node species correspondingly:
:class:`ComputeNode`, :class:`TransferNode`, :class:`RegistrationNode`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.workflow.abstract import AbstractJob
from repro.workflow.dag import DAG

#: Union payload type for the concrete DAG.
ConcreteNode = "ComputeNode | TransferNode | RegistrationNode"


class TransferKind(str, enum.Enum):
    """Why a transfer node exists."""

    STAGE_IN = "stage-in"  # replica site -> execution site
    INTER_SITE = "inter-site"  # producer site -> consumer site
    STAGE_OUT = "stage-out"  # execution site -> user/output site
    """Delivery of a final product to the user-specified location U."""


@dataclass(frozen=True)
class ComputeNode:
    """A job pinned to an execution site with resolved executable path."""

    node_id: str
    job: AbstractJob
    site: str
    executable: str

    @property
    def transformation(self) -> str:
        return self.job.transformation


@dataclass(frozen=True)
class ClusteredComputeNode:
    """A horizontal cluster: several compute jobs run sequentially as one
    submitted unit (Pegasus's seqexec-style clustering), amortising
    per-job scheduling overhead.  All members share one execution site."""

    node_id: str
    members: tuple[ComputeNode, ...]
    site: str

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise ValueError("a cluster needs at least two member jobs")
        if any(m.site != self.site for m in self.members):
            raise ValueError("cluster members must share the execution site")

    @property
    def transformation(self) -> str:
        return self.members[0].transformation

    def __len__(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class TransferNode:
    """Moves one logical file between sites (GridFTP in the paper)."""

    node_id: str
    lfn: str
    kind: TransferKind
    source_site: str
    source_pfn: str
    dest_site: str
    dest_pfn: str
    size_bytes: int = 0


@dataclass(frozen=True)
class RegistrationNode:
    """Publishes a new data product into the RLS."""

    node_id: str
    lfn: str
    pfn: str
    site: str


class ConcreteWorkflow:
    """DAG over compute / transfer / registration nodes."""

    def __init__(self) -> None:
        self.dag: DAG[object] = DAG()

    def add(self, node: ComputeNode | TransferNode | RegistrationNode) -> str:
        self.dag.add_node(node.node_id, node)
        return node.node_id

    def link(self, parent: str, child: str) -> None:
        self.dag.add_edge(parent, child)

    # -- typed views -------------------------------------------------------------
    def compute_nodes(self) -> list[ComputeNode]:
        return [p for _, p in self.dag.payloads() if isinstance(p, ComputeNode)]

    def clustered_nodes(self) -> list[ClusteredComputeNode]:
        return [p for _, p in self.dag.payloads() if isinstance(p, ClusteredComputeNode)]

    def total_compute_jobs(self) -> int:
        """Compute jobs counting every member of every cluster."""
        return len(self.compute_nodes()) + sum(len(c) for c in self.clustered_nodes())

    def transfer_nodes(self, kind: TransferKind | None = None) -> list[TransferNode]:
        nodes = [p for _, p in self.dag.payloads() if isinstance(p, TransferNode)]
        if kind is not None:
            nodes = [n for n in nodes if n.kind == kind]
        return nodes

    def registration_nodes(self) -> list[RegistrationNode]:
        return [p for _, p in self.dag.payloads() if isinstance(p, RegistrationNode)]

    def __len__(self) -> int:
        return len(self.dag)

    def stats(self) -> dict[str, int]:
        """Node counts and transfer volume — the §5 accounting quantities."""
        transfers = self.transfer_nodes()
        return {
            "compute": len(self.compute_nodes()),
            "clustered": len(self.clustered_nodes()),
            "transfer": len(transfers),
            "stage_in": sum(1 for t in transfers if t.kind == TransferKind.STAGE_IN),
            "inter_site": sum(1 for t in transfers if t.kind == TransferKind.INTER_SITE),
            "stage_out": sum(1 for t in transfers if t.kind == TransferKind.STAGE_OUT),
            "registration": len(self.registration_nodes()),
            "bytes_moved": sum(t.size_bytes for t in transfers),
        }

    def validate(self) -> None:
        self.dag.validate()
