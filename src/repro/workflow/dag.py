"""Directed acyclic graph core.

A small, dependency-free DAG with the operations the planner and executor
need: Kahn topological sort, cycle detection on edge insertion batches,
ancestor/descendant closure, and root/leaf queries.  Node payloads are
arbitrary hashable-id objects; the graph stores ids and a payload map.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Iterator, TypeVar

from repro.core.errors import WorkflowError

NodeT = TypeVar("NodeT")


class DAG(Generic[NodeT]):
    """A DAG of payload objects keyed by string id.

    Edges run parent -> child ("parent must complete before child").
    Acyclicity is enforced by :meth:`validate` and checked automatically by
    :meth:`topological_order`.
    """

    def __init__(self) -> None:
        self._nodes: dict[str, NodeT] = {}
        self._children: dict[str, set[str]] = {}
        self._parents: dict[str, set[str]] = {}

    # -- construction --------------------------------------------------------
    def add_node(self, node_id: str, payload: NodeT) -> None:
        if node_id in self._nodes:
            raise WorkflowError(f"duplicate node id {node_id!r}")
        self._nodes[node_id] = payload
        self._children[node_id] = set()
        self._parents[node_id] = set()

    def add_edge(self, parent: str, child: str) -> None:
        for end in (parent, child):
            if end not in self._nodes:
                raise WorkflowError(f"edge references unknown node {end!r}")
        if parent == child:
            raise WorkflowError(f"self-loop on node {parent!r}")
        self._children[parent].add(child)
        self._parents[child].add(parent)

    def remove_node(self, node_id: str) -> None:
        """Remove a node and all its incident edges."""
        if node_id not in self._nodes:
            raise WorkflowError(f"unknown node {node_id!r}")
        for child in self._children.pop(node_id):
            self._parents[child].discard(node_id)
        for parent in self._parents.pop(node_id):
            self._children[parent].discard(node_id)
        del self._nodes[node_id]

    # -- queries ---------------------------------------------------------------
    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node_ids(self) -> list[str]:
        return list(self._nodes)

    def payload(self, node_id: str) -> NodeT:
        if node_id not in self._nodes:
            raise WorkflowError(f"unknown node {node_id!r}")
        return self._nodes[node_id]

    def payloads(self) -> Iterator[tuple[str, NodeT]]:
        return iter(self._nodes.items())

    def parents(self, node_id: str) -> set[str]:
        return set(self._parents[node_id])

    def children(self, node_id: str) -> set[str]:
        return set(self._children[node_id])

    def edges(self) -> list[tuple[str, str]]:
        return [(p, c) for p, kids in self._children.items() for c in kids]

    def roots(self) -> list[str]:
        """Nodes with no parents, in insertion order."""
        return [n for n in self._nodes if not self._parents[n]]

    def leaves(self) -> list[str]:
        """Nodes with no children, in insertion order."""
        return [n for n in self._nodes if not self._children[n]]

    # -- algorithms ---------------------------------------------------------------
    def topological_order(self) -> list[str]:
        """Kahn's algorithm; raises :class:`WorkflowError` on a cycle.

        Deterministic: ties broken by node insertion order.
        """
        in_degree = {n: len(self._parents[n]) for n in self._nodes}
        order_index = {n: i for i, n in enumerate(self._nodes)}
        ready = deque(sorted((n for n, d in in_degree.items() if d == 0), key=order_index.__getitem__))
        out: list[str] = []
        while ready:
            node = ready.popleft()
            out.append(node)
            newly_ready = []
            for child in self._children[node]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    newly_ready.append(child)
            for child in sorted(newly_ready, key=order_index.__getitem__):
                ready.append(child)
        if len(out) != len(self._nodes):
            stuck = sorted(n for n, d in in_degree.items() if d > 0)
            raise WorkflowError(f"cycle detected involving nodes {stuck}")
        return out

    def validate(self) -> None:
        """Raise :class:`WorkflowError` if the graph has a cycle."""
        self.topological_order()

    def _closure(self, start: str, direction: dict[str, set[str]]) -> set[str]:
        if start not in self._nodes:
            raise WorkflowError(f"unknown node {start!r}")
        seen: set[str] = set()
        frontier = deque(direction[start])
        while frontier:
            node = frontier.popleft()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(direction[node] - seen)
        return seen

    def ancestors(self, node_id: str) -> set[str]:
        """All transitive parents of a node."""
        return self._closure(node_id, self._parents)

    def descendants(self, node_id: str) -> set[str]:
        """All transitive children of a node."""
        return self._closure(node_id, self._children)

    def depth_levels(self) -> list[list[str]]:
        """Nodes grouped by longest-path depth from the roots (for display)."""
        depth: dict[str, int] = {}
        for node in self.topological_order():
            parent_depths = [depth[p] for p in self._parents[node]]
            depth[node] = 1 + max(parent_depths) if parent_depths else 0
        levels: dict[int, list[str]] = {}
        for node, d in depth.items():
            levels.setdefault(d, []).append(node)
        return [levels[d] for d in sorted(levels)]
