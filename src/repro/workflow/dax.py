"""DAX-style XML serialisation of abstract workflows.

Chimera hands Pegasus the abstract workflow as an XML "DAX" document; this
module writes and parses an equivalent dialect so workflows can cross
process boundaries (and so the property tests can round-trip them).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.workflow.abstract import AbstractJob, AbstractWorkflow


def write_dax(workflow: AbstractWorkflow, name: str = "workflow") -> str:
    """Serialise an abstract workflow to DAX-like XML."""
    root = ET.Element("adag", {"name": name, "jobCount": str(len(workflow))})
    for job in workflow.jobs():
        jelem = ET.SubElement(root, "job", {"id": job.job_id, "transformation": job.transformation})
        for key, value in sorted(job.parameters.items()):
            ET.SubElement(jelem, "argument", {"name": key, "value": value})
        for lfn in job.inputs:
            ET.SubElement(jelem, "uses", {"file": lfn, "link": "input"})
        for lfn in job.outputs:
            ET.SubElement(jelem, "uses", {"file": lfn, "link": "output"})
    # Explicit control edges mirror the derived data-flow edges, as in DAX.
    for parent, child in sorted(workflow.dag.edges()):
        celem = ET.SubElement(root, "child", {"ref": child})
        ET.SubElement(celem, "parent", {"ref": parent})
    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def parse_dax(text: str | bytes) -> AbstractWorkflow:
    """Parse DAX-like XML back into an :class:`AbstractWorkflow`.

    Edges are re-derived from the declared file uses; the explicit
    child/parent elements are validated against them.
    """
    if isinstance(text, bytes):
        text = text.decode("utf-8")
    root = ET.fromstring(text)
    if root.tag != "adag":
        raise ValueError(f"not a DAX document: root element {root.tag!r}")
    jobs = []
    for jelem in root.findall("job"):
        inputs = tuple(u.get("file", "") for u in jelem.findall("uses") if u.get("link") == "input")
        outputs = tuple(u.get("file", "") for u in jelem.findall("uses") if u.get("link") == "output")
        parameters = {a.get("name", ""): a.get("value", "") for a in jelem.findall("argument")}
        jobs.append(
            AbstractJob(
                job_id=jelem.get("id", ""),
                transformation=jelem.get("transformation", ""),
                inputs=inputs,
                outputs=outputs,
                parameters=parameters,
            )
        )
    workflow = AbstractWorkflow(jobs)

    declared = {(p.get("ref"), c.get("ref")) for c in root.findall("child") for p in c.findall("parent")}
    derived = set(workflow.dag.edges())
    if declared != derived:
        raise ValueError(
            f"DAX control edges disagree with data flow: "
            f"declared-only={sorted(declared - derived)}, derived-only={sorted(derived - declared)}"
        )
    return workflow
