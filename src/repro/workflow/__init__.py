"""Workflow model: DAGs of jobs, abstract and concrete.

"The workflows are represented as Directed Acyclic Graphs (DAGs)" (§3.2).
Two refinement levels, exactly as the paper distinguishes them:

* :class:`AbstractWorkflow` — logical transformations over logical file
  names, no resources assigned (Figure 1);
* :class:`ConcreteWorkflow` — compute nodes pinned to sites plus the
  transfer and registration nodes Pegasus inserts (Figure 4).

The DAG core is implemented here (Kahn toposort, cycle detection,
ancestors/descendants) and cross-validated against networkx in the tests.
"""

from repro.workflow.abstract import AbstractJob, AbstractWorkflow
from repro.workflow.concrete import (
    ClusteredComputeNode,
    ComputeNode,
    ConcreteWorkflow,
    RegistrationNode,
    TransferKind,
    TransferNode,
)
from repro.workflow.dag import DAG
from repro.workflow.dax import parse_dax, write_dax
from repro.workflow.viz import render_ascii, to_dot

__all__ = [
    "DAG",
    "AbstractJob",
    "AbstractWorkflow",
    "ClusteredComputeNode",
    "ComputeNode",
    "TransferNode",
    "TransferKind",
    "RegistrationNode",
    "ConcreteWorkflow",
    "parse_dax",
    "write_dax",
    "render_ascii",
    "to_dot",
]
