"""Source segmentation: isolate the central galaxy's pixels.

Thresholding at ``background + k sigma`` followed by connected-component
labelling (:func:`scipy.ndimage.label`); the component containing (or
nearest to) the image centre is the target galaxy.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.morphology.background import BackgroundEstimate, estimate_background
from repro.morphology.geometry import CutoutGeometry, index_grids


def central_source_mask(
    image: np.ndarray,
    background: BackgroundEstimate | None = None,
    threshold_sigma: float = 1.5,
    min_pixels: int = 5,
) -> np.ndarray:
    """Boolean mask of the connected source covering the cutout centre.

    Returns an all-False mask when no significant source exists (the
    "bad quality image" failure mode of §4.3.1(4), which callers must
    translate into an invalid-row flag rather than a crash).
    """
    image = np.asarray(image, dtype=float)
    if background is None:
        background = estimate_background(image)
    threshold = background.level + threshold_sigma * max(background.sigma, 1e-12)
    significant = image > threshold
    labels, n_labels = ndimage.label(significant)
    if n_labels == 0:
        return np.zeros(image.shape, dtype=bool)

    cy, cx = (image.shape[0] - 1) / 2.0, (image.shape[1] - 1) / 2.0
    center_label = int(labels[int(round(cy)), int(round(cx))])
    sizes = np.bincount(labels.ravel(), minlength=n_labels + 1)
    if center_label == 0 or sizes[center_label] < min_pixels:
        # Centre pixel below threshold (or on a noise speck): take the
        # closest component centroid among real (>= min_pixels) components.
        candidates = [lab for lab in range(1, n_labels + 1) if sizes[lab] >= min_pixels]
        if not candidates:
            return np.zeros(image.shape, dtype=bool)
        centroids = ndimage.center_of_mass(significant, labels, candidates)
        dists = [np.hypot(y - cy, x - cx) for y, x in centroids]
        center_label = candidates[int(np.argmin(dists))]

    mask = labels == center_label
    if mask.sum() < min_pixels:
        return np.zeros(image.shape, dtype=bool)
    return mask


def source_centroid(
    image: np.ndarray,
    mask: np.ndarray,
    geometry: CutoutGeometry | None = None,
) -> tuple[float, float]:
    """Flux-weighted centroid (y, x) of the masked source, background-free
    flux assumed already subtracted by the caller."""
    if not mask.any():
        raise ValueError("empty source mask")
    flux = np.where(mask, np.maximum(image, 0.0), 0.0)
    total = flux.sum()
    if total <= 0:
        raise ValueError("source has no positive flux")
    if geometry is not None and geometry.shape == tuple(image.shape):
        yy, xx = geometry.yy, geometry.xx
    else:
        yy, xx = index_grids(tuple(image.shape))
    return float((flux * yy).sum() / total), float((flux * xx).sum() / total)
