"""Source segmentation: isolate the central galaxy's pixels.

Thresholding at ``background + k sigma`` followed by connected-component
labelling (:func:`scipy.ndimage.label`); the component containing (or
nearest to) the image centre is the target galaxy.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy import ndimage

from repro.morphology.background import BackgroundEstimate, estimate_background
from repro.morphology.geometry import CutoutGeometry, index_grids


def central_source_mask(
    image: np.ndarray,
    background: BackgroundEstimate | None = None,
    threshold_sigma: float = 1.5,
    min_pixels: int = 5,
) -> np.ndarray:
    """Boolean mask of the connected source covering the cutout centre.

    Returns an all-False mask when no significant source exists (the
    "bad quality image" failure mode of §4.3.1(4), which callers must
    translate into an invalid-row flag rather than a crash).
    """
    image = np.asarray(image, dtype=float)
    if background is None:
        background = estimate_background(image)
    threshold = background.level + threshold_sigma * max(background.sigma, 1e-12)
    significant = image > threshold
    labels, n_labels = ndimage.label(significant)
    if n_labels == 0:
        return np.zeros(image.shape, dtype=bool)

    cy, cx = (image.shape[0] - 1) / 2.0, (image.shape[1] - 1) / 2.0
    center_label = int(labels[int(round(cy)), int(round(cx))])
    sizes = np.bincount(labels.ravel(), minlength=n_labels + 1)
    if center_label == 0 or sizes[center_label] < min_pixels:
        # Centre pixel below threshold (or on a noise speck): take the
        # closest component centroid among real (>= min_pixels) components.
        candidates = [lab for lab in range(1, n_labels + 1) if sizes[lab] >= min_pixels]
        if not candidates:
            return np.zeros(image.shape, dtype=bool)
        centroids = ndimage.center_of_mass(significant, labels, candidates)
        dists = [np.hypot(y - cy, x - cx) for y, x in centroids]
        center_label = candidates[int(np.argmin(dists))]

    mask = labels == center_label
    if mask.sum() < min_pixels:
        return np.zeros(image.shape, dtype=bool)
    return mask


#: 3-D labelling structure with zero connectivity across the batch axis:
#: one ``ndimage.label`` call labels every slice of an (N, H, W) stack
#: independently, with the same 4-connectivity the 2-D default uses.
_BATCH_STRUCTURE = np.zeros((3, 3, 3), dtype=bool)
_BATCH_STRUCTURE[1] = [[False, True, False], [True, True, True], [False, True, False]]


def central_source_mask_batch(
    stack: np.ndarray,
    backgrounds: Sequence[BackgroundEstimate],
    threshold_sigma: float = 1.5,
    min_pixels: int = 5,
) -> np.ndarray:
    """Central-source masks for a whole ``(N, H, W)`` stack in one pass.

    The stack is thresholded and labelled with a single 3-D
    ``ndimage.label`` whose structure carries no connectivity across the
    batch axis, so every slice is labelled independently (with global
    numbering) by one C pass instead of N calls.  Rows whose centre pixel
    lands on a real (>= ``min_pixels``) component — the overwhelmingly
    common case for centred cutouts — are resolved by a vectorised label
    comparison; the rare off-centre/speck rows fall back to the scalar
    :func:`central_source_mask` for bit-identical nearest-centroid
    semantics.
    """
    stack = np.asarray(stack, dtype=float)
    if stack.ndim != 3:
        raise ValueError(f"expected an (N, H, W) stack, got shape {stack.shape}")
    n_images, h, w = stack.shape
    thresholds = np.array(
        [bg.level + threshold_sigma * max(bg.sigma, 1e-12) for bg in backgrounds]
    )
    significant = stack > thresholds[:, None, None]
    labels, _ = ndimage.label(significant, structure=_BATCH_STRUCTURE)
    cyi, cxi = int(round((h - 1) / 2.0)), int(round((w - 1) / 2.0))
    center_labels = labels[:, cyi, cxi]
    sizes = np.bincount(labels.ravel())
    easy = (center_labels > 0) & (sizes[center_labels] >= min_pixels)
    masks = (labels == center_labels[:, None, None]) & easy[:, None, None]
    for i in np.nonzero(~easy)[0]:
        masks[i] = central_source_mask(
            stack[i], backgrounds[i], threshold_sigma=threshold_sigma, min_pixels=min_pixels
        )
    return masks


def source_centroid_batch(
    images: np.ndarray,
    masks: np.ndarray,
    geometry: CutoutGeometry,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flux-weighted centroids of N masked sources in one pass.

    Returns ``(centers_y, centers_x, totals)``; rows with no positive
    masked flux carry ``totals[i] <= 0`` (the caller converts those to
    invalid rows, mirroring :func:`source_centroid`'s ``ValueError``).
    Rows with an empty mask also land there.
    """
    flux = np.where(masks, np.maximum(images, 0.0), 0.0)
    totals = flux.sum(axis=(1, 2))
    safe = np.where(totals > 0, totals, 1.0)
    centers_y = (flux * geometry.yy).sum(axis=(1, 2)) / safe
    centers_x = (flux * geometry.xx).sum(axis=(1, 2)) / safe
    return centers_y, centers_x, totals


def source_centroid(
    image: np.ndarray,
    mask: np.ndarray,
    geometry: CutoutGeometry | None = None,
) -> tuple[float, float]:
    """Flux-weighted centroid (y, x) of the masked source, background-free
    flux assumed already subtracted by the caller."""
    if not mask.any():
        raise ValueError("empty source mask")
    flux = np.where(mask, np.maximum(image, 0.0), 0.0)
    total = flux.sum()
    if total <= 0:
        raise ValueError("source has no positive flux")
    if geometry is not None and geometry.shape == tuple(image.shape):
        yy, xx = geometry.yy, geometry.xx
    else:
        yy, xx = index_grids(tuple(image.shape))
    return float((flux * yy).sum() / total), float((flux * xx).sum() / total)
