"""Naive reference implementations of the morphology kernels.

These are the seed (pre-fast-path) implementations, kept verbatim except
for one semantic fix that the optimised kernels also carry: the asymmetry
noise-floor correction is evaluated at the *minimising* centre rather than
inconsistently at the input centre.

They exist for two reasons:

1. **Parity**: the golden tests assert that the geometry-cached fast path
   in :mod:`repro.morphology.measures` / :mod:`repro.morphology.petrosian`
   matches these implementations to <= 1e-9 on rendered cutouts.
2. **Trajectory benchmarking**: ``benchmarks/run_bench.py`` times these
   against the fast path and records the speedups in
   ``BENCH_morphology.json`` so later PRs can gate on regressions.

Do not "optimise" this module — its value is being the slow, obviously
correct baseline.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.catalog.cosmology import FlatLambdaCDM
from repro.fits.hdu import ImageHDU
from repro.morphology.background import estimate_background
from repro.morphology.pipeline import MorphologyResult
from repro.morphology.segmentation import central_source_mask

__all__ = [
    "curve_of_growth_radii_reference",
    "concentration_index_reference",
    "asymmetry_index_reference",
    "average_surface_brightness_reference",
    "radial_profile_reference",
    "petrosian_radius_reference",
    "source_centroid_reference",
    "galmorph_reference",
]


def _aperture_flux_reference(image, center, radius):
    cy, cx = center
    yy, xx = np.indices(image.shape, dtype=float)
    mask = np.hypot(yy - cy, xx - cx) <= radius
    return float(image[mask].sum())


def curve_of_growth_radii_reference(image, center, total_radius, fractions=(0.2, 0.8)):
    cy, cx = center
    yy, xx = np.indices(image.shape, dtype=float)
    r = np.hypot(yy - cy, xx - cx).ravel()
    flux = np.asarray(image, dtype=float).ravel()
    inside = r <= total_radius
    r, flux = r[inside], flux[inside]
    order = np.argsort(r)
    r_sorted = r[order]
    cumulative = np.cumsum(flux[order])
    total = cumulative[-1] if cumulative.size else 0.0
    if total <= 0:
        raise ValueError("non-positive total flux inside the measurement aperture")
    out = []
    for fraction in fractions:
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"flux fraction must be in (0, 1): {fraction}")
        i = int(np.searchsorted(cumulative, fraction * total))
        out.append(float(r_sorted[min(i, r_sorted.size - 1)]))
    return tuple(out)


def concentration_index_reference(image, center, total_radius):
    r20, r80 = curve_of_growth_radii_reference(image, center, total_radius, (0.2, 0.8))
    r20 = max(r20, 0.5)
    if r80 <= 0:
        raise ValueError("r80 is non-positive; source is unresolved")
    return float(5.0 * np.log10(r80 / r20))


def asymmetry_index_reference(
    image, center, radius, background_sigma=0.0, optimize_center=True
):
    """Seed 3x3 search: nine full ``ndimage.shift`` calls, the aperture mask
    rebuilt every evaluation.  Noise correction at the minimising centre
    (the semantic fix shared with the fast path)."""
    image = np.asarray(image, dtype=float)
    cy, cx = center
    yy, xx = np.indices(image.shape, dtype=float)
    acy = (image.shape[0] - 1) / 2.0
    acx = (image.shape[1] - 1) / 2.0

    def stats_at(oy: float, ox: float) -> tuple[float, float]:
        ay, ax = cy + oy, cx + ox
        centred = ndimage.shift(image, (acy - ay, acx - ax), order=1, mode="nearest")
        rotated = centred[::-1, ::-1]
        aperture = np.hypot(yy - acy, xx - acx) <= radius
        denom = 2.0 * np.abs(centred[aperture]).sum()
        residual = np.abs(centred[aperture] - rotated[aperture]).sum()
        return float(residual), float(denom)

    offsets = [0.0] if not optimize_center else [-0.5, 0.0, 0.5]
    best = np.inf
    best_denom = 0.0
    for oy in offsets:
        for ox in offsets:
            residual, denom = stats_at(oy, ox)
            value = residual / denom if denom > 0 else np.inf
            if value < best:
                best, best_denom = value, denom
    if not np.isfinite(best):
        raise ValueError("asymmetry undefined: no flux inside the aperture")

    if background_sigma > 0.0:
        aperture = np.hypot(yy - acy, xx - acx) <= radius
        noise_term = aperture.sum() * 2.0 * background_sigma / np.sqrt(np.pi) / best_denom
        best = best - noise_term
    return float(max(best, 0.0))


def average_surface_brightness_reference(
    image, center, radius, pixel_scale_arcsec, zero_point=0.0
):
    if pixel_scale_arcsec <= 0:
        raise ValueError(f"pixel scale must be positive: {pixel_scale_arcsec}")
    flux = _aperture_flux_reference(image, center, radius)
    if flux <= 0:
        raise ValueError("non-positive aperture flux; cannot form a magnitude")
    cy, cx = center
    yy, xx = np.indices(image.shape, dtype=float)
    n_pix = int((np.hypot(yy - cy, xx - cx) <= radius).sum())
    area_arcsec2 = n_pix * pixel_scale_arcsec**2
    return float(zero_point - 2.5 * np.log10(flux / area_arcsec2))


def radial_profile_reference(image, center, max_radius=None, bin_width=1.0):
    cy, cx = center
    yy, xx = np.indices(image.shape, dtype=float)
    r = np.hypot(yy - cy, xx - cx)
    if max_radius is None:
        max_radius = float(r.max())
    nbins = max(int(np.ceil(max_radius / bin_width)), 1)
    idx = np.minimum((r / bin_width).astype(int), nbins)
    flat_idx = idx.ravel()
    sums = np.bincount(flat_idx, weights=np.asarray(image).ravel(), minlength=nbins + 1)[:nbins]
    counts = np.bincount(flat_idx, minlength=nbins + 1)[:nbins]
    radii = (np.arange(nbins) + 0.5) * bin_width
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
    return radii, means


def petrosian_radius_reference(image, center, eta=0.2, bin_width=1.0):
    """Seed two-pass Petrosian: the radial binning is built twice."""
    if not 0.0 < eta < 1.0:
        raise ValueError(f"eta must be in (0, 1): {eta}")
    radii, mu_local = radial_profile_reference(image, center, bin_width=bin_width)
    if radii.size < 3:
        raise ValueError("image too small for a Petrosian profile")

    cy, cx = center
    yy, xx = np.indices(image.shape, dtype=float)
    r = np.hypot(yy - cy, xx - cx)
    nbins = radii.size
    idx = np.minimum((r / bin_width).astype(int), nbins)
    sums = np.bincount(idx.ravel(), weights=np.asarray(image).ravel(), minlength=nbins + 1)[:nbins]
    counts = np.bincount(idx.ravel(), minlength=nbins + 1)[:nbins]
    cum_flux = np.cumsum(sums)
    cum_area = np.cumsum(counts)
    with np.errstate(invalid="ignore", divide="ignore"):
        mu_mean = np.where(cum_area > 0, cum_flux / np.maximum(cum_area, 1), 0.0)

    valid = mu_mean > 0
    ratio = np.where(valid, mu_local / np.where(valid, mu_mean, 1.0), np.inf)
    below = np.nonzero((ratio[1:] < eta))[0]
    if below.size == 0:
        raise ValueError("Petrosian ratio never falls below eta inside the frame")
    i = int(below[0]) + 1
    r0, r1 = radii[i - 1], radii[i]
    f0, f1 = ratio[i - 1], ratio[i]
    if not np.isfinite(f0) or f1 == f0:
        return float(r1)
    t = (eta - f0) / (f1 - f0)
    return float(r0 + np.clip(t, 0.0, 1.0) * (r1 - r0))


def source_centroid_reference(image, mask):
    if not mask.any():
        raise ValueError("empty source mask")
    flux = np.where(mask, np.maximum(image, 0.0), 0.0)
    total = flux.sum()
    if total <= 0:
        raise ValueError("source has no positive flux")
    yy, xx = np.indices(image.shape, dtype=float)
    return float((flux * yy).sum() / total), float((flux * xx).sum() / total)


def galmorph_reference(
    image: ImageHDU,
    redshift: float,
    pix_scale: float,
    zero_point: float = 0.0,
    ho: float = 100.0,
    om: float = 0.3,
    flat: bool = True,
    galaxy_id: str | None = None,
) -> MorphologyResult:
    """The seed per-galaxy pipeline: no geometry sharing, no caching."""
    if not flat:
        raise NotImplementedError("only flat cosmologies are supported, as in the paper")
    gid = galaxy_id if galaxy_id is not None else str(image.header.get("OBJECT", "unknown"))
    if image.data is None:
        return MorphologyResult(gid, valid=False, error="image HDU carries no data")
    try:
        data = np.asarray(image.data, dtype=float)
        background = estimate_background(data)
        subtracted = data - background.level
        mask = central_source_mask(data, background)
        if not mask.any():
            return MorphologyResult(gid, valid=False, error="no significant central source")
        center = source_centroid_reference(subtracted, mask)
        r_p = petrosian_radius_reference(subtracted, center)
        measure_radius = min(1.5 * r_p, min(data.shape) / 2.0 - 1.0)
        if measure_radius <= 1.0:
            return MorphologyResult(gid, valid=False, error="source unresolved at this pixel scale")

        pixel_scale_arcsec = abs(pix_scale) * 3600.0
        mu = average_surface_brightness_reference(
            subtracted, center, measure_radius, pixel_scale_arcsec, zero_point=zero_point
        )
        c = concentration_index_reference(subtracted, center, measure_radius)
        a = asymmetry_index_reference(
            subtracted, center, measure_radius, background_sigma=background.sigma
        )

        cosmo = FlatLambdaCDM(h0=ho, omega_m=om)
        r_p_arcsec = r_p * pixel_scale_arcsec
        r_p_kpc = (
            r_p_arcsec * cosmo.kpc_per_arcsec(max(redshift, 0.0)) if redshift > 0 else float("nan")
        )
        return MorphologyResult(
            galaxy_id=gid,
            valid=True,
            surface_brightness=mu,
            concentration=c,
            asymmetry=a,
            petrosian_radius_arcsec=r_p_arcsec,
            petrosian_radius_kpc=r_p_kpc,
        )
    except (ValueError, FloatingPointError) as exc:
        return MorphologyResult(gid, valid=False, error=str(exc))
