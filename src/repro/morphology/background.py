"""Sky background estimation.

Cutouts arrive with the sky level left in; every measurement first needs a
robust background estimate.  We use the classic sigma-clipped statistics of
the image border (the galaxy sits in the centre of a cutout by
construction, so the border is sky-dominated).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.morphology.geometry import border_mask


@dataclass(frozen=True)
class BackgroundEstimate:
    """Robust sky level and per-pixel noise."""

    level: float
    sigma: float
    n_pixels: int


def _border_pixels(image: np.ndarray, width: int) -> np.ndarray:
    """Flattened border frame of the image, ``width`` pixels deep.

    The boolean frame mask depends only on (shape, width), so it comes out
    of the shared geometry cache instead of being rebuilt per cutout.
    """
    h, w = image.shape
    width = min(width, h // 2, w // 2)
    if width < 1:
        raise ValueError(f"image {image.shape} too small for a border estimate")
    return image[border_mask((h, w), width)]


def _range_median_std(
    s: np.ndarray,
    p1: np.ndarray,
    p2: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    rows: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row median/std of the sorted slice ``s[row, lo:hi]`` in O(N).

    ``s`` is the ``(N, B)`` row-sorted border values; ``p1``/``p2`` are
    exclusive prefix sums of ``s - s[:, :1]`` and its square.  The median
    is exactly ``np.median`` of the slice; the std uses the shifted-origin
    sum-of-squares identity, which matches ``np.std`` of the slice to a
    few ulps (the shift keeps the cancellation benign — deviations, not
    raw sky levels, get squared).
    """
    if rows is None:
        rows = np.arange(s.shape[0])
    n = hi - lo
    median = (s[rows, lo + (n - 1) // 2] + s[rows, lo + n // 2]) / 2.0
    mean_d = (p1[rows, hi] - p1[rows, lo]) / n
    var = (p2[rows, hi] - p2[rows, lo]) / n - mean_d * mean_d
    sigma = np.sqrt(np.maximum(var, 0.0))
    return median, sigma


def estimate_background_batch(
    stack: np.ndarray,
    border_width: int = 4,
    clip_sigma: float = 3.0,
    max_iterations: int = 5,
) -> list[BackgroundEstimate]:
    """Sigma-clipped border statistics for a whole ``(N, H, W)`` stack.

    The clip never re-admits a pixel, so in value-sorted order every
    row's kept set is a contiguous ``[lo, hi)`` range: one sort and one
    pair of prefix sums per row replace per-iteration sort/mask passes,
    and each iteration is a single vectorised threshold compare (the same
    ``|x - median| <= k*sigma`` predicate as the scalar path, evaluated on
    the same float values) plus O(N) bound updates.  Per-row break
    conditions (zero sigma, no pixel clipped, fewer than 8 survivors)
    mirror :func:`estimate_background` exactly; results match the scalar
    estimator to well within the 1e-9 parity contract (the median is
    exact; the std differs only in summation order).  All arithmetic is
    per-row, so chunked execution is bit-identical to whole-batch.
    """
    stack = np.asarray(stack, dtype=float)
    if stack.ndim != 3:
        raise ValueError(f"expected an (N, H, W) stack, got shape {stack.shape}")
    n_images, h, w = stack.shape
    width = min(border_width, h // 2, w // 2)
    if width < 1:
        raise ValueError(f"image {(h, w)} too small for a border estimate")
    values = stack[:, border_mask((h, w), width)]
    s = np.sort(values, axis=1)
    d = s - s[:, :1]
    zero = np.zeros((n_images, 1))
    p1 = np.concatenate([zero, np.cumsum(d, axis=1)], axis=1)
    p2 = np.concatenate([zero, np.cumsum(d * d, axis=1)], axis=1)
    n_border = values.shape[1]
    lo = np.zeros(n_images, dtype=np.intp)
    hi = np.full(n_images, n_border, dtype=np.intp)
    active = np.ones(n_images, dtype=bool)
    rows = np.arange(n_images)
    dev = np.empty_like(s)
    inside = np.empty(s.shape, dtype=bool)
    level = np.empty(n_images)
    sigma_out = np.empty(n_images)
    for _ in range(max_iterations):
        if not active.any():
            break
        median, sigma = _range_median_std(s, p1, p2, lo, hi, rows)
        # A row that stops this iteration keeps exactly these statistics
        # (its kept range no longer changes), so the scalar path's final
        # median/std recompute is only needed for rows that clip on every
        # iteration.
        np.copyto(level, median, where=active)
        np.copyto(sigma_out, sigma, where=active)
        np.subtract(s, median[:, None], out=dev)
        np.abs(dev, out=dev)
        np.less_equal(dev, (clip_sigma * sigma)[:, None], out=inside)
        # the predicate is monotone along each sorted row, so the kept
        # pixels of the current range form the contiguous intersection
        first = np.argmax(inside, axis=1)
        new_lo = np.maximum(lo, first)
        new_hi = np.minimum(hi, first + inside.sum(axis=1))
        stop = (sigma == 0.0) | ((new_lo == lo) & (new_hi == hi)) | (new_hi - new_lo < 8)
        active &= ~stop
        np.copyto(lo, new_lo, where=active)
        np.copyto(hi, new_hi, where=active)
    if active.any():
        median, sigma = _range_median_std(s, p1, p2, lo, hi, rows)
        np.copyto(level, median, where=active)
        np.copyto(sigma_out, sigma, where=active)
    n_pixels = hi - lo
    return [
        BackgroundEstimate(
            level=float(level[i]), sigma=float(sigma_out[i]), n_pixels=int(n_pixels[i])
        )
        for i in range(n_images)
    ]


def estimate_background(
    image: np.ndarray,
    border_width: int = 4,
    clip_sigma: float = 3.0,
    max_iterations: int = 5,
) -> BackgroundEstimate:
    """Sigma-clipped median/std of the cutout border.

    Iteratively rejects pixels more than ``clip_sigma`` standard deviations
    from the median — outliers here are neighbouring sources or galaxy
    light leaking into the frame.
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    values = _border_pixels(image, border_width)
    for _ in range(max_iterations):
        median = np.median(values)
        sigma = np.std(values)
        if sigma == 0:
            break
        keep = np.abs(values - median) <= clip_sigma * sigma
        if keep.all():
            break
        if keep.sum() < 8:
            break  # refuse to clip the sample away entirely
        values = values[keep]
    return BackgroundEstimate(
        level=float(np.median(values)),
        sigma=float(np.std(values)),
        n_pixels=int(values.size),
    )
