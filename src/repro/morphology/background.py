"""Sky background estimation.

Cutouts arrive with the sky level left in; every measurement first needs a
robust background estimate.  We use the classic sigma-clipped statistics of
the image border (the galaxy sits in the centre of a cutout by
construction, so the border is sky-dominated).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.morphology.geometry import border_mask


@dataclass(frozen=True)
class BackgroundEstimate:
    """Robust sky level and per-pixel noise."""

    level: float
    sigma: float
    n_pixels: int


def _border_pixels(image: np.ndarray, width: int) -> np.ndarray:
    """Flattened border frame of the image, ``width`` pixels deep.

    The boolean frame mask depends only on (shape, width), so it comes out
    of the shared geometry cache instead of being rebuilt per cutout.
    """
    h, w = image.shape
    width = min(width, h // 2, w // 2)
    if width < 1:
        raise ValueError(f"image {image.shape} too small for a border estimate")
    return image[border_mask((h, w), width)]


def estimate_background(
    image: np.ndarray,
    border_width: int = 4,
    clip_sigma: float = 3.0,
    max_iterations: int = 5,
) -> BackgroundEstimate:
    """Sigma-clipped median/std of the cutout border.

    Iteratively rejects pixels more than ``clip_sigma`` standard deviations
    from the median — outliers here are neighbouring sources or galaxy
    light leaking into the frame.
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    values = _border_pixels(image, border_width)
    for _ in range(max_iterations):
        median = np.median(values)
        sigma = np.std(values)
        if sigma == 0:
            break
        keep = np.abs(values - median) <= clip_sigma * sigma
        if keep.all():
            break
        if keep.sum() < 8:
            break  # refuse to clip the sample away entirely
        values = values[keep]
    return BackgroundEstimate(
        level=float(np.median(values)),
        sigma=float(np.std(values)),
        n_pixels=int(values.size),
    )
