"""Shared cutout geometry: the hot-path cache behind the §5 campaign.

Every morphology kernel needs the same few arrays for a given cutout —
pixel index grids, a radius map about some centre, the sorted-radius
permutation that turns a curve of growth into one ``cumsum``, circular
aperture masks, radial-bin indices for Petrosian profiles.  The seed
implementation rebuilt each of these from ``np.indices``/``np.hypot`` on
every call: a single ``galmorph()`` recomputed identical coordinate grids
~15 times, and the 3x3 asymmetry centre search recomputed the same
aperture mask 9 times.

:class:`CutoutGeometry` computes each product once per (centre, radius)
and hands out **read-only** views, so one instance can be shared across
every kernel of a measurement — and, via :func:`shared_geometry`, across
every galaxy of a batch with the same cutout shape (the common case: a
cluster campaign cuts all members to one size).

Thread safety: all memo tables are guarded by a lock and every cached
array has ``writeable=False``, so instances are safe to share across the
``ThreadPoolExecutor`` workers of :class:`repro.condor.local.LocalExecutor`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from functools import lru_cache

import numpy as np

from repro import telemetry

__all__ = [
    "CutoutGeometry",
    "index_grids",
    "border_mask",
    "shared_geometry",
]

#: Decimal places used to key aperture masks: radii closer than 1e-9 share
#: a mask (the parity contract of the fast path is <= 1e-9).
_RADIUS_KEY_DECIMALS = 9


def _readonly(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


@lru_cache(maxsize=64)
def index_grids(shape: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
    """Cached ``np.indices`` grids ``(yy, xx)`` for a cutout shape.

    Read-only; identical values to ``np.indices(shape, dtype=float)``.
    """
    yy, xx = np.indices(shape, dtype=float)
    return _readonly(yy), _readonly(xx)


@lru_cache(maxsize=64)
def border_mask(shape: tuple[int, int], width: int) -> np.ndarray:
    """Cached boolean border-frame mask, ``width`` pixels deep (read-only)."""
    mask = np.zeros(shape, dtype=bool)
    mask[:width, :] = True
    mask[-width:, :] = True
    mask[:, :width] = True
    mask[:, -width:] = True
    return _readonly(mask)


class CutoutGeometry:
    """Memoised geometric products for one cutout shape.

    All results are exact — byte-identical arithmetic to the seed
    kernels' inline computations — just computed once.  Cache keys use the
    exact centre floats and the radius rounded to 1e-9 (two radii closer
    than the parity tolerance share an aperture mask).

    Memo tables are bounded LRUs (``max_entries`` per product kind), so a
    long-lived shared instance on a compute node cannot grow without
    bound.
    """

    def __init__(self, shape: tuple[int, int], max_entries: int = 64) -> None:
        if len(shape) != 2:
            raise ValueError(f"expected a 2-D cutout shape, got {shape!r}")
        self.shape = (int(shape[0]), int(shape[1]))
        self.max_entries = int(max_entries)
        self.yy, self.xx = index_grids(self.shape)
        self._lock = threading.RLock()
        self._radius_maps: OrderedDict[tuple[float, float], np.ndarray] = OrderedDict()
        self._sorted: OrderedDict[tuple[float, float], tuple[np.ndarray, np.ndarray]] = (
            OrderedDict()
        )
        self._masks: OrderedDict[tuple, tuple[np.ndarray, int]] = OrderedDict()
        self._radial_bins: OrderedDict[tuple, tuple[np.ndarray, int, np.ndarray]] = OrderedDict()

    # -- keys / bookkeeping ----------------------------------------------------
    @property
    def array_center(self) -> tuple[float, float]:
        """The (y, x) centre of the pixel grid — rotation axis of the
        asymmetry index."""
        return ((self.shape[0] - 1) / 2.0, (self.shape[1] - 1) / 2.0)

    @staticmethod
    def _center_key(center: tuple[float, float]) -> tuple[float, float]:
        return (float(center[0]), float(center[1]))

    def _get(self, table: OrderedDict, key, compute):
        """LRU lookup with bounded size; values are computed outside the
        fast path at most once per key (benign duplicate computation under
        a race is prevented by the lock).

        Hit/miss traffic feeds the ``geometry_cache_{hits,misses}_total``
        counters when telemetry is enabled; disabled, the cost is one
        flag test per lookup.
        """
        with self._lock:
            if key in table:
                table.move_to_end(key)
                value = table[key]
            else:
                value = None
        if value is not None:
            telemetry.count("geometry_cache_hits_total")
            return value
        telemetry.count("geometry_cache_misses_total")
        value = compute()
        with self._lock:
            if key not in table:
                table[key] = value
                if len(table) > self.max_entries:
                    table.popitem(last=False)
            else:
                table.move_to_end(key)
            return table[key]

    # -- products ---------------------------------------------------------------
    def radius_map(self, center: tuple[float, float]) -> np.ndarray:
        """``hypot(yy - cy, xx - cx)`` about ``center`` (read-only)."""
        key = self._center_key(center)

        def compute() -> np.ndarray:
            cy, cx = key
            return _readonly(np.hypot(self.yy - cy, self.xx - cx))

        return self._get(self._radius_maps, key, compute)

    def sorted_radii(self, center: tuple[float, float]) -> tuple[np.ndarray, np.ndarray]:
        """``(r_sorted, order)``: flattened radii about ``center`` in
        ascending order and the argsort permutation that produced them.

        ``image.ravel()[order]`` puts pixel fluxes in curve-of-growth
        order; both arrays are read-only.
        """
        key = self._center_key(center)

        def compute() -> tuple[np.ndarray, np.ndarray]:
            r = self.radius_map(key).ravel()
            order = np.argsort(r, kind="stable")
            return _readonly(r[order]), _readonly(order)

        return self._get(self._sorted, key, compute)

    def aperture_mask(self, center: tuple[float, float], radius: float) -> np.ndarray:
        """Boolean mask ``radius_map(center) <= radius`` (read-only)."""
        return self._aperture(center, radius)[0]

    def aperture_npix(self, center: tuple[float, float], radius: float) -> int:
        """Pixel count of :meth:`aperture_mask` (cached with the mask)."""
        return self._aperture(center, radius)[1]

    def aperture_weights(self, center: tuple[float, float], radius: float) -> np.ndarray:
        """Flattened 0/1 float weights of :meth:`aperture_mask` (read-only).

        Masked sums become BLAS dot products against this vector — the form
        the batched asymmetry search consumes.
        """
        return self._aperture(center, radius)[2]

    def _aperture(
        self, center: tuple[float, float], radius: float
    ) -> tuple[np.ndarray, int, np.ndarray]:
        ckey = self._center_key(center)
        key = (ckey, round(float(radius), _RADIUS_KEY_DECIMALS))

        def compute() -> tuple[np.ndarray, int, np.ndarray]:
            mask = _readonly(self.radius_map(ckey) <= float(radius))
            weights = _readonly(mask.ravel().astype(float))
            return mask, int(mask.sum()), weights

        return self._get(self._masks, key, compute)

    # -- batch views ------------------------------------------------------------
    def radius_maps_batch(self, centers_y: np.ndarray, centers_x: np.ndarray) -> np.ndarray:
        """``(N, H, W)`` radius maps about N per-galaxy centres in one pass.

        Per-galaxy centroids are continuous, so these cannot be memoised —
        but one broadcast ``hypot`` over the whole stack replaces N scalar
        calls, and each row is elementwise identical to
        :meth:`radius_map` of that centre.
        """
        cy = np.asarray(centers_y, dtype=float)[:, None, None]
        cx = np.asarray(centers_x, dtype=float)[:, None, None]
        return np.hypot(self.yy - cy, self.xx - cx)

    def aperture_weights_batch(
        self, center: tuple[float, float], radii: np.ndarray
    ) -> np.ndarray:
        """``(N, H*W)`` flattened 0/1 weights of N apertures about one
        shared centre with per-galaxy radii.

        The common case is the batched asymmetry search: every candidate
        is evaluated about the array centre, so the radius map is a single
        memoised product and N masks are one broadcast comparison.  Row
        ``i`` equals ``aperture_weights(center, radii[i])``.
        """
        r_flat = self.radius_map(center).ravel()
        radii = np.asarray(radii, dtype=float)
        return (r_flat[None, :] <= radii[:, None]).astype(float)

    def aperture_npix_batch(self, center: tuple[float, float], radii: np.ndarray) -> np.ndarray:
        """Pixel counts of N apertures about one shared centre.

        Uses the memoised sorted-radius permutation: the count of pixels
        with ``r <= radius`` is one ``searchsorted`` per batch instead of
        N mask sums.  Matches :meth:`aperture_npix` exactly (the mask is
        ``radius_map <= radius`` and ``r_sorted`` is the same array
        sorted).
        """
        r_sorted, _ = self.sorted_radii(center)
        return np.searchsorted(r_sorted, np.asarray(radii, dtype=float), side="right")

    def sorted_flux_batch(self, centers_y: np.ndarray, centers_x: np.ndarray,
                          images: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(r_sorted, flux_sorted)`` rows for N per-centre curves of growth.

        One stable batched argsort over the per-galaxy radius maps; row
        ``i`` carries exactly what :meth:`sorted_radii` + a flux gather
        would produce for ``(centers_y[i], centers_x[i])``.
        """
        n = images.shape[0]
        r = self.radius_maps_batch(centers_y, centers_x).reshape(n, -1)
        order = np.argsort(r, axis=1, kind="stable")
        r_sorted = np.take_along_axis(r, order, axis=1)
        flux_sorted = np.take_along_axis(images.reshape(n, -1), order, axis=1)
        return r_sorted, flux_sorted

    def radial_bin_index(
        self,
        center: tuple[float, float],
        bin_width: float,
        max_radius: float | None = None,
    ) -> tuple[np.ndarray, int, np.ndarray]:
        """``(flat_idx, nbins, counts)`` for azimuthal-profile binning.

        ``flat_idx`` is the flattened per-pixel bin index (overflow bin =
        ``nbins``) and ``counts`` the per-bin pixel counts — both depend
        only on geometry, so a whole batch of same-shape cutouts shares
        one ``bincount`` of the index array.
        """
        ckey = self._center_key(center)
        r = self.radius_map(ckey)
        if max_radius is None:
            max_radius = float(r.max())
        key = (ckey, float(bin_width), float(max_radius))

        def compute() -> tuple[np.ndarray, int, np.ndarray]:
            nbins = max(int(np.ceil(max_radius / bin_width)), 1)
            idx = np.minimum((r / bin_width).astype(int), nbins)
            flat_idx = _readonly(idx.ravel())
            counts = _readonly(np.bincount(flat_idx, minlength=nbins + 1)[:nbins])
            return flat_idx, nbins, counts

        return self._get(self._radial_bins, key, compute)


@lru_cache(maxsize=32)
def shared_geometry(shape: tuple[int, int]) -> CutoutGeometry:
    """Process-wide shared :class:`CutoutGeometry` per cutout shape.

    This is what lets a clustered compute node amortise geometry across
    its 1144 galMorph members: every cutout of the same shape reuses one
    instance (thread-safe, bounded memoisation).
    """
    return CutoutGeometry(shape)
