"""Galaxy morphology measurement — the paper's science payload.

§2 defines the three parameters computed per galaxy image (Conselice 2003):

* **Average Surface Brightness** — detected light per unit area;
* **Concentration Index** — distinguishes uniform-brightness galaxies from
  core-dominated ones (``C = 5 log10(r80 / r20)``);
* **Asymmetry Index** — distinguishes spirals (asymmetric) from ellipticals
  (symmetric) via the 180-degree rotational residual.

:func:`repro.morphology.pipeline.galmorph` is the executable body of the
``galMorph`` VDL transformation: it takes exactly the arguments of the
paper's ``TR galMorph(in redshift, in pixScale, in zeroPoint, in Ho, in om,
in flat, in image, out galMorph)`` and returns the measured parameters plus
the validity flag of §4.3.1(4).
"""

from repro.morphology.background import estimate_background, estimate_background_batch
from repro.morphology.geometry import CutoutGeometry, shared_geometry
from repro.morphology.measures import (
    asymmetry_index,
    asymmetry_index_batch,
    average_surface_brightness,
    average_surface_brightness_batch,
    concentration_index,
    concentration_index_batch,
    curve_of_growth_radii,
    curve_of_growth_radii_batch,
)
from repro.morphology.petrosian import petrosian_radius, petrosian_radius_batch
from repro.morphology.pipeline import (
    GalmorphTask,
    MorphologyResult,
    galmorph,
    galmorph_batch,
    galmorph_stacked,
)
from repro.morphology.segmentation import central_source_mask, central_source_mask_batch

__all__ = [
    "estimate_background",
    "estimate_background_batch",
    "asymmetry_index",
    "asymmetry_index_batch",
    "average_surface_brightness",
    "average_surface_brightness_batch",
    "concentration_index",
    "concentration_index_batch",
    "curve_of_growth_radii",
    "curve_of_growth_radii_batch",
    "petrosian_radius",
    "petrosian_radius_batch",
    "CutoutGeometry",
    "shared_geometry",
    "GalmorphTask",
    "MorphologyResult",
    "galmorph",
    "galmorph_batch",
    "galmorph_stacked",
    "central_source_mask",
    "central_source_mask_batch",
]
