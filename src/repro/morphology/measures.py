"""The three morphology parameters of §2 (Conselice 2003).

All functions take background-subtracted images and are fully vectorised.
Every kernel accepts an optional :class:`~repro.morphology.geometry.CutoutGeometry`
so that a whole measurement (and, in batch mode, a whole campaign of
same-shape cutouts) shares one set of index grids, radius maps, sorted
permutations and aperture masks instead of rebuilding them per call.

The asymmetry minimisation is a 3x3 local search over sub-pixel centre
shifts.  The fast path centres the image once per axis with a separable
bilinear shift (numerically identical to ``scipy.ndimage.shift(order=1,
mode="nearest")``) and evaluates all nine candidate centres in one batched
residual computation against a single precomputed aperture mask — the seed
implementation ran nine full ``ndimage.shift`` calls and rebuilt the same
aperture mask nine times.
"""

from __future__ import annotations

import numpy as np

from repro.morphology.geometry import CutoutGeometry, shared_geometry


def _geometry_for(image: np.ndarray, geometry: CutoutGeometry | None) -> CutoutGeometry:
    if geometry is not None:
        if geometry.shape != image.shape:
            raise ValueError(
                f"geometry shape {geometry.shape} does not match image shape {image.shape}"
            )
        return geometry
    return shared_geometry(image.shape)


def _aperture_flux(
    image: np.ndarray,
    center: tuple[float, float],
    radius: float,
    geometry: CutoutGeometry | None = None,
) -> float:
    """Total flux inside a circular aperture (pixel-centre membership)."""
    image = np.asarray(image)
    mask = _geometry_for(image, geometry).aperture_mask(center, radius)
    return float(image[mask].sum())


def curve_of_growth_radii(
    image: np.ndarray,
    center: tuple[float, float],
    total_radius: float,
    fractions: tuple[float, ...] = (0.2, 0.8),
    geometry: CutoutGeometry | None = None,
) -> tuple[float, ...]:
    """Radii enclosing the given fractions of the flux inside ``total_radius``.

    Computed from the exact pixel curve of growth (sorted radii + cumulative
    sum) so no radial binning error enters the concentration index.  The
    sorted-radius permutation comes from the geometry cache: one argsort per
    (shape, centre) instead of one per call.
    """
    image = np.asarray(image, dtype=float)
    geom = _geometry_for(image, geometry)
    r_sorted, order = geom.sorted_radii(center)
    flux_sorted = image.ravel()[order]
    k = int(np.searchsorted(r_sorted, float(total_radius), side="right"))
    r_in = r_sorted[:k]
    cumulative = np.cumsum(flux_sorted[:k])
    total = cumulative[-1] if cumulative.size else 0.0
    if total <= 0:
        raise ValueError("non-positive total flux inside the measurement aperture")
    out = []
    for fraction in fractions:
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"flux fraction must be in (0, 1): {fraction}")
        i = int(np.searchsorted(cumulative, fraction * total))
        out.append(float(r_in[min(i, r_in.size - 1)]))
    return tuple(out)


def concentration_index(
    image: np.ndarray,
    center: tuple[float, float],
    total_radius: float,
    geometry: CutoutGeometry | None = None,
) -> float:
    """Conselice concentration ``C = 5 log10(r80 / r20)``.

    High C (~4-5): core-dominated de Vaucouleurs ellipticals.
    Low C (~2-3): uniform-brightness exponential disks.
    """
    r20, r80 = curve_of_growth_radii(image, center, total_radius, (0.2, 0.8), geometry=geometry)
    r20 = max(r20, 0.5)  # guard: r20 inside the central pixel
    if r80 <= 0:
        raise ValueError("r80 is non-positive; source is unresolved")
    return float(5.0 * np.log10(r80 / r20))


def _axis_shift_into(
    src: np.ndarray,
    shift: float,
    axis: int,
    out: np.ndarray,
    scratch: np.ndarray,
) -> None:
    """Bilinear shift along one axis, edge-replicated, written into ``out``.

    The order-1 spline interpolation of ``scipy.ndimage.shift(..., order=1,
    mode="nearest")`` restricted to one axis: ``o[i] = (1-f) a[i0] + f
    a[i0+1]`` with ``i0 = floor(i - shift)``.  Because the shift is uniform,
    ``i0 = i + floor(-shift)`` and the fraction ``f = -shift - floor(-shift)``
    is a *scalar*: the whole operation is two offset slice views of ``src``
    blended by one scalar weight — no gather, no index arrays, no
    allocations (``scratch`` must have ``src``'s shape).

    Outside the interpolation interior both sample indices clamp to the
    same edge pixel, so the boundary is a constant fill of the edge slice.
    """
    n = src.shape[axis]
    m = int(np.floor(-float(shift)))
    frac = -float(shift) - m

    def sl(start: int, stop: int) -> tuple:
        idx: list[slice] = [slice(None)] * src.ndim
        idx[axis] = slice(start, stop)
        return tuple(idx)

    if frac == 0.0:  # pure integer shift: out[i] = src[clip(i + m)]
        if m >= n:
            out[...] = src[sl(n - 1, n)]
        elif m <= -n:
            out[...] = src[sl(0, 1)]
        elif m >= 0:
            out[sl(0, n - m)] = src[sl(m, n)]
            if m:
                out[sl(n - m, n)] = src[sl(n - 1, n)]
        else:
            out[sl(-m, n)] = src[sl(0, n + m)]
            out[sl(0, -m)] = src[sl(0, 1)]
        return

    lo_i = max(0, -m)  # first index whose low sample needs no clamping
    hi_i = min(n, n - 1 - m)  # first index whose high sample clamps
    if hi_i > lo_i:
        np.multiply(src[sl(lo_i + m, hi_i + m)], 1.0 - frac, out=out[sl(lo_i, hi_i)])
        tmp = scratch[sl(lo_i, hi_i)]
        np.multiply(src[sl(lo_i + m + 1, hi_i + m + 1)], frac, out=tmp)
        out[sl(lo_i, hi_i)] += tmp
    if lo_i > 0:
        out[sl(0, min(lo_i, n))] = src[sl(0, 1)]
    if hi_i < n:
        out[sl(max(hi_i, 0), n)] = src[sl(n - 1, n)]


def _axis_shift(array: np.ndarray, shift: float, axis: int) -> np.ndarray:
    """Allocating wrapper around :func:`_axis_shift_into`."""
    out = np.empty_like(array)
    _axis_shift_into(array, shift, axis, out, np.empty_like(array))
    return out


def asymmetry_index(
    image: np.ndarray,
    center: tuple[float, float],
    radius: float,
    background_sigma: float = 0.0,
    optimize_center: bool = True,
    geometry: CutoutGeometry | None = None,
    early_exit: bool = True,
) -> float:
    """Rotational asymmetry ``A = min_c sum|I - I_180| / (2 sum|I|) - A_bg``.

    The 180-degree rotation is about ``center``; when ``optimize_center`` is
    set, a 3x3 grid of half-pixel centre shifts is searched and the minimum
    taken, per Conselice's prescription (asymmetry is defined at the centre
    that minimises it).  ``background_sigma`` subtracts the noise floor: for
    pure Gaussian noise the expected |I - I_180| residual is
    ``2 sigma / sqrt(pi)`` per pixel, and the correction is evaluated with
    the aperture and flux denominator of the *minimising* centre (the seed
    implementation inconsistently normalised it at the input centre).

    Fast path: the image is centred once per axis with a separable bilinear
    shift and the nine candidate centres are evaluated in one batched
    residual computation against a single cached aperture mask.  When
    ``early_exit`` is set and the unshifted residual is already below the
    noise floor the search is skipped and 0.0 returned (the corrected
    asymmetry at the input centre is non-positive; any other centre differs
    from zero only by the sub-ulp variation of the denominator).

    Spirals land at A >~ 0.1, ellipticals near 0.
    """
    image = np.asarray(image, dtype=float)
    geom = _geometry_for(image, geometry)
    cy, cx = center
    acy, acx = geom.array_center
    base_sy, base_sx = acy - cy, acx - cx
    weights = geom.aperture_weights(geom.array_center, radius)
    n_aperture = geom.aperture_npix(geom.array_center, radius)
    # Expected noise contribution to the residual: per pixel E|n1 - n2| =
    # 2 sigma / sqrt(pi); constant across candidate centres because the
    # aperture mask is fixed once the image (not the mask) is shifted.
    noise_residual = n_aperture * 2.0 * background_sigma / np.sqrt(np.pi)

    # A 180-degree rotation about the array centre reverses the row-major
    # flattened image, so "rotate" is a stride trick and every masked sum is
    # a dot product against the cached 0/1 aperture weights.  The rotation
    # residual is antisymmetric (d[k] = -d[N-1-k]) and the aperture is
    # rotation-symmetric, so only half the pairs are evaluated.  NOTE:
    # consumes (overwrites) ``flat``.
    def stats(flat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        n = flat.shape[-1]
        half = n // 2
        diff = flat[..., :half] - flat[..., : n - half - 1 : -1]
        np.abs(diff, out=diff)
        resid = 2.0 * (diff @ weights[:half])
        np.abs(flat, out=flat)
        denom = 2.0 * (flat @ weights)
        return resid, denom

    h, w = image.shape
    scratch = np.empty_like(image)
    row0 = np.empty_like(image)
    _axis_shift_into(image, base_sy, 0, row0, scratch)
    centred0: np.ndarray | None = None
    if early_exit and background_sigma > 0.0:
        # Unshifted candidate gates the early exit: if its rotation residual
        # is already below the expected noise residual, A = 0.
        centred0 = np.empty_like(image)
        _axis_shift_into(row0, base_sx, 1, centred0, scratch)
        resid0, denom0 = stats(centred0.ravel().copy())
        if denom0 > 0.0 and float(resid0) <= noise_residual:
            return 0.0

    if not optimize_center:
        if centred0 is None:
            centred0 = np.empty_like(image)
            _axis_shift_into(row0, base_sx, 1, centred0, scratch)
        flat = centred0.reshape(1, -1)
    else:
        offsets = (-0.5, 0.0, 0.5)
        rows = np.empty((3, h, w))
        rows[1] = row0
        _axis_shift_into(image, base_sy + 0.5, 0, rows[0], scratch)
        _axis_shift_into(image, base_sy - 0.5, 0, rows[2], scratch)
        # Column-shift the whole row stack once per x offset, written
        # straight into the candidate block in the seed's row-major
        # (oy, ox) order so argmin tie-breaking matches the sequential
        # search.
        candidates = np.empty((3, 3, h, w))
        scratch3 = np.empty((3, h, w))
        for ix, ox in enumerate(offsets):
            _axis_shift_into(rows, base_sx - ox, 2, candidates[:, ix], scratch3)
        flat = candidates.reshape(9, -1)

    resids, denoms = stats(flat)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(denoms > 0.0, resids / np.where(denoms > 0.0, denoms, 1.0), np.inf)
    best_index = int(np.argmin(ratios))
    best = float(ratios[best_index])
    if not np.isfinite(best):
        raise ValueError("asymmetry undefined: no flux inside the aperture")

    if background_sigma > 0.0:
        # Noise-floor correction at the minimising centre (consistent with
        # where the minimum was found).
        best = best - noise_residual / float(denoms[best_index])
    return float(max(best, 0.0))


def average_surface_brightness(
    image: np.ndarray,
    center: tuple[float, float],
    radius: float,
    pixel_scale_arcsec: float,
    zero_point: float = 0.0,
    geometry: CutoutGeometry | None = None,
) -> float:
    """Mean surface brightness inside ``radius``, mag / arcsec^2.

    ``mu = zero_point - 2.5 log10( flux / area_arcsec2 )`` — the "measure of
    the total amount of detected light (per area)" of §2.
    """
    if pixel_scale_arcsec <= 0:
        raise ValueError(f"pixel scale must be positive: {pixel_scale_arcsec}")
    image = np.asarray(image)
    geom = _geometry_for(image, geometry)
    flux = _aperture_flux(image, center, radius, geometry=geom)
    if flux <= 0:
        raise ValueError("non-positive aperture flux; cannot form a magnitude")
    n_pix = geom.aperture_npix(center, radius)
    area_arcsec2 = n_pix * pixel_scale_arcsec**2
    return float(zero_point - 2.5 * np.log10(flux / area_arcsec2))
