"""The three morphology parameters of §2 (Conselice 2003).

All functions take background-subtracted images and are fully vectorised;
the asymmetry minimisation is a small local search over sub-pixel centre
shifts implemented with ``scipy.ndimage.shift``.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage


def _aperture_flux(image: np.ndarray, center: tuple[float, float], radius: float) -> float:
    """Total flux inside a circular aperture (pixel-centre membership)."""
    cy, cx = center
    yy, xx = np.indices(image.shape, dtype=float)
    mask = np.hypot(yy - cy, xx - cx) <= radius
    return float(image[mask].sum())


def curve_of_growth_radii(
    image: np.ndarray,
    center: tuple[float, float],
    total_radius: float,
    fractions: tuple[float, ...] = (0.2, 0.8),
) -> tuple[float, ...]:
    """Radii enclosing the given fractions of the flux inside ``total_radius``.

    Computed from the exact pixel curve of growth (sorted radii + cumulative
    sum) so no radial binning error enters the concentration index.
    """
    cy, cx = center
    yy, xx = np.indices(image.shape, dtype=float)
    r = np.hypot(yy - cy, xx - cx).ravel()
    flux = np.asarray(image, dtype=float).ravel()
    inside = r <= total_radius
    r, flux = r[inside], flux[inside]
    order = np.argsort(r)
    r_sorted = r[order]
    cumulative = np.cumsum(flux[order])
    total = cumulative[-1] if cumulative.size else 0.0
    if total <= 0:
        raise ValueError("non-positive total flux inside the measurement aperture")
    out = []
    for fraction in fractions:
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"flux fraction must be in (0, 1): {fraction}")
        i = int(np.searchsorted(cumulative, fraction * total))
        out.append(float(r_sorted[min(i, r_sorted.size - 1)]))
    return tuple(out)


def concentration_index(
    image: np.ndarray,
    center: tuple[float, float],
    total_radius: float,
) -> float:
    """Conselice concentration ``C = 5 log10(r80 / r20)``.

    High C (~4-5): core-dominated de Vaucouleurs ellipticals.
    Low C (~2-3): uniform-brightness exponential disks.
    """
    r20, r80 = curve_of_growth_radii(image, center, total_radius, (0.2, 0.8))
    r20 = max(r20, 0.5)  # guard: r20 inside the central pixel
    if r80 <= 0:
        raise ValueError("r80 is non-positive; source is unresolved")
    return float(5.0 * np.log10(r80 / r20))


def asymmetry_index(
    image: np.ndarray,
    center: tuple[float, float],
    radius: float,
    background_sigma: float = 0.0,
    optimize_center: bool = True,
) -> float:
    """Rotational asymmetry ``A = min_c sum|I - I_180| / (2 sum|I|) - A_bg``.

    The 180-degree rotation is about ``center``; when ``optimize_center`` is
    set, a 3x3 grid of half-pixel centre shifts is searched and the minimum
    taken, per Conselice's prescription (asymmetry is defined at the centre
    that minimises it).  ``background_sigma`` subtracts the noise floor:
    for pure Gaussian noise the expected |I - I_180| residual is
    ``2 sigma / sqrt(pi)`` per pixel.

    Spirals land at A >~ 0.1, ellipticals near 0.
    """
    image = np.asarray(image, dtype=float)
    cy, cx = center
    yy, xx = np.indices(image.shape, dtype=float)

    def asymmetry_at(oy: float, ox: float) -> float:
        # Rotate by shifting the centre onto the array centre, flipping, and
        # comparing within the aperture.
        ay, ax = cy + oy, cx + ox
        shift_y = (image.shape[0] - 1) / 2.0 - ay
        shift_x = (image.shape[1] - 1) / 2.0 - ax
        centred = ndimage.shift(image, (shift_y, shift_x), order=1, mode="nearest")
        rotated = centred[::-1, ::-1]
        aperture = np.hypot(yy - (image.shape[0] - 1) / 2.0, xx - (image.shape[1] - 1) / 2.0) <= radius
        denom = 2.0 * np.abs(centred[aperture]).sum()
        if denom <= 0:
            return np.inf
        residual = np.abs(centred[aperture] - rotated[aperture]).sum()
        return float(residual / denom)

    offsets = [0.0] if not optimize_center else [-0.5, 0.0, 0.5]
    best = min(asymmetry_at(oy, ox) for oy in offsets for ox in offsets)
    if not np.isfinite(best):
        raise ValueError("asymmetry undefined: no flux inside the aperture")

    if background_sigma > 0.0:
        # Expected noise contribution: per-pixel E|n1 - n2| = 2 sigma/sqrt(pi);
        # normalised by the same flux denominator.
        aperture = np.hypot(yy - cy, xx - cx) <= radius
        denom = 2.0 * np.abs(image[aperture]).sum()
        if denom > 0:
            noise_term = aperture.sum() * 2.0 * background_sigma / np.sqrt(np.pi) / denom
            best = best - noise_term
    return float(max(best, 0.0))


def average_surface_brightness(
    image: np.ndarray,
    center: tuple[float, float],
    radius: float,
    pixel_scale_arcsec: float,
    zero_point: float = 0.0,
) -> float:
    """Mean surface brightness inside ``radius``, mag / arcsec^2.

    ``mu = zero_point - 2.5 log10( flux / area_arcsec2 )`` — the "measure of
    the total amount of detected light (per area)" of §2.
    """
    if pixel_scale_arcsec <= 0:
        raise ValueError(f"pixel scale must be positive: {pixel_scale_arcsec}")
    flux = _aperture_flux(image, center, radius)
    if flux <= 0:
        raise ValueError("non-positive aperture flux; cannot form a magnitude")
    cy, cx = center
    yy, xx = np.indices(image.shape, dtype=float)
    n_pix = int((np.hypot(yy - cy, xx - cx) <= radius).sum())
    area_arcsec2 = n_pix * pixel_scale_arcsec**2
    return float(zero_point - 2.5 * np.log10(flux / area_arcsec2))
