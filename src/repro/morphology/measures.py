"""The three morphology parameters of §2 (Conselice 2003).

All functions take background-subtracted images and are fully vectorised.
Every kernel accepts an optional :class:`~repro.morphology.geometry.CutoutGeometry`
so that a whole measurement (and, in batch mode, a whole campaign of
same-shape cutouts) shares one set of index grids, radius maps, sorted
permutations and aperture masks instead of rebuilding them per call.

The asymmetry minimisation is a 3x3 local search over sub-pixel centre
shifts.  The fast path centres the image once per axis with a separable
bilinear shift (numerically identical to ``scipy.ndimage.shift(order=1,
mode="nearest")``) and evaluates all nine candidate centres in one batched
residual computation against a single precomputed aperture mask — the seed
implementation ran nine full ``ndimage.shift`` calls and rebuilt the same
aperture mask nine times.
"""

from __future__ import annotations

import numpy as np

from repro.morphology.geometry import CutoutGeometry, shared_geometry


def _geometry_for(image: np.ndarray, geometry: CutoutGeometry | None) -> CutoutGeometry:
    if geometry is not None:
        if geometry.shape != image.shape:
            raise ValueError(
                f"geometry shape {geometry.shape} does not match image shape {image.shape}"
            )
        return geometry
    return shared_geometry(image.shape)


def _aperture_flux(
    image: np.ndarray,
    center: tuple[float, float],
    radius: float,
    geometry: CutoutGeometry | None = None,
) -> float:
    """Total flux inside a circular aperture (pixel-centre membership)."""
    image = np.asarray(image)
    mask = _geometry_for(image, geometry).aperture_mask(center, radius)
    return float(image[mask].sum())


def curve_of_growth_radii(
    image: np.ndarray,
    center: tuple[float, float],
    total_radius: float,
    fractions: tuple[float, ...] = (0.2, 0.8),
    geometry: CutoutGeometry | None = None,
) -> tuple[float, ...]:
    """Radii enclosing the given fractions of the flux inside ``total_radius``.

    Computed from the exact pixel curve of growth (sorted radii + cumulative
    sum) so no radial binning error enters the concentration index.  The
    sorted-radius permutation comes from the geometry cache: one argsort per
    (shape, centre) instead of one per call.
    """
    image = np.asarray(image, dtype=float)
    geom = _geometry_for(image, geometry)
    r_sorted, order = geom.sorted_radii(center)
    flux_sorted = image.ravel()[order]
    k = int(np.searchsorted(r_sorted, float(total_radius), side="right"))
    r_in = r_sorted[:k]
    cumulative = np.cumsum(flux_sorted[:k])
    total = cumulative[-1] if cumulative.size else 0.0
    if total <= 0:
        raise ValueError("non-positive total flux inside the measurement aperture")
    out = []
    for fraction in fractions:
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"flux fraction must be in (0, 1): {fraction}")
        i = int(np.searchsorted(cumulative, fraction * total))
        out.append(float(r_in[min(i, r_in.size - 1)]))
    return tuple(out)


def concentration_index(
    image: np.ndarray,
    center: tuple[float, float],
    total_radius: float,
    geometry: CutoutGeometry | None = None,
) -> float:
    """Conselice concentration ``C = 5 log10(r80 / r20)``.

    High C (~4-5): core-dominated de Vaucouleurs ellipticals.
    Low C (~2-3): uniform-brightness exponential disks.
    """
    r20, r80 = curve_of_growth_radii(image, center, total_radius, (0.2, 0.8), geometry=geometry)
    r20 = max(r20, 0.5)  # guard: r20 inside the central pixel
    if r80 <= 0:
        raise ValueError("r80 is non-positive; source is unresolved")
    return float(5.0 * np.log10(r80 / r20))


def _axis_shift_into(
    src: np.ndarray,
    shift: float,
    axis: int,
    out: np.ndarray,
    scratch: np.ndarray,
) -> None:
    """Bilinear shift along one axis, edge-replicated, written into ``out``.

    The order-1 spline interpolation of ``scipy.ndimage.shift(..., order=1,
    mode="nearest")`` restricted to one axis: ``o[i] = (1-f) a[i0] + f
    a[i0+1]`` with ``i0 = floor(i - shift)``.  Because the shift is uniform,
    ``i0 = i + floor(-shift)`` and the fraction ``f = -shift - floor(-shift)``
    is a *scalar*: the whole operation is two offset slice views of ``src``
    blended by one scalar weight — no gather, no index arrays, no
    allocations (``scratch`` must have ``src``'s shape).

    Outside the interpolation interior both sample indices clamp to the
    same edge pixel, so the boundary is a constant fill of the edge slice.
    """
    n = src.shape[axis]
    m = int(np.floor(-float(shift)))
    frac = -float(shift) - m

    def sl(start: int, stop: int) -> tuple:
        idx: list[slice] = [slice(None)] * src.ndim
        idx[axis] = slice(start, stop)
        return tuple(idx)

    if frac == 0.0:  # pure integer shift: out[i] = src[clip(i + m)]
        if m >= n:
            out[...] = src[sl(n - 1, n)]
        elif m <= -n:
            out[...] = src[sl(0, 1)]
        elif m >= 0:
            out[sl(0, n - m)] = src[sl(m, n)]
            if m:
                out[sl(n - m, n)] = src[sl(n - 1, n)]
        else:
            out[sl(-m, n)] = src[sl(0, n + m)]
            out[sl(0, -m)] = src[sl(0, 1)]
        return

    lo_i = max(0, -m)  # first index whose low sample needs no clamping
    hi_i = min(n, n - 1 - m)  # first index whose high sample clamps
    if hi_i > lo_i:
        np.multiply(src[sl(lo_i + m, hi_i + m)], 1.0 - frac, out=out[sl(lo_i, hi_i)])
        tmp = scratch[sl(lo_i, hi_i)]
        np.multiply(src[sl(lo_i + m + 1, hi_i + m + 1)], frac, out=tmp)
        out[sl(lo_i, hi_i)] += tmp
    if lo_i > 0:
        out[sl(0, min(lo_i, n))] = src[sl(0, 1)]
    if hi_i < n:
        out[sl(max(hi_i, 0), n)] = src[sl(n - 1, n)]


def _axis_shift(array: np.ndarray, shift: float, axis: int) -> np.ndarray:
    """Allocating wrapper around :func:`_axis_shift_into`."""
    out = np.empty_like(array)
    _axis_shift_into(array, shift, axis, out, np.empty_like(array))
    return out


def asymmetry_index(
    image: np.ndarray,
    center: tuple[float, float],
    radius: float,
    background_sigma: float = 0.0,
    optimize_center: bool = True,
    geometry: CutoutGeometry | None = None,
    early_exit: bool = True,
) -> float:
    """Rotational asymmetry ``A = min_c sum|I - I_180| / (2 sum|I|) - A_bg``.

    The 180-degree rotation is about ``center``; when ``optimize_center`` is
    set, a 3x3 grid of half-pixel centre shifts is searched and the minimum
    taken, per Conselice's prescription (asymmetry is defined at the centre
    that minimises it).  ``background_sigma`` subtracts the noise floor: for
    pure Gaussian noise the expected |I - I_180| residual is
    ``2 sigma / sqrt(pi)`` per pixel, and the correction is evaluated with
    the aperture and flux denominator of the *minimising* centre (the seed
    implementation inconsistently normalised it at the input centre).

    Fast path: the image is centred once per axis with a separable bilinear
    shift and the nine candidate centres are evaluated in one batched
    residual computation against a single cached aperture mask.  When
    ``early_exit`` is set and the unshifted residual is already below the
    noise floor the search is skipped and 0.0 returned (the corrected
    asymmetry at the input centre is non-positive; any other centre differs
    from zero only by the sub-ulp variation of the denominator).

    Spirals land at A >~ 0.1, ellipticals near 0.
    """
    image = np.asarray(image, dtype=float)
    geom = _geometry_for(image, geometry)
    cy, cx = center
    acy, acx = geom.array_center
    base_sy, base_sx = acy - cy, acx - cx
    weights = geom.aperture_weights(geom.array_center, radius)
    n_aperture = geom.aperture_npix(geom.array_center, radius)
    # Expected noise contribution to the residual: per pixel E|n1 - n2| =
    # 2 sigma / sqrt(pi); constant across candidate centres because the
    # aperture mask is fixed once the image (not the mask) is shifted.
    noise_residual = n_aperture * 2.0 * background_sigma / np.sqrt(np.pi)

    # A 180-degree rotation about the array centre reverses the row-major
    # flattened image, so "rotate" is a stride trick and every masked sum is
    # a dot product against the cached 0/1 aperture weights.  The rotation
    # residual is antisymmetric (d[k] = -d[N-1-k]) and the aperture is
    # rotation-symmetric, so only half the pairs are evaluated.  NOTE:
    # consumes (overwrites) ``flat``.
    def stats(flat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        n = flat.shape[-1]
        half = n // 2
        diff = flat[..., :half] - flat[..., : n - half - 1 : -1]
        np.abs(diff, out=diff)
        resid = 2.0 * (diff @ weights[:half])
        np.abs(flat, out=flat)
        denom = 2.0 * (flat @ weights)
        return resid, denom

    h, w = image.shape
    scratch = np.empty_like(image)
    row0 = np.empty_like(image)
    _axis_shift_into(image, base_sy, 0, row0, scratch)
    centred0: np.ndarray | None = None
    if early_exit and background_sigma > 0.0:
        # Unshifted candidate gates the early exit: if its rotation residual
        # is already below the expected noise residual, A = 0.
        centred0 = np.empty_like(image)
        _axis_shift_into(row0, base_sx, 1, centred0, scratch)
        resid0, denom0 = stats(centred0.ravel().copy())
        if denom0 > 0.0 and float(resid0) <= noise_residual:
            return 0.0

    if not optimize_center:
        if centred0 is None:
            centred0 = np.empty_like(image)
            _axis_shift_into(row0, base_sx, 1, centred0, scratch)
        flat = centred0.reshape(1, -1)
    else:
        offsets = (-0.5, 0.0, 0.5)
        rows = np.empty((3, h, w))
        rows[1] = row0
        _axis_shift_into(image, base_sy + 0.5, 0, rows[0], scratch)
        _axis_shift_into(image, base_sy - 0.5, 0, rows[2], scratch)
        # Column-shift the whole row stack once per x offset, written
        # straight into the candidate block in the seed's row-major
        # (oy, ox) order so argmin tie-breaking matches the sequential
        # search.
        candidates = np.empty((3, 3, h, w))
        scratch3 = np.empty((3, h, w))
        for ix, ox in enumerate(offsets):
            _axis_shift_into(rows, base_sx - ox, 2, candidates[:, ix], scratch3)
        flat = candidates.reshape(9, -1)

    resids, denoms = stats(flat)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(denoms > 0.0, resids / np.where(denoms > 0.0, denoms, 1.0), np.inf)
    best_index = int(np.argmin(ratios))
    best = float(ratios[best_index])
    if not np.isfinite(best):
        raise ValueError("asymmetry undefined: no flux inside the aperture")

    if background_sigma > 0.0:
        # Noise-floor correction at the minimising centre (consistent with
        # where the minimum was found).
        best = best - noise_residual / float(denoms[best_index])
    return float(max(best, 0.0))


def _axis_shift_batch(
    stack: np.ndarray,
    shifts: np.ndarray,
    axis: int,
    out: np.ndarray | None = None,
    padded_input: tuple[int, int] | None = None,
) -> np.ndarray:
    """Batched edge-clamped bilinear shift along one trailing axis.

    ``stack`` is ``(..., H, W)``; ``shifts`` broadcasts against the leading
    (batch) shape and gives each slice its own uniform shift along ``axis``
    (-2 for rows, -1 for columns).  Equivalent to :func:`_axis_shift_into`
    applied per slice: ``out[i] = (1-f)·src[clip(i+m)] + f·src[clip(i+m+1)]``
    with per-slice integer offset ``m`` and fraction ``f``.

    A shift is uniform within each slice, so no elementwise gather is
    needed: the source is padded once along the shift axis with
    edge-replicated rows (replication *is* the clamp), each slice's
    two-tap window is then a plain strided copy at that slice's own
    integer offset, and one fused blend covers the whole batch.  Interior
    pixels get the scalar path's arithmetic exactly; at the clamped edges
    the scalar path copies the edge pixel while this form computes
    ``(1-f)·e + f·e`` — at most 1 ulp apart, far inside the 1e-9 parity
    contract.  Integer shifts (f = 0) stay exact.  Every output slice
    depends only on its own source slice and shift, so results are
    independent of batch composition.

    ``padded_input=(lo_pad, hi_pad)`` declares that ``stack`` already
    carries that many edge-replicated planes along ``axis`` (a producer
    wrote straight into the interior of a pre-padded buffer), skipping
    the pad-and-copy here.  The pads must cover the shift range, i.e.
    ``lo_pad >= -min(floor(-shifts))`` and ``hi_pad >= max(floor(-shifts)) + 1``.
    """
    shifts = np.asarray(shifts, dtype=float)
    h, w = stack.shape[-2:]
    m_sh = np.floor(-shifts).astype(np.intp)
    if padded_input is not None:
        lo_pad, hi_pad = padded_input
        if axis == -2:
            h -= lo_pad + hi_pad
        else:
            w -= lo_pad + hi_pad
        padded = stack
    else:
        lo_pad = max(0, -int(m_sh.min()))
        hi_pad = max(0, int(m_sh.max()) + 1)
        if axis == -2:
            padded = np.empty(stack.shape[:-2] + (h + lo_pad + hi_pad, w))
            padded[..., lo_pad : lo_pad + h, :] = stack
            padded[..., :lo_pad, :] = stack[..., :1, :]
            padded[..., lo_pad + h :, :] = stack[..., h - 1 : h, :]
        else:
            padded = np.empty(stack.shape[:-2] + (h, w + lo_pad + hi_pad))
            padded[..., lo_pad : lo_pad + w] = stack
            padded[..., :lo_pad] = stack[..., :1]
            padded[..., lo_pad + w :] = stack[..., w - 1 : w]
    lead = np.broadcast_shapes(padded.shape[:-2], shifts.shape)
    n = h if axis == -2 else w
    psrc = np.broadcast_to(padded, lead + padded.shape[-2:])

    if out is None:
        out = np.empty(lead + (h, w), dtype=float)
    # Blend straight out of the padded source: both bilinear taps are
    # plain slices at the slice's own integer offset.  The loop runs only
    # over lead dims where the shifts actually vary — dims the shifts
    # merely broadcast across (e.g. the y-offset axis during the x pass
    # of the asymmetry lattice) are blended as one whole block — and the
    # block-sized scratch keeps the inner loop cache-resident instead of
    # cycling batch-sized temporaries.
    nd = len(lead)
    sh_own = (1,) * (nd - shifts.ndim) + shifts.shape
    neg = -shifts.reshape(sh_own)
    floor_neg = np.floor(neg)
    m_flat = (floor_neg.astype(np.intp) + lo_pad).ravel().tolist()
    f_flat = (neg - floor_neg).ravel().tolist()
    tmp = np.empty(tuple(lead[d] for d in range(nd) if sh_own[d] == 1) + (h, w))
    for i, idx in enumerate(np.ndindex(*sh_own)):
        o = m_flat[i]
        f = f_flat[i]
        sel = tuple(
            idx[d] if sh_own[d] > 1 else slice(None) for d in range(nd)
        )
        v = psrc[sel]
        if axis == -2:
            a, b = v[..., o : o + n, :], v[..., o + 1 : o + n + 1, :]
        else:
            a, b = v[..., o : o + n], v[..., o + 1 : o + n + 1]
        res = out[sel]
        np.multiply(a, 1.0 - f, out=res)
        np.multiply(b, f, out=tmp)
        res += tmp
    return out


#: Measurement windows are quantised to multiples of this half-width so
#: that a batch clusters into a handful of window groups instead of one
#: group per distinct radius.
_WINDOW_QUANTUM = 8


def _window_bounds(n: int, hw: int) -> tuple[int, int]:
    """Centre-symmetric window ``[lo, hi)`` of half-width ``hw`` on an axis
    of length ``n``.

    The window is symmetric about the array centre ``(n - 1) / 2`` (so a
    reversal of the window is still a 180-degree rotation about the same
    axis) and degenerates to the full axis when ``hw >= n // 2``.
    """
    lo = n // 2 - hw
    if lo <= 0:
        return 0, n
    return lo, n // 2 + hw + (n % 2)


def _window_groups(
    need: np.ndarray, h: int, w: int
) -> list[tuple[np.ndarray, tuple[int, int], tuple[int, int]]]:
    """Group batch rows by quantised measurement window.

    ``need`` is each row's required half-width; rows are bucketed to the
    next multiple of :data:`_WINDOW_QUANTUM` (capped at the full frame).
    Each row's window depends only on that row's own inputs, so the
    grouping — and therefore every downstream reduction length — is
    invariant under re-chunking of the batch.  Returns
    ``[(row_indices, (ylo, yhi), (xlo, xhi)), ...]``.
    """
    quantised = (np.maximum(need, 1) + _WINDOW_QUANTUM - 1) // _WINDOW_QUANTUM
    hw_y = np.minimum(quantised * _WINDOW_QUANTUM, h // 2)
    hw_x = np.minimum(quantised * _WINDOW_QUANTUM, w // 2)
    keys = hw_y * (max(h, w) + 1) + hw_x
    groups = []
    for key in np.unique(keys):
        rows = np.nonzero(keys == key)[0]
        i = int(rows[0])
        groups.append(
            (rows, _window_bounds(h, int(hw_y[i])), _window_bounds(w, int(hw_x[i])))
        )
    return groups


def asymmetry_index_batch(
    images: np.ndarray,
    centers_y: np.ndarray,
    centers_x: np.ndarray,
    radii: np.ndarray,
    background_sigmas: np.ndarray,
    geometry: CutoutGeometry,
    optimize_center: bool = True,
    early_exit: bool = True,
) -> np.ndarray:
    """Rotational asymmetry of N same-shape cutouts in one stacked pass.

    Vectorises :func:`asymmetry_index` across the batch axis.  The
    residual/denominator contractions only read pixels with non-zero
    aperture weight, so each row is measured on a centre-symmetric window
    just large enough to hold its aperture plus the shift stencil — on
    typical campaign cutouts that is a small fraction of the frame.  Rows
    are grouped by quantised window size (:func:`_window_groups`) and each
    group evaluates the full 3x3 half-pixel centre lattice in two fused
    slice-blend shifts (one y pass building ``(N, 3, h, w)``, one x pass
    building ``(N, 3, 3, h, w)``) followed by a single batched ``matmul``
    contraction against the window's aperture weights.

    The unshifted candidate sits at lattice index 4, so the noise-floor
    early exit of the scalar path becomes a row mask applied after the
    lattice: exited rows return exactly 0.0, others the noise-corrected
    minimum — identical values, no separate centred pass.

    Every reduction is per-row and every window is derived from that
    row's own radius and shift, so results are invariant under
    re-chunking of the batch (the shared-memory pool property).  Returns
    an ``(N,)`` array; rows with no flux inside the aperture come back
    ``np.inf`` (scalar raises ``ValueError``) for the caller to flag
    invalid.
    """
    images = np.asarray(images, dtype=float)
    n_images, h, w = images.shape
    acy, acx = geometry.array_center
    base_sy = acy - np.asarray(centers_y, dtype=float)
    base_sx = acx - np.asarray(centers_x, dtype=float)
    radii = np.asarray(radii, dtype=float)
    sigmas = np.asarray(background_sigmas, dtype=float)

    n_aperture = geometry.aperture_npix_batch(geometry.array_center, radii)
    noise_residual = n_aperture * 2.0 * sigmas / np.sqrt(np.pi)
    r_map = geometry.radius_map(geometry.array_center)

    # Window: every pixel the aperture weights can see (r_map <= radius)
    # plus the reach of the bilinear stencil after the largest centre shift
    # (candidate offsets add ±0.5, the two taps reach floor(|s|)+1 <= |s|+1)
    # plus the half-pixel gap between the array centre and the window edge.
    # Any tighter and a shifted in-aperture pixel could sample a clamped
    # crop edge the full-frame scalar path never sees.
    shift_mag = np.maximum(np.abs(base_sy), np.abs(base_sx)) + 0.5
    with np.errstate(invalid="ignore"):
        need_f = np.where(np.isfinite(radii), radii, max(h, w)) + shift_mag + 2.0
    need = np.ceil(np.minimum(need_f, max(h, w))).astype(int)

    out = np.empty(n_images, dtype=float)
    for rows_g, (ylo, yhi), (xlo, xhi) in _window_groups(need, h, w):
        whole = rows_g.size == n_images
        src = images if whole else images[rows_g]
        sub = src[:, ylo:yhi, xlo:xhi]
        k = rows_g.size
        hc, wc = yhi - ylo, xhi - xlo
        n_pix = hc * wc
        half = n_pix // 2
        wts = (
            r_map[ylo:yhi, xlo:xhi].reshape(1, n_pix)
            <= radii[rows_g][:, None]
        ).astype(float)
        wts_col = wts[:, :, None]
        wts_half = np.ascontiguousarray(wts_col[:, :half])
        sy = base_sy if whole else base_sy[rows_g]
        sx = base_sx if whole else base_sx[rows_g]

        def stats(flat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            # flat: (k, C, P) candidates.  The rotation residual is
            # antisymmetric and the aperture rotation-symmetric about the
            # window centre, so only the first half of each flattened
            # candidate is differenced against its reversal (the scalar
            # fast path's trick); masked sums are per-row matmul
            # contractions.  NOTE: consumes (overwrites) ``flat``.
            diff = flat[..., :half] - flat[..., : n_pix - half - 1 : -1]
            np.abs(diff, out=diff)
            resid = 2.0 * np.matmul(diff, wts_half)[..., 0]
            np.abs(flat, out=flat)
            denom = 2.0 * np.matmul(flat, wts_col)[..., 0]
            return resid, denom

        if optimize_center:
            # Candidate lattice in the scalar search's (oy, ox) row-major
            # order — y offsets (+0.5, 0, -0.5) then x offsets likewise —
            # so argmin tie-breaking matches the sequential 3x3 walk.  The
            # x pass runs first (on the small (N, 3, h, w) intermediate)
            # and the y pass second: the y blend's slices are contiguous
            # blocks, so it is the cheaper pass to run at 3x the data.
            # Separable bilinear passes commute up to summation order, so
            # this differs from the scalar's y-then-x composition by at
            # most a few ulps — far inside the 1e-9 parity contract.
            offs = np.array([0.5, 0.0, -0.5])
            # The x pass writes straight into the interior of a buffer
            # already sized for the y pass's edge padding, so the y pass
            # never re-copies the (N, 3, h, w) intermediate.
            ys = (sy[:, None] + offs)[:, :, None]
            m_y = np.floor(-ys).astype(np.intp)
            lo_y = max(0, -int(m_y.min()))
            hi_y = max(0, int(m_y.max()) + 1)
            cols3p = np.empty((k, 3, hc + lo_y + hi_y, wc))
            interior = cols3p[:, :, lo_y : lo_y + hc]
            _axis_shift_batch(sub[:, None], sx[:, None] + offs, axis=-1, out=interior)
            cols3p[:, :, :lo_y] = interior[:, :, :1]
            cols3p[:, :, lo_y + hc :] = interior[:, :, hc - 1 : hc]
            cand = _axis_shift_batch(
                cols3p[:, None], ys, axis=-2, padded_input=(lo_y, hi_y)
            )
            resids, denoms = stats(cand.reshape(k, 9, n_pix))
            resid0, denom0 = resids[:, 4], denoms[:, 4]
        else:
            centred0 = _axis_shift_batch(
                _axis_shift_batch(sub, sy, axis=-2), sx, axis=-1
            )
            resids, denoms = stats(centred0.reshape(k, 1, n_pix))
            resid0, denom0 = resids[:, 0], denoms[:, 0]

        sig = sigmas[rows_g]
        noise = noise_residual[rows_g]
        if early_exit:
            exited = (sig > 0.0) & (denom0 > 0.0) & (resid0 <= noise)
        else:
            exited = np.zeros(k, dtype=bool)

        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(
                denoms > 0.0, resids / np.where(denoms > 0.0, denoms, 1.0), np.inf
            )
        best_index = np.argmin(ratios, axis=1)
        picked = np.arange(k)
        best = ratios[picked, best_index]
        with np.errstate(divide="ignore", invalid="ignore"):
            corrected = best - np.where(
                sig > 0.0, noise / denoms[picked, best_index], 0.0
            )
        best = np.where(np.isfinite(best), np.maximum(corrected, 0.0), np.inf)
        out[rows_g] = np.where(exited, 0.0, best)
    return out


def curve_of_growth_radii_batch(
    images: np.ndarray,
    centers_y: np.ndarray,
    centers_x: np.ndarray,
    total_radii: np.ndarray,
    geometry: CutoutGeometry,
    fractions: tuple[float, ...] = (0.2, 0.8),
    radius_maps: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched curve-of-growth radii: ``(radii (N, len(fractions)), totals)``.

    One stable batched argsort per window group feeds a per-row
    ``cumsum`` — identical per-row arithmetic to
    :func:`curve_of_growth_radii` (the sort runs over a per-row disc
    window instead of the whole frame; see the inline note).  Pass the
    precomputed ``(N, H, W)`` per-centre ``radius_maps`` when the caller
    already has them (the stacked pipeline computes one set for the
    Petrosian profile) to skip the ``hypot``.  Rows whose enclosed flux
    is non-positive carry ``totals[i] <= 0`` and NaN radii for the
    caller to flag.
    """
    for fraction in fractions:
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"flux fraction must be in (0, 1): {fraction}")
    images = np.asarray(images, dtype=float)
    n_images = images.shape[0]
    h, w = geometry.shape
    cy = np.asarray(centers_y, dtype=float)
    cx = np.asarray(centers_x, dtype=float)
    total_radii = np.asarray(total_radii, dtype=float)
    acy, acx = geometry.array_center

    # The curve of growth only reads pixels with r <= total_radius, and the
    # sorted prefix of a window containing that disc is — stable argsort
    # ties fall back to row-major order, which a rectangular window
    # preserves — the exact pixel sequence the full-frame sort would
    # produce.  So each row sorts a centre-symmetric window just big
    # enough for its own disc (window choice is per-row: re-chunking the
    # batch cannot change any row's arithmetic).
    off = np.maximum(np.abs(cy - acy), np.abs(cx - acx))
    with np.errstate(invalid="ignore"):
        need_f = np.where(np.isfinite(total_radii), total_radii, max(h, w)) + off + 2.0
    need = np.ceil(np.minimum(need_f, max(h, w))).astype(int)

    out = np.full((n_images, len(fractions)), np.nan)
    totals = np.empty(n_images)
    for rows_g, (ylo, yhi), (xlo, xhi) in _window_groups(need, h, w):
        whole = rows_g.size == n_images
        src = images if whole else images[rows_g]
        flux = src[:, ylo:yhi, xlo:xhi].reshape(rows_g.size, -1)
        if radius_maps is not None:
            maps = radius_maps if whole else radius_maps[rows_g]
            r = maps[:, ylo:yhi, xlo:xhi].reshape(rows_g.size, -1)
        else:
            yy = geometry.yy[ylo:yhi, xlo:xhi]
            xx = geometry.xx[ylo:yhi, xlo:xhi]
            r = np.hypot(
                yy - cy[rows_g][:, None, None], xx - cx[rows_g][:, None, None]
            ).reshape(rows_g.size, -1)
        # Only pixels with r <= total_radius ever enter the prefix the
        # searches below read, and every such pixel sorts ahead of every
        # other one — so sort just the disc pixels, padded to a common
        # width with +inf radii / zero flux.  The stable sort keeps the
        # pad at the tail and the real prefix bit-identical to the
        # full-window sort; the selection is per-row, so batch
        # composition still cannot change any row's arithmetic.
        keep = r <= total_radii[rows_g][:, None]
        sel_rows, sel_cols = np.nonzero(keep)
        flat_sel = sel_rows * r.shape[1] + sel_cols
        counts = np.bincount(sel_rows, minlength=rows_g.size).astype(np.intp)
        starts = np.concatenate(([0], np.cumsum(counts[:-1])))
        pos = np.arange(sel_rows.size) - starts[sel_rows]
        width = int(counts.max()) if counts.size else 0
        r_disc = np.full((rows_g.size, width), np.inf)
        flux_disc = np.zeros((rows_g.size, width))
        r_disc[sel_rows, pos] = r.ravel()[flat_sel]
        flux_disc[sel_rows, pos] = flux.ravel()[flat_sel]
        # Radii are non-negative (and the pad is +inf), so their IEEE-754
        # bit patterns viewed as uint64 sort in exactly the same order —
        # and NumPy's stable integer argsort is an O(n) radix pass.
        order = np.argsort(r_disc.view(np.uint64), axis=1, kind="stable")
        r_sorted = np.take_along_axis(r_disc, order, axis=1)
        flux_sorted = np.take_along_axis(flux_disc, order, axis=1)
        cumulative = np.cumsum(flux_sorted, axis=1)
        # Every kept pixel has r <= total_radius and every pad is +inf, so
        # the scalar path's searchsorted(r_sorted, total_radius, 'right')
        # is identically ``counts``; the pad fluxes are zero, so the
        # cumulative sum is constant past ``counts`` and the fraction
        # searches can run on the padded rows unchanged (argmax of the
        # same ``cum >= target`` predicate searchsorted evaluates).
        grows = np.arange(rows_g.size)
        last = np.maximum(counts - 1, 0)
        gtot = np.where(counts > 0, cumulative[grows, last], 0.0)
        totals[rows_g] = gtot
        # The fraction searches stay per-row np.searchsorted: the scalar
        # path bisects its (possibly non-monotone) cumulative array, and
        # only the identical bisection on the identical k-length prefix
        # reproduces its picks bit-for-bit.
        for g, i in enumerate(rows_g):
            k = int(counts[g])
            total = gtot[g]
            if total <= 0:
                continue
            for j, fraction in enumerate(fractions):
                p = int(np.searchsorted(cumulative[g, :k], fraction * total))
                out[i, j] = r_sorted[g, min(p, k - 1)]
    return out, totals


def concentration_index_batch(
    images: np.ndarray,
    centers_y: np.ndarray,
    centers_x: np.ndarray,
    total_radii: np.ndarray,
    geometry: CutoutGeometry,
    radius_maps: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched Conselice concentration; returns ``(C, totals)``.

    Rows with non-positive enclosed flux (``totals[i] <= 0``) or a
    non-positive r80 come back NaN for the caller to flag invalid.
    ``radius_maps``, when provided, skips recomputing the per-centre
    radius maps (see :func:`curve_of_growth_radii_batch`).
    """
    radii, totals = curve_of_growth_radii_batch(
        images, centers_y, centers_x, total_radii, geometry, (0.2, 0.8), radius_maps
    )
    r20 = np.maximum(radii[:, 0], 0.5)
    r80 = radii[:, 1]
    with np.errstate(divide="ignore", invalid="ignore"):
        c = np.where(r80 > 0, 5.0 * np.log10(r80 / np.where(r80 > 0, r20, 1.0)), np.nan)
    return c, totals


def average_surface_brightness_batch(
    images: np.ndarray,
    radius_maps: np.ndarray,
    radii: np.ndarray,
    pixel_scales_arcsec: np.ndarray,
    zero_points: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched mean surface brightness; returns ``(mu, fluxes)``.

    ``radius_maps`` are the per-centre maps (one broadcast ``hypot`` for
    the whole stack); aperture membership, flux sums and pixel counts are
    single masked passes.  Rows with non-positive aperture flux come back
    NaN with ``fluxes[i] <= 0`` for the caller to flag invalid.
    """
    images = np.asarray(images, dtype=float)
    radii = np.asarray(radii, dtype=float)
    inside = radius_maps <= radii[:, None, None]
    fluxes = np.where(inside, images, 0.0).sum(axis=(1, 2))
    n_pix = inside.sum(axis=(1, 2))
    areas = n_pix * np.asarray(pixel_scales_arcsec, dtype=float) ** 2
    ok = fluxes > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        mu = np.where(
            ok,
            np.asarray(zero_points, dtype=float)
            - 2.5 * np.log10(np.where(ok, fluxes, 1.0) / np.where(areas > 0, areas, 1.0)),
            np.nan,
        )
    return mu, fluxes


def average_surface_brightness(
    image: np.ndarray,
    center: tuple[float, float],
    radius: float,
    pixel_scale_arcsec: float,
    zero_point: float = 0.0,
    geometry: CutoutGeometry | None = None,
) -> float:
    """Mean surface brightness inside ``radius``, mag / arcsec^2.

    ``mu = zero_point - 2.5 log10( flux / area_arcsec2 )`` — the "measure of
    the total amount of detected light (per area)" of §2.
    """
    if pixel_scale_arcsec <= 0:
        raise ValueError(f"pixel scale must be positive: {pixel_scale_arcsec}")
    image = np.asarray(image)
    geom = _geometry_for(image, geometry)
    flux = _aperture_flux(image, center, radius, geometry=geom)
    if flux <= 0:
        raise ValueError("non-positive aperture flux; cannot form a magnitude")
    n_pix = geom.aperture_npix(center, radius)
    area_arcsec2 = n_pix * pixel_scale_arcsec**2
    return float(zero_point - 2.5 * np.log10(flux / area_arcsec2))
