"""The galMorph job: FITS cutout in, morphology parameters out.

This is the executable behind the paper's VDL transformation::

    TR galMorph( in redshift, in pixScale, in zeroPoint, in Ho, in om,
                 in flat, in image, out galMorph )

and its per-galaxy derivations.  Failures ("the computation ... would fail
because of the bad quality of galaxy images or some other reasons",
§4.3.1(4)) are captured in the ``valid`` flag instead of propagating, so a
few bad images never take down a whole cluster run.

:func:`galmorph_batch` is the campaign-scale entry point: it runs many
cutouts through the pipeline while sharing one
:class:`~repro.morphology.geometry.CutoutGeometry` per cutout shape (index
grids, radius maps, sorted permutations, aperture masks), optionally
fanning out over a ``ProcessPoolExecutor``.  Clustered compute nodes in
:mod:`repro.condor.local` route whole seqexec bundles through it.
"""

from __future__ import annotations

import logging
import os
import pickle
import time
from collections.abc import Iterable, Sequence
from dataclasses import asdict, dataclass
from functools import lru_cache

import numpy as np

from repro import telemetry
from repro.catalog.cosmology import FlatLambdaCDM
from repro.fits.hdu import ImageHDU
from repro.morphology.background import estimate_background, estimate_background_batch
from repro.morphology.geometry import CutoutGeometry, shared_geometry
from repro.morphology.measures import (
    asymmetry_index,
    asymmetry_index_batch,
    average_surface_brightness,
    average_surface_brightness_batch,
    concentration_index,
    concentration_index_batch,
)
from repro.morphology.petrosian import (
    PETROSIAN_ERRORS,
    PETROSIAN_OK,
    petrosian_radius,
    petrosian_radius_batch,
)
from repro.morphology.segmentation import (
    central_source_mask,
    central_source_mask_batch,
    source_centroid,
    source_centroid_batch,
)

logger = logging.getLogger(__name__)

_ALLOCATOR_TUNED = False


def _tune_allocator() -> None:
    """Stop glibc from handing freed kernel buffers back to the OS.

    The stacked kernels cycle multi-hundred-KB temporaries on every batch
    call; glibc's default 128 KiB mmap threshold turns each of those into
    a fresh ``mmap``/``munmap`` pair, so every pass over a large array
    pays soft page faults instead of reusing warm pages.  Raising the
    mmap and trim thresholds once per process roughly halves the cost of
    the allocation-heavy hot path on this workload.  Opt out with
    ``REPRO_GALMORPH_MALLOC_TUNE=0``; silently a no-op on non-glibc
    platforms.  Trade-off: freed peak-usage pages stay resident in the
    process, which is bounded here by a few MB of kernel scratch.
    """
    global _ALLOCATOR_TUNED
    if _ALLOCATOR_TUNED:
        return
    _ALLOCATOR_TUNED = True
    if os.environ.get("REPRO_GALMORPH_MALLOC_TUNE", "1") == "0":
        return
    try:
        import ctypes

        libc = ctypes.CDLL("libc.so.6")
        libc.mallopt(-3, 1 << 27)  # M_MMAP_THRESHOLD
        libc.mallopt(-1, 1 << 27)  # M_TRIM_THRESHOLD
    except (OSError, AttributeError):  # pragma: no cover - non-glibc
        pass


#: Everything a pathological cutout may legitimately raise out of the
#: measurement kernels.  ``np.errstate(... "raise")`` turns silent numpy
#: divide/invalid/overflow conditions into ``FloatingPointError``; scalar
#: Python math can raise ``ZeroDivisionError``; ``-W error`` runs escalate
#: ``RuntimeWarning``.  All of them become ``valid=False`` rows.
_MEASUREMENT_FAILURES = (
    ValueError,
    FloatingPointError,
    ZeroDivisionError,
    RuntimeWarning,
)


@lru_cache(maxsize=32)
def _cosmology(ho: float, om: float) -> FlatLambdaCDM:
    """Cosmology calculators keyed by (Ho, Om): one distance integral warm-up
    per parameter set instead of one object per galaxy."""
    return FlatLambdaCDM(h0=ho, omega_m=om)


@dataclass(frozen=True)
class MorphologyResult:
    """Per-galaxy output record, mirroring the paper's output VOTable row."""

    galaxy_id: str
    valid: bool
    surface_brightness: float = float("nan")
    concentration: float = float("nan")
    asymmetry: float = float("nan")
    petrosian_radius_arcsec: float = float("nan")
    petrosian_radius_kpc: float = float("nan")
    error: str = ""

    def as_row(self) -> dict[str, object]:
        """Row dict for a results VOTable (NaNs become nulls)."""
        row = asdict(self)

        def clean(v: object) -> object:
            if isinstance(v, float) and not np.isfinite(v):
                return None
            return v

        return {k: clean(v) for k, v in row.items()}


def galmorph(
    image: ImageHDU,
    redshift: float,
    pix_scale: float,
    zero_point: float = 0.0,
    ho: float = 100.0,
    om: float = 0.3,
    flat: bool = True,
    galaxy_id: str | None = None,
    geometry: CutoutGeometry | None = None,
) -> MorphologyResult:
    """Measure the three §2 morphology parameters of one galaxy cutout.

    Parameters mirror the VDL transformation: ``pix_scale`` is in
    degrees/pixel (the paper's derivation passes ``2.83e-4``), cosmology is
    (``ho``, ``om``, ``flat``).  Never raises for data-quality problems —
    returns ``valid=False`` with the failure reason instead; the
    measurement block runs under ``np.errstate`` so silent numpy failure
    modes surface as catchable ``FloatingPointError`` rather than NaNs or
    crashed cluster nodes.

    ``geometry`` lets batch callers share one cutout-geometry cache across
    galaxies of the same shape; when omitted the process-wide
    :func:`~repro.morphology.geometry.shared_geometry` cache is used.

    With telemetry enabled each call opens a ``galmorph.galaxy`` span,
    observes ``galmorph_seconds`` and counts ``valid=False`` rows in
    ``galmorph_invalid_rows_total`` (the §4.3.1(4) failure accounting —
    bad cutouts no longer vanish silently).  Disabled, the only cost is
    one flag test.
    """
    if not telemetry.enabled():
        return _galmorph_impl(
            image, redshift, pix_scale, zero_point, ho, om, flat, galaxy_id, geometry
        )
    with telemetry.trace_span("galmorph.galaxy") as span:
        t0 = time.perf_counter()
        result = _galmorph_impl(
            image, redshift, pix_scale, zero_point, ho, om, flat, galaxy_id, geometry
        )
        elapsed = time.perf_counter() - t0
        telemetry.observe("galmorph_seconds", elapsed)
        telemetry.count("galmorph_rows_total", valid=str(result.valid).lower())
        span.set(galaxy=result.galaxy_id, valid=result.valid)
        if not result.valid:
            telemetry.count("galmorph_invalid_rows_total")
            span.set(error=result.error)
    return result


def _galmorph_impl(
    image: ImageHDU,
    redshift: float,
    pix_scale: float,
    zero_point: float = 0.0,
    ho: float = 100.0,
    om: float = 0.3,
    flat: bool = True,
    galaxy_id: str | None = None,
    geometry: CutoutGeometry | None = None,
) -> MorphologyResult:
    """The measurement body of :func:`galmorph` (untraced)."""
    if not flat:
        raise NotImplementedError("only flat cosmologies are supported, as in the paper")
    gid = galaxy_id if galaxy_id is not None else str(image.header.get("OBJECT", "unknown"))
    if image.data is None:
        return MorphologyResult(gid, valid=False, error="image HDU carries no data")
    try:
        data = np.asarray(image.data, dtype=float)
        geom = geometry if geometry is not None else shared_geometry(data.shape)
        with np.errstate(divide="raise", invalid="raise", over="raise", under="ignore"):
            background = estimate_background(data)
            subtracted = data - background.level
            mask = central_source_mask(data, background)
            if not mask.any():
                return MorphologyResult(gid, valid=False, error="no significant central source")
            center = source_centroid(subtracted, mask, geometry=geom)
            r_p = petrosian_radius(subtracted, center, geometry=geom)
            measure_radius = min(1.5 * r_p, min(data.shape) / 2.0 - 1.0)
            if measure_radius <= 1.0:
                return MorphologyResult(
                    gid, valid=False, error="source unresolved at this pixel scale"
                )

            pixel_scale_arcsec = abs(pix_scale) * 3600.0
            mu = average_surface_brightness(
                subtracted,
                center,
                measure_radius,
                pixel_scale_arcsec,
                zero_point=zero_point,
                geometry=geom,
            )
            c = concentration_index(subtracted, center, measure_radius, geometry=geom)
            a = asymmetry_index(
                subtracted,
                center,
                measure_radius,
                background_sigma=background.sigma,
                geometry=geom,
            )

        cosmo = _cosmology(float(ho), float(om))
        r_p_arcsec = r_p * pixel_scale_arcsec
        r_p_kpc = (
            r_p_arcsec * cosmo.kpc_per_arcsec(max(redshift, 0.0)) if redshift > 0 else float("nan")
        )
        return MorphologyResult(
            galaxy_id=gid,
            valid=True,
            surface_brightness=mu,
            concentration=c,
            asymmetry=a,
            petrosian_radius_arcsec=r_p_arcsec,
            petrosian_radius_kpc=r_p_kpc,
        )
    except _MEASUREMENT_FAILURES as exc:
        return MorphologyResult(gid, valid=False, error=str(exc))


@dataclass(frozen=True)
class GalmorphTask:
    """One galMorph invocation's inputs, batchable and picklable."""

    image: ImageHDU
    redshift: float
    pix_scale: float
    zero_point: float = 0.0
    ho: float = 100.0
    om: float = 0.3
    flat: bool = True
    galaxy_id: str | None = None


def _run_task(task: GalmorphTask) -> MorphologyResult:
    """Module-level task body (picklable for process pools); workers still
    amortise geometry through the per-process shared cache."""
    return galmorph(
        task.image,
        redshift=task.redshift,
        pix_scale=task.pix_scale,
        zero_point=task.zero_point,
        ho=task.ho,
        om=task.om,
        flat=task.flat,
        galaxy_id=task.galaxy_id,
    )


def _run_task_remote(
    payload: tuple[GalmorphTask, "telemetry.TraceContext | None"],
) -> tuple[MorphologyResult, list, dict]:
    """Worker-process task body with trace-context re-attachment.

    The parent ships its :class:`~repro.telemetry.TraceContext` with every
    task; spans opened in the worker carry the parent's trace id, and the
    worker's span records + metric deltas travel home in the return value
    for the parent to ingest/merge.
    """
    task, ctx = payload
    return telemetry.run_with_context(ctx, _run_task, task)


def galmorph_batch(
    tasks: Iterable[GalmorphTask],
    *,
    processes: int | None = None,
) -> list[MorphologyResult]:
    """Run many galMorph jobs, amortising per-cutout setup.

    Sequentially (the default) every task of a given cutout shape shares
    one :class:`CutoutGeometry`, so index grids, radius maps, sorted-radius
    permutations and aperture masks are built once per shape rather than
    once per galaxy — the §5 campaign cuts all 1144 members to one shape.

    With ``processes > 1`` the batch fans out over a
    ``ProcessPoolExecutor``; each worker keeps its own per-shape geometry
    cache.  Any pool failure (sandboxed fork, unpicklable payloads, broken
    workers) falls back to the sequential shared-geometry path, so results
    are always produced.  Output order matches input order in both modes.
    """
    task_list = list(tasks)
    batch_span = telemetry.trace_span(
        "galmorph.batch", n=len(task_list), processes=processes or 1
    )
    with batch_span:
        return _galmorph_batch_impl(task_list, processes=processes)


try:  # stdlib, but keep the batch path alive on exotic builds without it
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover

    class BrokenProcessPool(RuntimeError):
        """Stand-in when concurrent.futures.process is unavailable."""


#: Pool-infrastructure failures that trigger a fallback.  Deliberately
#: narrow: a bare ``RuntimeError`` raised by the measurement kernels is a
#: bug, not a pool problem, and must propagate (``BrokenProcessPool``
#: subclasses ``RuntimeError``, so it stays in explicitly).
_POOL_FAILURES = (OSError, ImportError, BrokenProcessPool, pickle.PicklingError)

_FALLBACK_LOGGED: set[str] = set()


def _note_fallback(kind: str, exc: BaseException) -> None:
    """Account for a degraded execution path: count every occurrence in
    ``galmorph_<kind>_fallback_total`` and log the first one per process."""
    telemetry.count(f"galmorph_{kind}_fallback_total")
    if kind not in _FALLBACK_LOGGED:
        _FALLBACK_LOGGED.add(kind)
        logger.warning(
            "galmorph %s execution path unavailable (%s: %s); falling back",
            kind,
            type(exc).__name__,
            exc,
        )


def _task_gid(task: GalmorphTask) -> str:
    if task.galaxy_id is not None:
        return task.galaxy_id
    return str(task.image.header.get("OBJECT", "unknown"))


def _split_stackable(
    task_list: list[GalmorphTask],
) -> tuple[dict[tuple[int, int], list[int]], dict[int, np.ndarray], list[int]]:
    """Partition a batch into same-shape stackable groups and scalar leftovers.

    Stackable means: flat cosmology, 2-D float-convertible data, all pixels
    finite.  Everything else (missing data, weird dtypes, NaN/Inf pixels,
    non-flat cosmology) keeps the scalar path — including its exact error
    strings and the ``NotImplementedError`` contract.
    """
    groups: dict[tuple[int, int], list[int]] = {}
    arrays: dict[int, np.ndarray] = {}
    scalar: list[int] = []
    for i, task in enumerate(task_list):
        data = task.image.data
        if task.flat and data is not None:
            try:
                arr = np.asarray(data, dtype=float)
            except (TypeError, ValueError):
                scalar.append(i)
                continue
            if arr.ndim == 2 and np.isfinite(arr).all():
                groups.setdefault(arr.shape, []).append(i)
                arrays[i] = arr
                continue
        scalar.append(i)
    return groups, arrays, scalar


def galmorph_stacked(
    stack: np.ndarray,
    ids: Sequence[str],
    redshifts: np.ndarray,
    pix_scales: np.ndarray,
    zero_points: np.ndarray,
    hos: np.ndarray,
    oms: np.ndarray,
    geometry: CutoutGeometry | None = None,
) -> list[MorphologyResult]:
    """Measure a whole ``(N, H, W)`` stack of same-shape cutouts in one pass.

    The stacked twin of :func:`_galmorph_impl`: every stage — background,
    segmentation, centroiding, Petrosian profile, surface brightness,
    concentration, asymmetry — runs once over the batch axis instead of N
    times, sharing one :class:`CutoutGeometry`.  Rows that fail a stage are
    retired with the scalar path's exact error string and the survivors are
    compacted, so later (more expensive) stages only see live rows.

    Inputs must be finite (callers route non-finite cutouts to the scalar
    path, which reproduces numpy's own error strings for them).  Each row's
    arithmetic is per-row independent, so running a sub-range of the stack
    produces bit-identical results to running the whole stack — the
    property the shared-memory pool chunks rely on.
    """
    _tune_allocator()
    stack = np.asarray(stack, dtype=float)
    n = stack.shape[0]
    results: list[MorphologyResult | None] = [None] * n
    geom = geometry if geometry is not None else shared_geometry(stack.shape[1:])
    redshifts = np.asarray(redshifts, dtype=float)
    pix_scales = np.asarray(pix_scales, dtype=float)
    zero_points = np.asarray(zero_points, dtype=float)
    hos = np.asarray(hos, dtype=float)
    oms = np.asarray(oms, dtype=float)

    def retire(global_rows: np.ndarray, error: str | list[str]) -> None:
        for k, i in enumerate(global_rows):
            msg = error if isinstance(error, str) else error[k]
            results[int(i)] = MorphologyResult(ids[int(i)], valid=False, error=msg)

    try:
        backgrounds = estimate_background_batch(stack)
    except ValueError as exc:
        return [MorphologyResult(ids[i], valid=False, error=str(exc)) for i in range(n)]
    levels = np.array([bg.level for bg in backgrounds])
    sigmas = np.array([bg.sigma for bg in backgrounds])
    subtracted = stack - levels[:, None, None]

    masks = central_source_mask_batch(stack, backgrounds)
    has_source = masks.any(axis=(1, 2))
    if has_source.all():
        alive = np.arange(n)
    else:
        retire(np.nonzero(~has_source)[0], "no significant central source")
        alive = np.nonzero(has_source)[0]

    # Each stage retires its failures and compacts the survivor arrays so
    # later (more expensive) stages only see live rows; the common
    # all-clean batch skips every compaction copy.
    cy = cx = r_p = measure_radius = radius_maps = sub_alive = None
    if alive.size:
        sub_alive = subtracted if alive.size == n else subtracted[alive]
        cy, cx, totals = source_centroid_batch(
            sub_alive, masks if alive.size == n else masks[alive], geom
        )
        bad = totals <= 0
        if bad.any():
            retire(alive[bad], "source has no positive flux")
            keep = ~bad
            alive, cy, cx, sub_alive = alive[keep], cy[keep], cx[keep], sub_alive[keep]

    if alive.size:
        radius_maps = geom.radius_maps_batch(cy, cx)
        r_p, status = petrosian_radius_batch(sub_alive, radius_maps)
        bad = status != PETROSIAN_OK
        if bad.any():
            retire(alive[bad], [PETROSIAN_ERRORS[int(s)] for s in status[bad]])
            keep = ~bad
            alive, cy, cx, r_p = alive[keep], cy[keep], cx[keep], r_p[keep]
            sub_alive, radius_maps = sub_alive[keep], radius_maps[keep]

    if alive.size:
        measure_radius = np.minimum(1.5 * r_p, min(geom.shape) / 2.0 - 1.0)
        bad = measure_radius <= 1.0
        if bad.any():
            retire(alive[bad], "source unresolved at this pixel scale")
            keep = ~bad
            alive, cy, cx, r_p = alive[keep], cy[keep], cx[keep], r_p[keep]
            measure_radius = measure_radius[keep]
            sub_alive, radius_maps = sub_alive[keep], radius_maps[keep]

    psa = np.abs(pix_scales) * 3600.0
    mu = c = a = None
    if alive.size:
        bad = psa[alive] <= 0
        if bad.any():
            retire(
                alive[bad], [f"pixel scale must be positive: {p}" for p in psa[alive][bad]]
            )
            keep = ~bad
            alive, cy, cx, r_p = alive[keep], cy[keep], cx[keep], r_p[keep]
            measure_radius = measure_radius[keep]
            sub_alive, radius_maps = sub_alive[keep], radius_maps[keep]

    if alive.size:
        mu, fluxes = average_surface_brightness_batch(
            sub_alive, radius_maps, measure_radius, psa[alive], zero_points[alive]
        )
        bad = fluxes <= 0
        if bad.any():
            retire(alive[bad], "non-positive aperture flux; cannot form a magnitude")
            keep = ~bad
            alive, cy, cx, r_p, mu = alive[keep], cy[keep], cx[keep], r_p[keep], mu[keep]
            measure_radius, sub_alive = measure_radius[keep], sub_alive[keep]
            radius_maps = radius_maps[keep]

    if alive.size:
        c, totals = concentration_index_batch(
            sub_alive, cy, cx, measure_radius, geom, radius_maps
        )
        bad_total = totals <= 0
        bad_r80 = ~bad_total & ~np.isfinite(c)
        if bad_total.any() or bad_r80.any():
            retire(
                alive[bad_total], "non-positive total flux inside the measurement aperture"
            )
            retire(alive[bad_r80], "r80 is non-positive; source is unresolved")
            keep = ~(bad_total | bad_r80)
            alive, cy, cx, r_p, mu, c = (
                alive[keep], cy[keep], cx[keep], r_p[keep], mu[keep], c[keep],
            )
            measure_radius, sub_alive = measure_radius[keep], sub_alive[keep]

    if alive.size:
        a = asymmetry_index_batch(sub_alive, cy, cx, measure_radius, sigmas[alive], geom)
        bad = ~np.isfinite(a)
        if bad.any():
            retire(alive[bad], "asymmetry undefined: no flux inside the aperture")
            keep = ~bad
            alive, r_p, mu, c, a = alive[keep], r_p[keep], mu[keep], c[keep], a[keep]

    # Valid rows: convert to physical units.  The distance integral is the
    # only per-galaxy scalar cost left, so it is memoised per unique
    # (Ho, Om, z) triple across the batch.
    kpc_memo: dict[tuple[float, float, float], float] = {}
    for j, i in enumerate(alive):
        i = int(i)
        r_p_arcsec = float(r_p[j]) * psa[i]
        z = float(redshifts[i])
        if z > 0:
            key = (float(hos[i]), float(oms[i]), max(z, 0.0))
            kpc = kpc_memo.get(key)
            if kpc is None:
                kpc = _cosmology(key[0], key[1]).kpc_per_arcsec(key[2])
                kpc_memo[key] = kpc
            r_p_kpc = r_p_arcsec * kpc
        else:
            r_p_kpc = float("nan")
        results[i] = MorphologyResult(
            galaxy_id=ids[i],
            valid=True,
            surface_brightness=float(mu[j]),
            concentration=float(c[j]),
            asymmetry=float(a[j]),
            petrosian_radius_arcsec=r_p_arcsec,
            petrosian_radius_kpc=r_p_kpc,
        )
    return results  # type: ignore[return-value]


def _emit_batch_telemetry(results: Sequence[MorphologyResult], elapsed: float) -> None:
    """Per-galaxy spans/counters for rows measured by the stacked path.

    The stacked kernels process all rows at once, so per-row wall time is
    the batch time split evenly — the span *count* and the row/invalid
    counters stay exact, which is what the accounting contract needs.
    """
    if not telemetry.enabled() or not results:
        return
    per_row = elapsed / len(results)
    for result in results:
        with telemetry.trace_span("galmorph.galaxy") as span:
            telemetry.observe("galmorph_seconds", per_row)
            telemetry.count("galmorph_rows_total", valid=str(result.valid).lower())
            span.set(galaxy=result.galaxy_id, valid=result.valid)
            if not result.valid:
                telemetry.count("galmorph_invalid_rows_total")
                span.set(error=result.error)


def _stack_params(
    task_list: list[GalmorphTask], indices: Sequence[int]
) -> tuple[list[str], np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    ids = [_task_gid(task_list[i]) for i in indices]
    redshifts = np.array([task_list[i].redshift for i in indices], dtype=float)
    pix_scales = np.array([task_list[i].pix_scale for i in indices], dtype=float)
    zero_points = np.array([task_list[i].zero_point for i in indices], dtype=float)
    hos = np.array([task_list[i].ho for i in indices], dtype=float)
    oms = np.array([task_list[i].om for i in indices], dtype=float)
    return ids, redshifts, pix_scales, zero_points, hos, oms


def _run_scalar_leftovers(
    task_list: list[GalmorphTask],
    scalar_idx: Sequence[int],
    results: list[MorphologyResult | None],
) -> None:
    """Run the non-stackable tasks through the scalar path, in place."""
    geometries: dict[tuple[int, int], CutoutGeometry] = {}
    for i in scalar_idx:
        task = task_list[i]
        geom: CutoutGeometry | None = None
        data = task.image.data
        if data is not None and np.ndim(data) == 2:
            shape = tuple(np.shape(data))
            geom = geometries.get(shape)
            if geom is None:
                geom = geometries.setdefault(shape, shared_geometry(shape))
        results[i] = galmorph(
            task.image,
            redshift=task.redshift,
            pix_scale=task.pix_scale,
            zero_point=task.zero_point,
            ho=task.ho,
            om=task.om,
            flat=task.flat,
            galaxy_id=task.galaxy_id,
            geometry=geom,
        )


def _galmorph_batch_local(task_list: list[GalmorphTask]) -> list[MorphologyResult]:
    """Sequential batch: stacked kernels per shape group, scalar leftovers."""
    groups, arrays, scalar_idx = _split_stackable(task_list)
    results: list[MorphologyResult | None] = [None] * len(task_list)
    for shape, indices in groups.items():
        geom = shared_geometry(shape)
        stack = np.stack([arrays[i] for i in indices])
        ids, *params = _stack_params(task_list, indices)
        t0 = time.perf_counter()
        group_results = galmorph_stacked(stack, ids, *params, geometry=geom)
        _emit_batch_telemetry(group_results, time.perf_counter() - t0)
        for i, res in zip(indices, group_results):
            results[i] = res
    _run_scalar_leftovers(task_list, scalar_idx, results)
    return results  # type: ignore[return-value]


@dataclass(frozen=True)
class _StackChunk:
    """A worker's slice of one shared-memory shape-group stack."""

    shm_name: str
    shape: tuple[int, int, int]
    lo: int
    hi: int
    ids: tuple[str, ...]
    redshifts: tuple[float, ...]
    pix_scales: tuple[float, ...]
    zero_points: tuple[float, ...]
    hos: tuple[float, ...]
    oms: tuple[float, ...]


def _create_shm(nbytes: int):
    """Create one shared-memory segment (separate for test instrumentation)."""
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(create=True, size=nbytes)


def _stacked_chunk_body(chunk: _StackChunk) -> list[MorphologyResult]:
    """Worker body: attach to the parent's stack, measure a row range.

    The worker never copies the cutouts — it maps the parent's segment and
    hands a read-only row range straight to the stacked kernels (which are
    per-row independent, so the chunk's results are bit-identical to the
    same rows of a whole-batch run).  All views are dropped before
    ``close()`` so the mapping can be torn down cleanly.
    """
    from multiprocessing import shared_memory

    t0 = time.perf_counter()
    shm = shared_memory.SharedMemory(name=chunk.shm_name)
    stack = rows = None
    try:
        stack = np.ndarray(chunk.shape, dtype=np.float64, buffer=shm.buf)
        stack.flags.writeable = False
        rows = stack[chunk.lo : chunk.hi]
        results = galmorph_stacked(
            rows,
            chunk.ids,
            np.array(chunk.redshifts),
            np.array(chunk.pix_scales),
            np.array(chunk.zero_points),
            np.array(chunk.hos),
            np.array(chunk.oms),
        )
    finally:
        stack = rows = None
        shm.close()
    _emit_batch_telemetry(results, time.perf_counter() - t0)
    return results


def _run_stacked_chunk(
    payload: tuple[_StackChunk, "telemetry.TraceContext | None"],
) -> tuple[list[MorphologyResult], list, dict]:
    """Picklable pool entry point wrapping :func:`_stacked_chunk_body` with
    trace-context re-attachment (same protocol as :func:`_run_task_remote`)."""
    chunk, ctx = payload
    if ctx is None:
        return _stacked_chunk_body(chunk), [], {}
    return telemetry.run_with_context(ctx, _stacked_chunk_body, chunk)


def _galmorph_batch_shm(
    task_list: list[GalmorphTask],
    groups: dict[tuple[int, int], list[int]],
    arrays: dict[int, np.ndarray],
    scalar_idx: list[int],
    processes: int,
) -> list[MorphologyResult]:
    """Process-pool batch fed through ``multiprocessing.shared_memory``.

    One segment per shape group: the parent stacks the cutouts into the
    segment once, workers attach read-only row ranges, and only the few
    hundred bytes of :class:`_StackChunk` metadata cross the pickle
    boundary — no cutout pixels are serialised in either direction.  The
    parent unlinks every segment in a ``finally``, so no segment outlives
    the call even when a worker crashes.
    """
    from concurrent.futures import ProcessPoolExecutor

    ctx = telemetry.capture_context()
    results: list[MorphologyResult | None] = [None] * len(task_list)
    segments = []
    try:
        chunks: list[_StackChunk] = []
        chunk_targets: list[list[int]] = []
        for shape, indices in groups.items():
            h, w = shape
            n = len(indices)
            shm = _create_shm(n * h * w * 8)
            segments.append(shm)
            view = np.ndarray((n, h, w), dtype=np.float64, buffer=shm.buf)
            for j, i in enumerate(indices):
                view[j] = arrays[i]
            del view
            bounds = np.linspace(0, n, min(processes, n) + 1).astype(int)
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                lo, hi = int(lo), int(hi)
                if lo == hi:
                    continue
                sel = indices[lo:hi]
                ids, redshifts, pix_scales, zero_points, hos, oms = _stack_params(
                    task_list, sel
                )
                chunks.append(
                    _StackChunk(
                        shm_name=shm.name,
                        shape=(n, h, w),
                        lo=lo,
                        hi=hi,
                        ids=tuple(ids),
                        redshifts=tuple(redshifts),
                        pix_scales=tuple(pix_scales),
                        zero_points=tuple(zero_points),
                        hos=tuple(hos),
                        oms=tuple(oms),
                    )
                )
                chunk_targets.append(sel)
        with ProcessPoolExecutor(max_workers=processes) as pool:
            payloads = [(chunk, ctx) for chunk in chunks]
            bundles = list(pool.map(_run_stacked_chunk, payloads))
    finally:
        for shm in segments:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
    tracer, registry = telemetry.get_tracer(), telemetry.get_registry()
    for sel, (chunk_results, spans, metric_dump) in zip(chunk_targets, bundles):
        if ctx is not None:
            tracer.ingest(spans)
            registry.merge(metric_dump)
        for i, res in zip(sel, chunk_results):
            results[i] = res
    _run_scalar_leftovers(task_list, scalar_idx, results)
    return results  # type: ignore[return-value]


def _galmorph_batch_pickled(
    task_list: list[GalmorphTask], processes: int
) -> list[MorphologyResult]:
    """Legacy process-pool batch: whole tasks cross the pickle boundary.

    Kept as the guarded fallback for environments where shared memory is
    unavailable (no /dev/shm, sandboxed ftruncate, ...).
    """
    from concurrent.futures import ProcessPoolExecutor

    ctx = telemetry.capture_context()
    with ProcessPoolExecutor(max_workers=processes) as pool:
        chunksize = max(1, len(task_list) // (processes * 4))
        if ctx is None:
            return list(pool.map(_run_task, task_list, chunksize=chunksize))
        # traced: ship the parent context out, bring spans/metrics home
        payloads = [(task, ctx) for task in task_list]
        bundles = list(pool.map(_run_task_remote, payloads, chunksize=chunksize))
    results: list[MorphologyResult] = []
    tracer, registry = telemetry.get_tracer(), telemetry.get_registry()
    for result, spans, metric_dump in bundles:
        tracer.ingest(spans)
        registry.merge(metric_dump)
        results.append(result)
    return results


def _galmorph_batch_impl(
    task_list: list[GalmorphTask], *, processes: int | None
) -> list[MorphologyResult]:
    if processes is not None and processes > 1 and len(task_list) > 1:
        groups, arrays, scalar_idx = _split_stackable(task_list)
        if sum(len(v) for v in groups.values()) > 1:
            try:
                return _galmorph_batch_shm(task_list, groups, arrays, scalar_idx, processes)
            except NotImplementedError:
                raise  # non-flat cosmology: same contract as the sequential path
            except _POOL_FAILURES as exc:
                _note_fallback("shm", exc)
        try:
            return _galmorph_batch_pickled(task_list, processes)
        except NotImplementedError:
            raise
        except _POOL_FAILURES as exc:
            _note_fallback("pool", exc)
    return _galmorph_batch_local(task_list)


def galmorph_batch_shapes(tasks: Sequence[GalmorphTask]) -> dict[tuple[int, int], int]:
    """Histogram of cutout shapes in a batch — how much geometry sharing a
    clustered node will get (diagnostic for reports/status pages)."""
    shapes: dict[tuple[int, int], int] = {}
    for task in tasks:
        if task.image.data is not None and np.ndim(task.image.data) == 2:
            shape = tuple(np.shape(task.image.data))
            shapes[shape] = shapes.get(shape, 0) + 1
    return shapes
