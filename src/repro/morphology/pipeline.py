"""The galMorph job: FITS cutout in, morphology parameters out.

This is the executable behind the paper's VDL transformation::

    TR galMorph( in redshift, in pixScale, in zeroPoint, in Ho, in om,
                 in flat, in image, out galMorph )

and its per-galaxy derivations.  Failures ("the computation ... would fail
because of the bad quality of galaxy images or some other reasons",
§4.3.1(4)) are captured in the ``valid`` flag instead of propagating, so a
few bad images never take down a whole cluster run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.catalog.cosmology import FlatLambdaCDM
from repro.fits.hdu import ImageHDU
from repro.morphology.background import estimate_background
from repro.morphology.measures import (
    asymmetry_index,
    average_surface_brightness,
    concentration_index,
)
from repro.morphology.petrosian import petrosian_radius
from repro.morphology.segmentation import central_source_mask, source_centroid


@dataclass(frozen=True)
class MorphologyResult:
    """Per-galaxy output record, mirroring the paper's output VOTable row."""

    galaxy_id: str
    valid: bool
    surface_brightness: float = float("nan")
    concentration: float = float("nan")
    asymmetry: float = float("nan")
    petrosian_radius_arcsec: float = float("nan")
    petrosian_radius_kpc: float = float("nan")
    error: str = ""

    def as_row(self) -> dict[str, object]:
        """Row dict for a results VOTable (NaNs become nulls)."""
        row = asdict(self)

        def clean(v: object) -> object:
            if isinstance(v, float) and not np.isfinite(v):
                return None
            return v

        return {k: clean(v) for k, v in row.items()}


def galmorph(
    image: ImageHDU,
    redshift: float,
    pix_scale: float,
    zero_point: float = 0.0,
    ho: float = 100.0,
    om: float = 0.3,
    flat: bool = True,
    galaxy_id: str | None = None,
) -> MorphologyResult:
    """Measure the three §2 morphology parameters of one galaxy cutout.

    Parameters mirror the VDL transformation: ``pix_scale`` is in
    degrees/pixel (the paper's derivation passes ``2.83e-4``), cosmology is
    (``ho``, ``om``, ``flat``).  Never raises for data-quality problems —
    returns ``valid=False`` with the failure reason instead.
    """
    if not flat:
        raise NotImplementedError("only flat cosmologies are supported, as in the paper")
    gid = galaxy_id if galaxy_id is not None else str(image.header.get("OBJECT", "unknown"))
    if image.data is None:
        return MorphologyResult(gid, valid=False, error="image HDU carries no data")
    try:
        data = np.asarray(image.data, dtype=float)
        background = estimate_background(data)
        subtracted = data - background.level
        mask = central_source_mask(data, background)
        if not mask.any():
            return MorphologyResult(gid, valid=False, error="no significant central source")
        center = source_centroid(subtracted, mask)
        r_p = petrosian_radius(subtracted, center)
        measure_radius = min(1.5 * r_p, min(data.shape) / 2.0 - 1.0)
        if measure_radius <= 1.0:
            return MorphologyResult(gid, valid=False, error="source unresolved at this pixel scale")

        pixel_scale_arcsec = abs(pix_scale) * 3600.0
        mu = average_surface_brightness(
            subtracted, center, measure_radius, pixel_scale_arcsec, zero_point=zero_point
        )
        c = concentration_index(subtracted, center, measure_radius)
        a = asymmetry_index(subtracted, center, measure_radius, background_sigma=background.sigma)

        cosmo = FlatLambdaCDM(h0=ho, omega_m=om)
        r_p_arcsec = r_p * pixel_scale_arcsec
        r_p_kpc = r_p_arcsec * cosmo.kpc_per_arcsec(max(redshift, 0.0)) if redshift > 0 else float("nan")
        return MorphologyResult(
            galaxy_id=gid,
            valid=True,
            surface_brightness=mu,
            concentration=c,
            asymmetry=a,
            petrosian_radius_arcsec=r_p_arcsec,
            petrosian_radius_kpc=r_p_kpc,
        )
    except (ValueError, FloatingPointError) as exc:
        return MorphologyResult(gid, valid=False, error=str(exc))
