"""The galMorph job: FITS cutout in, morphology parameters out.

This is the executable behind the paper's VDL transformation::

    TR galMorph( in redshift, in pixScale, in zeroPoint, in Ho, in om,
                 in flat, in image, out galMorph )

and its per-galaxy derivations.  Failures ("the computation ... would fail
because of the bad quality of galaxy images or some other reasons",
§4.3.1(4)) are captured in the ``valid`` flag instead of propagating, so a
few bad images never take down a whole cluster run.

:func:`galmorph_batch` is the campaign-scale entry point: it runs many
cutouts through the pipeline while sharing one
:class:`~repro.morphology.geometry.CutoutGeometry` per cutout shape (index
grids, radius maps, sorted permutations, aperture masks), optionally
fanning out over a ``ProcessPoolExecutor``.  Clustered compute nodes in
:mod:`repro.condor.local` route whole seqexec bundles through it.
"""

from __future__ import annotations

import pickle
import time
from collections.abc import Iterable, Sequence
from dataclasses import asdict, dataclass
from functools import lru_cache

import numpy as np

from repro import telemetry
from repro.catalog.cosmology import FlatLambdaCDM
from repro.fits.hdu import ImageHDU
from repro.morphology.background import estimate_background
from repro.morphology.geometry import CutoutGeometry, shared_geometry
from repro.morphology.measures import (
    asymmetry_index,
    average_surface_brightness,
    concentration_index,
)
from repro.morphology.petrosian import petrosian_radius
from repro.morphology.segmentation import central_source_mask, source_centroid

#: Everything a pathological cutout may legitimately raise out of the
#: measurement kernels.  ``np.errstate(... "raise")`` turns silent numpy
#: divide/invalid/overflow conditions into ``FloatingPointError``; scalar
#: Python math can raise ``ZeroDivisionError``; ``-W error`` runs escalate
#: ``RuntimeWarning``.  All of them become ``valid=False`` rows.
_MEASUREMENT_FAILURES = (
    ValueError,
    FloatingPointError,
    ZeroDivisionError,
    RuntimeWarning,
)


@lru_cache(maxsize=32)
def _cosmology(ho: float, om: float) -> FlatLambdaCDM:
    """Cosmology calculators keyed by (Ho, Om): one distance integral warm-up
    per parameter set instead of one object per galaxy."""
    return FlatLambdaCDM(h0=ho, omega_m=om)


@dataclass(frozen=True)
class MorphologyResult:
    """Per-galaxy output record, mirroring the paper's output VOTable row."""

    galaxy_id: str
    valid: bool
    surface_brightness: float = float("nan")
    concentration: float = float("nan")
    asymmetry: float = float("nan")
    petrosian_radius_arcsec: float = float("nan")
    petrosian_radius_kpc: float = float("nan")
    error: str = ""

    def as_row(self) -> dict[str, object]:
        """Row dict for a results VOTable (NaNs become nulls)."""
        row = asdict(self)

        def clean(v: object) -> object:
            if isinstance(v, float) and not np.isfinite(v):
                return None
            return v

        return {k: clean(v) for k, v in row.items()}


def galmorph(
    image: ImageHDU,
    redshift: float,
    pix_scale: float,
    zero_point: float = 0.0,
    ho: float = 100.0,
    om: float = 0.3,
    flat: bool = True,
    galaxy_id: str | None = None,
    geometry: CutoutGeometry | None = None,
) -> MorphologyResult:
    """Measure the three §2 morphology parameters of one galaxy cutout.

    Parameters mirror the VDL transformation: ``pix_scale`` is in
    degrees/pixel (the paper's derivation passes ``2.83e-4``), cosmology is
    (``ho``, ``om``, ``flat``).  Never raises for data-quality problems —
    returns ``valid=False`` with the failure reason instead; the
    measurement block runs under ``np.errstate`` so silent numpy failure
    modes surface as catchable ``FloatingPointError`` rather than NaNs or
    crashed cluster nodes.

    ``geometry`` lets batch callers share one cutout-geometry cache across
    galaxies of the same shape; when omitted the process-wide
    :func:`~repro.morphology.geometry.shared_geometry` cache is used.

    With telemetry enabled each call opens a ``galmorph.galaxy`` span,
    observes ``galmorph_seconds`` and counts ``valid=False`` rows in
    ``galmorph_invalid_rows_total`` (the §4.3.1(4) failure accounting —
    bad cutouts no longer vanish silently).  Disabled, the only cost is
    one flag test.
    """
    if not telemetry.enabled():
        return _galmorph_impl(
            image, redshift, pix_scale, zero_point, ho, om, flat, galaxy_id, geometry
        )
    with telemetry.trace_span("galmorph.galaxy") as span:
        t0 = time.perf_counter()
        result = _galmorph_impl(
            image, redshift, pix_scale, zero_point, ho, om, flat, galaxy_id, geometry
        )
        elapsed = time.perf_counter() - t0
        telemetry.observe("galmorph_seconds", elapsed)
        telemetry.count("galmorph_rows_total", valid=str(result.valid).lower())
        span.set(galaxy=result.galaxy_id, valid=result.valid)
        if not result.valid:
            telemetry.count("galmorph_invalid_rows_total")
            span.set(error=result.error)
    return result


def _galmorph_impl(
    image: ImageHDU,
    redshift: float,
    pix_scale: float,
    zero_point: float = 0.0,
    ho: float = 100.0,
    om: float = 0.3,
    flat: bool = True,
    galaxy_id: str | None = None,
    geometry: CutoutGeometry | None = None,
) -> MorphologyResult:
    """The measurement body of :func:`galmorph` (untraced)."""
    if not flat:
        raise NotImplementedError("only flat cosmologies are supported, as in the paper")
    gid = galaxy_id if galaxy_id is not None else str(image.header.get("OBJECT", "unknown"))
    if image.data is None:
        return MorphologyResult(gid, valid=False, error="image HDU carries no data")
    try:
        data = np.asarray(image.data, dtype=float)
        geom = geometry if geometry is not None else shared_geometry(data.shape)
        with np.errstate(divide="raise", invalid="raise", over="raise", under="ignore"):
            background = estimate_background(data)
            subtracted = data - background.level
            mask = central_source_mask(data, background)
            if not mask.any():
                return MorphologyResult(gid, valid=False, error="no significant central source")
            center = source_centroid(subtracted, mask, geometry=geom)
            r_p = petrosian_radius(subtracted, center, geometry=geom)
            measure_radius = min(1.5 * r_p, min(data.shape) / 2.0 - 1.0)
            if measure_radius <= 1.0:
                return MorphologyResult(
                    gid, valid=False, error="source unresolved at this pixel scale"
                )

            pixel_scale_arcsec = abs(pix_scale) * 3600.0
            mu = average_surface_brightness(
                subtracted,
                center,
                measure_radius,
                pixel_scale_arcsec,
                zero_point=zero_point,
                geometry=geom,
            )
            c = concentration_index(subtracted, center, measure_radius, geometry=geom)
            a = asymmetry_index(
                subtracted,
                center,
                measure_radius,
                background_sigma=background.sigma,
                geometry=geom,
            )

        cosmo = _cosmology(float(ho), float(om))
        r_p_arcsec = r_p * pixel_scale_arcsec
        r_p_kpc = (
            r_p_arcsec * cosmo.kpc_per_arcsec(max(redshift, 0.0)) if redshift > 0 else float("nan")
        )
        return MorphologyResult(
            galaxy_id=gid,
            valid=True,
            surface_brightness=mu,
            concentration=c,
            asymmetry=a,
            petrosian_radius_arcsec=r_p_arcsec,
            petrosian_radius_kpc=r_p_kpc,
        )
    except _MEASUREMENT_FAILURES as exc:
        return MorphologyResult(gid, valid=False, error=str(exc))


@dataclass(frozen=True)
class GalmorphTask:
    """One galMorph invocation's inputs, batchable and picklable."""

    image: ImageHDU
    redshift: float
    pix_scale: float
    zero_point: float = 0.0
    ho: float = 100.0
    om: float = 0.3
    flat: bool = True
    galaxy_id: str | None = None


def _run_task(task: GalmorphTask) -> MorphologyResult:
    """Module-level task body (picklable for process pools); workers still
    amortise geometry through the per-process shared cache."""
    return galmorph(
        task.image,
        redshift=task.redshift,
        pix_scale=task.pix_scale,
        zero_point=task.zero_point,
        ho=task.ho,
        om=task.om,
        flat=task.flat,
        galaxy_id=task.galaxy_id,
    )


def _run_task_remote(
    payload: tuple[GalmorphTask, "telemetry.TraceContext | None"],
) -> tuple[MorphologyResult, list, dict]:
    """Worker-process task body with trace-context re-attachment.

    The parent ships its :class:`~repro.telemetry.TraceContext` with every
    task; spans opened in the worker carry the parent's trace id, and the
    worker's span records + metric deltas travel home in the return value
    for the parent to ingest/merge.
    """
    task, ctx = payload
    return telemetry.run_with_context(ctx, _run_task, task)


def galmorph_batch(
    tasks: Iterable[GalmorphTask],
    *,
    processes: int | None = None,
) -> list[MorphologyResult]:
    """Run many galMorph jobs, amortising per-cutout setup.

    Sequentially (the default) every task of a given cutout shape shares
    one :class:`CutoutGeometry`, so index grids, radius maps, sorted-radius
    permutations and aperture masks are built once per shape rather than
    once per galaxy — the §5 campaign cuts all 1144 members to one shape.

    With ``processes > 1`` the batch fans out over a
    ``ProcessPoolExecutor``; each worker keeps its own per-shape geometry
    cache.  Any pool failure (sandboxed fork, unpicklable payloads, broken
    workers) falls back to the sequential shared-geometry path, so results
    are always produced.  Output order matches input order in both modes.
    """
    task_list = list(tasks)
    batch_span = telemetry.trace_span(
        "galmorph.batch", n=len(task_list), processes=processes or 1
    )
    with batch_span:
        return _galmorph_batch_impl(task_list, processes=processes)


def _galmorph_batch_impl(
    task_list: list[GalmorphTask], *, processes: int | None
) -> list[MorphologyResult]:
    if processes is not None and processes > 1 and len(task_list) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor
            from concurrent.futures.process import BrokenProcessPool

            ctx = telemetry.capture_context()
            with ProcessPoolExecutor(max_workers=processes) as pool:
                chunksize = max(1, len(task_list) // (processes * 4))
                if ctx is None:
                    return list(pool.map(_run_task, task_list, chunksize=chunksize))
                # traced: ship the parent context out, bring spans/metrics home
                payloads = [(task, ctx) for task in task_list]
                bundles = list(pool.map(_run_task_remote, payloads, chunksize=chunksize))
            results: list[MorphologyResult] = []
            tracer, registry = telemetry.get_tracer(), telemetry.get_registry()
            for result, spans, metric_dump in bundles:
                tracer.ingest(spans)
                registry.merge(metric_dump)
                results.append(result)
            return results
        except NotImplementedError:
            raise  # non-flat cosmology: same contract as the sequential path
        except (OSError, ImportError, BrokenProcessPool, pickle.PicklingError, RuntimeError):
            pass  # fall back to the sequential shared-geometry path

    geometries: dict[tuple[int, int], CutoutGeometry] = {}
    results: list[MorphologyResult] = []
    for task in task_list:
        geom: CutoutGeometry | None = None
        data = task.image.data
        if data is not None and np.ndim(data) == 2:
            shape = tuple(np.shape(data))
            geom = geometries.get(shape)
            if geom is None:
                geom = geometries.setdefault(shape, shared_geometry(shape))
        results.append(
            galmorph(
                task.image,
                redshift=task.redshift,
                pix_scale=task.pix_scale,
                zero_point=task.zero_point,
                ho=task.ho,
                om=task.om,
                flat=task.flat,
                galaxy_id=task.galaxy_id,
                geometry=geom,
            )
        )
    return results


def galmorph_batch_shapes(tasks: Sequence[GalmorphTask]) -> dict[tuple[int, int], int]:
    """Histogram of cutout shapes in a batch — how much geometry sharing a
    clustered node will get (diagnostic for reports/status pages)."""
    shapes: dict[tuple[int, int], int] = {}
    for task in tasks:
        if task.image.data is not None and np.ndim(task.image.data) == 2:
            shape = tuple(np.shape(task.image.data))
            shapes[shape] = shapes.get(shape, 0) + 1
    return shapes
