"""Petrosian radius: the aperture scale used by Conselice-style indices.

The Petrosian radius r_p(eta) is where the local surface brightness drops
to ``eta`` times the mean surface brightness interior to that radius
(eta = 0.2 is the SDSS/Conselice convention).  Total-flux apertures are
then defined as multiples of r_p, making the measurements robust to depth.

Both entry points share one radial-binning pass: the per-pixel bin index
and per-bin pixel counts depend only on (shape, centre, bin width), so
they live in the :class:`~repro.morphology.geometry.CutoutGeometry` cache
and each call does a single flux ``bincount``.  The seed implementation
ran the full ``np.indices``/``np.hypot``/double-``bincount`` pipeline
twice per ``petrosian_radius`` call.
"""

from __future__ import annotations

import numpy as np

from repro.morphology.geometry import CutoutGeometry
from repro.morphology.measures import _geometry_for


def _binned_profile(
    image: np.ndarray,
    center: tuple[float, float],
    bin_width: float,
    geometry: CutoutGeometry | None,
    max_radius: float | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One radial-binning pass: ``(bin centre radii, flux sums, counts)``."""
    image = np.asarray(image)
    geom = _geometry_for(image, geometry)
    flat_idx, nbins, counts = geom.radial_bin_index(center, bin_width, max_radius)
    sums = np.bincount(flat_idx, weights=image.ravel(), minlength=nbins + 1)[:nbins]
    radii = (np.arange(nbins) + 0.5) * bin_width
    return radii, sums, counts


def radial_profile(
    image: np.ndarray,
    center: tuple[float, float],
    max_radius: float | None = None,
    bin_width: float = 1.0,
    geometry: CutoutGeometry | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Azimuthally averaged profile: (bin centre radii, mean intensity).

    Vectorised with ``np.bincount`` over integer radial bins.
    """
    radii, sums, counts = _binned_profile(image, center, bin_width, geometry, max_radius)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
    return radii, means


def petrosian_radius(
    image: np.ndarray,
    center: tuple[float, float],
    eta: float = 0.2,
    bin_width: float = 1.0,
    geometry: CutoutGeometry | None = None,
) -> float:
    """Radius where local surface brightness = eta * mean interior brightness.

    ``image`` must be background-subtracted.  Raises ``ValueError`` when the
    ratio never crosses ``eta`` inside the frame (truncated or empty source),
    which callers convert into an invalid-measurement flag.

    The local profile and the cumulative interior means come out of the same
    fused binning pass — one flux ``bincount`` per call.
    """
    if not 0.0 < eta < 1.0:
        raise ValueError(f"eta must be in (0, 1): {eta}")
    radii, sums, counts = _binned_profile(image, center, bin_width, geometry)
    if radii.size < 3:
        raise ValueError("image too small for a Petrosian profile")
    with np.errstate(invalid="ignore", divide="ignore"):
        mu_local = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)

    # cumulative mean surface brightness interior to each radius, from the
    # same per-bin sums (the seed recomputed the whole binning here)
    cum_flux = np.cumsum(sums)
    cum_area = np.cumsum(counts)
    with np.errstate(invalid="ignore", divide="ignore"):
        mu_mean = np.where(cum_area > 0, cum_flux / np.maximum(cum_area, 1), 0.0)

    valid = mu_mean > 0
    ratio = np.where(valid, mu_local / np.where(valid, mu_mean, 1.0), np.inf)
    # Find the first crossing below eta beyond the innermost bin.
    below = np.nonzero((ratio[1:] < eta))[0]
    if below.size == 0:
        raise ValueError("Petrosian ratio never falls below eta inside the frame")
    i = int(below[0]) + 1
    # Linear interpolation between bins i-1 and i for sub-bin precision.
    r0, r1 = radii[i - 1], radii[i]
    f0, f1 = ratio[i - 1], ratio[i]
    if not np.isfinite(f0) or f1 == f0:
        return float(r1)
    t = (eta - f0) / (f1 - f0)
    return float(r0 + np.clip(t, 0.0, 1.0) * (r1 - r0))
