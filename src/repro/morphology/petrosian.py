"""Petrosian radius: the aperture scale used by Conselice-style indices.

The Petrosian radius r_p(eta) is where the local surface brightness drops
to ``eta`` times the mean surface brightness interior to that radius
(eta = 0.2 is the SDSS/Conselice convention).  Total-flux apertures are
then defined as multiples of r_p, making the measurements robust to depth.
"""

from __future__ import annotations

import numpy as np


def radial_profile(
    image: np.ndarray,
    center: tuple[float, float],
    max_radius: float | None = None,
    bin_width: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Azimuthally averaged profile: (bin centre radii, mean intensity).

    Vectorised with ``np.bincount`` over integer radial bins.
    """
    cy, cx = center
    yy, xx = np.indices(image.shape, dtype=float)
    r = np.hypot(yy - cy, xx - cx)
    if max_radius is None:
        max_radius = float(r.max())
    nbins = max(int(np.ceil(max_radius / bin_width)), 1)
    idx = np.minimum((r / bin_width).astype(int), nbins)  # overflow bin = nbins
    flat_idx = idx.ravel()
    sums = np.bincount(flat_idx, weights=image.ravel(), minlength=nbins + 1)[:nbins]
    counts = np.bincount(flat_idx, minlength=nbins + 1)[:nbins]
    radii = (np.arange(nbins) + 0.5) * bin_width
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
    return radii, means


def petrosian_radius(
    image: np.ndarray,
    center: tuple[float, float],
    eta: float = 0.2,
    bin_width: float = 1.0,
) -> float:
    """Radius where local surface brightness = eta * mean interior brightness.

    ``image`` must be background-subtracted.  Raises ``ValueError`` when the
    ratio never crosses ``eta`` inside the frame (truncated or empty source),
    which callers convert into an invalid-measurement flag.
    """
    if not 0.0 < eta < 1.0:
        raise ValueError(f"eta must be in (0, 1): {eta}")
    radii, mu_local = radial_profile(image, center, bin_width=bin_width)
    if radii.size < 3:
        raise ValueError("image too small for a Petrosian profile")

    # cumulative mean surface brightness interior to each radius
    cy, cx = center
    yy, xx = np.indices(image.shape, dtype=float)
    r = np.hypot(yy - cy, xx - cx)
    nbins = radii.size
    idx = np.minimum((r / bin_width).astype(int), nbins)
    sums = np.bincount(idx.ravel(), weights=image.ravel(), minlength=nbins + 1)[:nbins]
    counts = np.bincount(idx.ravel(), minlength=nbins + 1)[:nbins]
    cum_flux = np.cumsum(sums)
    cum_area = np.cumsum(counts)
    with np.errstate(invalid="ignore", divide="ignore"):
        mu_mean = np.where(cum_area > 0, cum_flux / np.maximum(cum_area, 1), 0.0)

    valid = mu_mean > 0
    ratio = np.where(valid, mu_local / np.where(valid, mu_mean, 1.0), np.inf)
    # Find the first crossing below eta beyond the innermost bin.
    below = np.nonzero((ratio[1:] < eta))[0]
    if below.size == 0:
        raise ValueError("Petrosian ratio never falls below eta inside the frame")
    i = int(below[0]) + 1
    # Linear interpolation between bins i-1 and i for sub-bin precision.
    r0, r1 = radii[i - 1], radii[i]
    f0, f1 = ratio[i - 1], ratio[i]
    if not np.isfinite(f0) or f1 == f0:
        return float(r1)
    t = (eta - f0) / (f1 - f0)
    return float(r0 + np.clip(t, 0.0, 1.0) * (r1 - r0))
