"""Petrosian radius: the aperture scale used by Conselice-style indices.

The Petrosian radius r_p(eta) is where the local surface brightness drops
to ``eta`` times the mean surface brightness interior to that radius
(eta = 0.2 is the SDSS/Conselice convention).  Total-flux apertures are
then defined as multiples of r_p, making the measurements robust to depth.

Both entry points share one radial-binning pass: the per-pixel bin index
and per-bin pixel counts depend only on (shape, centre, bin width), so
they live in the :class:`~repro.morphology.geometry.CutoutGeometry` cache
and each call does a single flux ``bincount``.  The seed implementation
ran the full ``np.indices``/``np.hypot``/double-``bincount`` pipeline
twice per ``petrosian_radius`` call.
"""

from __future__ import annotations

import numpy as np

from repro.morphology.geometry import CutoutGeometry
from repro.morphology.measures import _geometry_for


def _binned_profile(
    image: np.ndarray,
    center: tuple[float, float],
    bin_width: float,
    geometry: CutoutGeometry | None,
    max_radius: float | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One radial-binning pass: ``(bin centre radii, flux sums, counts)``."""
    image = np.asarray(image)
    geom = _geometry_for(image, geometry)
    flat_idx, nbins, counts = geom.radial_bin_index(center, bin_width, max_radius)
    sums = np.bincount(flat_idx, weights=image.ravel(), minlength=nbins + 1)[:nbins]
    radii = (np.arange(nbins) + 0.5) * bin_width
    return radii, sums, counts


def radial_profile(
    image: np.ndarray,
    center: tuple[float, float],
    max_radius: float | None = None,
    bin_width: float = 1.0,
    geometry: CutoutGeometry | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Azimuthally averaged profile: (bin centre radii, mean intensity).

    Vectorised with ``np.bincount`` over integer radial bins.
    """
    radii, sums, counts = _binned_profile(image, center, bin_width, geometry, max_radius)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
    return radii, means


#: Sentinel errors a batched Petrosian row can carry (indices into the
#: status array returned by :func:`petrosian_radius_batch`).
PETROSIAN_OK = 0
PETROSIAN_TOO_SMALL = 1
PETROSIAN_NO_CROSSING = 2

PETROSIAN_ERRORS = {
    PETROSIAN_TOO_SMALL: "image too small for a Petrosian profile",
    PETROSIAN_NO_CROSSING: "Petrosian ratio never falls below eta inside the frame",
}


def petrosian_radius_batch(
    images: np.ndarray,
    radius_maps: np.ndarray,
    eta: float = 0.2,
    bin_width: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Petrosian radii for a whole same-shape stack in one binning pass.

    ``radius_maps`` are the per-centroid ``(N, H, W)`` maps (centres are
    per-galaxy, so the bins cannot come from the shared geometry cache —
    but one offset-``bincount`` over the whole stack replaces 2N binning
    passes).  Each row's bin layout, local/interior profiles, crossing
    search and sub-bin interpolation reproduce :func:`petrosian_radius`'s
    arithmetic exactly; rows are fully independent, so chunked execution
    is bit-identical to whole-batch execution.

    Returns ``(r_p, status)`` where ``status`` holds
    :data:`PETROSIAN_OK` / :data:`PETROSIAN_TOO_SMALL` /
    :data:`PETROSIAN_NO_CROSSING` per row (the scalar path raises
    ``ValueError`` for the latter two).
    """
    if not 0.0 < eta < 1.0:
        raise ValueError(f"eta must be in (0, 1): {eta}")
    images = np.asarray(images, dtype=float)
    n_images = images.shape[0]
    flat_r = radius_maps.reshape(n_images, -1)
    max_radii = flat_r.max(axis=1)
    nbins = np.maximum(np.ceil(max_radii / bin_width).astype(int), 1)
    status = np.where(nbins < 3, PETROSIAN_TOO_SMALL, PETROSIAN_OK)

    nb_max = int(nbins.max())
    stride = nb_max + 1
    scaled = flat_r if bin_width == 1.0 else flat_r / bin_width
    idx = np.minimum(scaled.astype(int), nbins[:, None])
    offset_idx = (idx + np.arange(n_images)[:, None] * stride).ravel()
    counts = np.bincount(offset_idx, minlength=n_images * stride)
    sums = np.bincount(offset_idx, weights=images.ravel(), minlength=n_images * stride)
    counts = counts.reshape(n_images, stride)[:, :nb_max]
    sums = sums.reshape(n_images, stride)[:, :nb_max]

    # Columns at or beyond each row's own bin count are padding: mask them
    # out of the profile so the crossing search never sees them.
    cols = np.arange(nb_max)[None, :]
    padding = cols >= nbins[:, None]
    with np.errstate(invalid="ignore", divide="ignore"):
        mu_local = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
        cum_flux = np.cumsum(sums, axis=1)
        cum_area = np.cumsum(counts, axis=1)
        mu_mean = np.where(cum_area > 0, cum_flux / np.maximum(cum_area, 1), 0.0)
        valid = mu_mean > 0
        ratio = np.where(valid, mu_local / np.where(valid, mu_mean, 1.0), np.inf)
    ratio = np.where(padding, np.inf, ratio)

    below = ratio[:, 1:] < eta
    crossed = below.any(axis=1)
    status = np.where((status == PETROSIAN_OK) & ~crossed, PETROSIAN_NO_CROSSING, status)
    first = np.argmax(below, axis=1) + 1

    rows = np.arange(n_images)
    r1 = (first + 0.5) * bin_width
    r0 = (first - 0.5) * bin_width
    f0 = ratio[rows, first - 1]
    f1 = ratio[rows, first]
    with np.errstate(invalid="ignore", divide="ignore"):
        t = np.clip((eta - f0) / np.where(f1 != f0, f1 - f0, 1.0), 0.0, 1.0)
    r_p = np.where(np.isfinite(f0) & (f1 != f0), r0 + t * (r1 - r0), r1)
    r_p = np.where(status == PETROSIAN_OK, r_p, np.nan)
    return r_p, status


def petrosian_radius(
    image: np.ndarray,
    center: tuple[float, float],
    eta: float = 0.2,
    bin_width: float = 1.0,
    geometry: CutoutGeometry | None = None,
) -> float:
    """Radius where local surface brightness = eta * mean interior brightness.

    ``image`` must be background-subtracted.  Raises ``ValueError`` when the
    ratio never crosses ``eta`` inside the frame (truncated or empty source),
    which callers convert into an invalid-measurement flag.

    The local profile and the cumulative interior means come out of the same
    fused binning pass — one flux ``bincount`` per call.
    """
    if not 0.0 < eta < 1.0:
        raise ValueError(f"eta must be in (0, 1): {eta}")
    radii, sums, counts = _binned_profile(image, center, bin_width, geometry)
    if radii.size < 3:
        raise ValueError("image too small for a Petrosian profile")
    with np.errstate(invalid="ignore", divide="ignore"):
        mu_local = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)

    # cumulative mean surface brightness interior to each radius, from the
    # same per-bin sums (the seed recomputed the whole binning here)
    cum_flux = np.cumsum(sums)
    cum_area = np.cumsum(counts)
    with np.errstate(invalid="ignore", divide="ignore"):
        mu_mean = np.where(cum_area > 0, cum_flux / np.maximum(cum_area, 1), 0.0)

    valid = mu_mean > 0
    ratio = np.where(valid, mu_local / np.where(valid, mu_mean, 1.0), np.inf)
    # Find the first crossing below eta beyond the innermost bin.
    below = np.nonzero((ratio[1:] < eta))[0]
    if below.size == 0:
        raise ValueError("Petrosian ratio never falls below eta inside the frame")
    i = int(below[0]) + 1
    # Linear interpolation between bins i-1 and i for sub-bin precision.
    r0, r1 = radii[i - 1], radii[i]
    f0, f1 = ratio[i - 1], ratio[i]
    if not np.isfinite(f0) or f1 == f0:
        return float(r1)
    t = (eta - f0) / (f1 - f0)
    return float(r0 + np.clip(t, 0.0, 1.0) * (r1 - r0))
