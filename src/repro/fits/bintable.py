"""FITS binary tables (XTENSION = BINTABLE): catalogs in FITS.

Astronomical catalogs travelled (and still travel) as FITS binary-table
extensions at least as often as VOTables; §3.1 names FITS as the standard
"for exchanging astronomical images *and tables*".  This module implements
the BINTABLE subset those catalogs use:

* column types ``L`` (logical), ``J``/``K`` (32/64-bit integers),
  ``E``/``D`` (32/64-bit IEEE floats), ``nA`` (fixed-width strings);
* the mandatory structural header (XTENSION, BITPIX=8, NAXIS=2, NAXIS1 =
  bytes/row, NAXIS2 = rows, PCOUNT/GCOUNT, TFIELDS, TTYPEn/TFORMn);
* big-endian, row-major packing padded to 2880-byte blocks;
* lossless conversion to and from :class:`repro.votable.model.VOTable`
  (strings are space-padded to the column width; float NaN carries nulls).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.fits.header import BLOCK_SIZE, Header
from repro.votable.model import Field, VOTable

#: TFORM letter -> (numpy dtype, VOTable datatype)
_SCALAR_FORMS = {
    "L": (np.dtype(">u1"), "boolean"),
    "J": (np.dtype(">i4"), "int"),
    "K": (np.dtype(">i8"), "long"),
    "E": (np.dtype(">f4"), "float"),
    "D": (np.dtype(">f8"), "double"),
}
_TFORM_RE = re.compile(r"^(\d*)([LJKEDA])$")

#: VOTable datatype -> TFORM letter (char handled separately)
_VOTABLE_TO_TFORM = {
    "boolean": "L",
    "short": "J",  # widened: BINTABLE 'I' not implemented
    "int": "J",
    "long": "K",
    "float": "E",
    "double": "D",
}


@dataclass(frozen=True)
class BinTableColumn:
    """One column: name + TFORM code (e.g. ``D``, ``16A``)."""

    name: str
    tform: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column requires a name")
        m = _TFORM_RE.match(self.tform)
        if not m:
            raise ValueError(f"unsupported TFORM {self.tform!r}")
        repeat, letter = m.groups()
        if letter == "A":
            if not repeat:
                raise ValueError("string columns need an explicit width, e.g. '16A'")
        elif repeat not in ("", "1"):
            raise ValueError(f"array columns not supported: {self.tform!r}")

    @property
    def letter(self) -> str:
        return _TFORM_RE.match(self.tform).group(2)  # type: ignore[union-attr]

    @property
    def width_bytes(self) -> int:
        m = _TFORM_RE.match(self.tform)
        repeat, letter = m.groups()  # type: ignore[union-attr]
        if letter == "A":
            return int(repeat)
        return _SCALAR_FORMS[letter][0].itemsize


class BinTableHDU:
    """A BINTABLE extension HDU."""

    def __init__(self, columns: list[BinTableColumn], header: Header | None = None) -> None:
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names: {names}")
        if not columns:
            raise ValueError("a binary table needs at least one column")
        self.columns = list(columns)
        self.header = header if header is not None else Header()
        self._rows: list[tuple] = []

    def append(self, row: tuple | list) -> None:
        if len(row) != len(self.columns):
            raise ValueError(f"row has {len(row)} cells, table has {len(self.columns)} columns")
        self._rows.append(tuple(row))

    def rows(self) -> list[tuple]:
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def row_bytes(self) -> int:
        return sum(c.width_bytes for c in self.columns)

    # -- serialisation ---------------------------------------------------------
    def _structural_header(self) -> Header:
        hdr = Header()
        hdr.set("XTENSION", "BINTABLE", "binary table extension")
        hdr.set("BITPIX", 8)
        hdr.set("NAXIS", 2)
        hdr.set("NAXIS1", self.row_bytes, "bytes per row")
        hdr.set("NAXIS2", len(self._rows), "number of rows")
        hdr.set("PCOUNT", 0)
        hdr.set("GCOUNT", 1)
        hdr.set("TFIELDS", len(self.columns))
        for i, column in enumerate(self.columns, start=1):
            hdr.set(f"TTYPE{i}", column.name)
            hdr.set(f"TFORM{i}", column.tform)
        structural = {"XTENSION", "BITPIX", "NAXIS", "NAXIS1", "NAXIS2", "PCOUNT", "GCOUNT", "TFIELDS"}
        for card in self.header:
            if card.is_commentary or card.keyword in structural:
                continue
            if re.match(r"^(TTYPE|TFORM)\d+$", card.keyword):
                continue
            hdr.set(card.keyword, card.value, card.comment)
        return hdr

    def _encode_cell(self, value, column: BinTableColumn) -> bytes:
        letter = column.letter
        if letter == "A":
            text = "" if value is None else str(value)
            data = text.encode("ascii", errors="replace")[: column.width_bytes]
            return data.ljust(column.width_bytes, b" ")
        dtype, _ = _SCALAR_FORMS[letter]
        if letter == "L":
            return b"\x00" if value is None else (b"T" if value else b"F")
        if letter in ("E", "D"):
            return np.asarray(np.nan if value is None else value, dtype=dtype).tobytes()
        if value is None:
            raise ValueError(f"integer column {column.name!r} cannot hold nulls in BINTABLE")
        return np.asarray(value, dtype=dtype).tobytes()

    def to_bytes(self) -> bytes:
        out = bytearray(self._structural_header().to_bytes())
        for row in self._rows:
            for value, column in zip(row, self.columns):
                out += self._encode_cell(value, column)
        out += b"\x00" * ((-len(self._rows) * self.row_bytes) % BLOCK_SIZE)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> tuple["BinTableHDU", int]:
        header, offset = Header.from_bytes(data)
        if header.get("XTENSION") != "BINTABLE":
            raise ValueError("not a BINTABLE extension")
        n_fields = int(header["TFIELDS"])  # type: ignore[arg-type]
        n_rows = int(header["NAXIS2"])  # type: ignore[arg-type]
        columns = [
            BinTableColumn(str(header[f"TTYPE{i}"]), str(header[f"TFORM{i}"]))
            for i in range(1, n_fields + 1)
        ]
        table = cls(columns, header)
        row_bytes = table.row_bytes
        declared = int(header["NAXIS1"])  # type: ignore[arg-type]
        if declared != row_bytes:
            raise ValueError(f"NAXIS1={declared} disagrees with column widths ({row_bytes})")
        need = offset + n_rows * row_bytes
        if need > len(data):
            raise ValueError("truncated BINTABLE data")
        pos = offset
        for _ in range(n_rows):
            row = []
            for column in columns:
                chunk = data[pos : pos + column.width_bytes]
                pos += column.width_bytes
                row.append(_decode_cell(chunk, column))
            table.append(row)
        consumed = offset + ((n_rows * row_bytes + BLOCK_SIZE - 1) // BLOCK_SIZE) * BLOCK_SIZE
        return table, consumed


def _decode_cell(chunk: bytes, column: BinTableColumn):
    letter = column.letter
    if letter == "A":
        text = chunk.decode("ascii", errors="replace").rstrip()
        return text if text else None
    if letter == "L":
        if chunk == b"\x00":
            return None
        return chunk == b"T"
    dtype, _ = _SCALAR_FORMS[letter]
    value = np.frombuffer(chunk, dtype=dtype)[0]
    if letter in ("E", "D"):
        return None if np.isnan(value) else float(value)
    return int(value)


# -- VOTable interchange -----------------------------------------------------


def votable_to_bintable(table: VOTable, string_width: int = 32) -> BinTableHDU:
    """Convert a VOTable into a BINTABLE HDU (strings fixed at
    ``string_width`` unless a row needs more)."""
    columns = []
    for f in table.fields:
        if f.datatype == "char":
            width = string_width
            for row in table:
                value = row[f.name]
                if value is not None:
                    width = max(width, len(str(value)))
            columns.append(BinTableColumn(f.name, f"{width}A"))
        else:
            columns.append(BinTableColumn(f.name, _VOTABLE_TO_TFORM[f.datatype]))
    out = BinTableHDU(columns)
    if table.name:
        out.header.set("EXTNAME", table.name)
    for raw in table.rows():
        out.append(raw)
    return out


def bintable_to_votable(hdu: BinTableHDU) -> VOTable:
    """Convert back; TFORM letters map onto VOTable datatypes."""
    fields = []
    for column in hdu.columns:
        if column.letter == "A":
            fields.append(Field(column.name, "char"))
        else:
            fields.append(Field(column.name, _SCALAR_FORMS[column.letter][1]))
    name = hdu.header.get("EXTNAME")
    table = VOTable(fields, name=str(name) if name else "")
    for row in hdu.rows():
        table.append(row)
    return table
