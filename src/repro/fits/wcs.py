"""Tangent-plane (gnomonic, CTYPE = RA---TAN / DEC--TAN) world coordinates.

This is the projection used by DSS/SDSS-style survey plates and therefore by
every image the prototype handles.  Conversions are vectorised over numpy
arrays; pixel coordinates follow the FITS convention (1-based, NAXIS1 = x).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fits.header import Header


@dataclass(frozen=True)
class TanWCS:
    """Gnomonic WCS defined by reference sky point, reference pixel, scale.

    Attributes
    ----------
    crval1, crval2:
        Sky coordinates (RA, Dec in degrees) of the reference pixel.
    crpix1, crpix2:
        1-based pixel coordinates of the reference point.
    cdelt1, cdelt2:
        Pixel scale in degrees/pixel along x and y.  ``cdelt1`` is
        conventionally negative (RA increases leftwards on the sky).
    """

    crval1: float
    crval2: float
    crpix1: float
    crpix2: float
    cdelt1: float
    cdelt2: float

    def __post_init__(self) -> None:
        if self.cdelt1 == 0 or self.cdelt2 == 0:
            raise ValueError("pixel scale (CDELT) must be non-zero")
        if not -90.0 <= self.crval2 <= 90.0:
            raise ValueError(f"CRVAL2 (Dec) out of range: {self.crval2}")

    # -- projections --------------------------------------------------------
    def sky_to_pixel(self, ra: np.ndarray | float, dec: np.ndarray | float) -> tuple[np.ndarray, np.ndarray]:
        """Project sky coordinates (degrees) to 1-based pixel coordinates."""
        ra = np.deg2rad(np.asarray(ra, dtype=float))
        dec = np.deg2rad(np.asarray(dec, dtype=float))
        ra0 = np.deg2rad(self.crval1)
        dec0 = np.deg2rad(self.crval2)
        dra = ra - ra0
        denom = np.sin(dec) * np.sin(dec0) + np.cos(dec) * np.cos(dec0) * np.cos(dra)
        with np.errstate(divide="raise", invalid="raise"):
            if np.any(denom <= 0):
                raise ValueError("point is on or beyond the tangent-plane horizon")
            xi = np.cos(dec) * np.sin(dra) / denom
            eta = (np.sin(dec) * np.cos(dec0) - np.cos(dec) * np.sin(dec0) * np.cos(dra)) / denom
        x = self.crpix1 + np.rad2deg(xi) / self.cdelt1
        y = self.crpix2 + np.rad2deg(eta) / self.cdelt2
        return x, y

    def pixel_to_sky(self, x: np.ndarray | float, y: np.ndarray | float) -> tuple[np.ndarray, np.ndarray]:
        """De-project 1-based pixel coordinates to (RA, Dec) in degrees."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        xi = np.deg2rad((x - self.crpix1) * self.cdelt1)
        eta = np.deg2rad((y - self.crpix2) * self.cdelt2)
        ra0 = np.deg2rad(self.crval1)
        dec0 = np.deg2rad(self.crval2)
        rho = np.sqrt(1.0 + xi**2 + eta**2)
        dec = np.arcsin((np.sin(dec0) + eta * np.cos(dec0)) / rho)
        ra = ra0 + np.arctan2(xi, np.cos(dec0) - eta * np.sin(dec0))
        return np.rad2deg(ra) % 360.0, np.rad2deg(dec)

    @property
    def pixel_scale_deg(self) -> float:
        """Geometric mean absolute pixel scale in degrees/pixel."""
        return float(np.sqrt(abs(self.cdelt1) * abs(self.cdelt2)))

    # -- FITS header plumbing ------------------------------------------------
    def to_header(self, header: Header | None = None) -> Header:
        """Write the WCS keywords into ``header`` (new one if omitted)."""
        hdr = header if header is not None else Header()
        hdr.set("CTYPE1", "RA---TAN", "gnomonic projection")
        hdr.set("CTYPE2", "DEC--TAN", "gnomonic projection")
        hdr.set("CRVAL1", float(self.crval1), "[deg] RA at reference pixel")
        hdr.set("CRVAL2", float(self.crval2), "[deg] Dec at reference pixel")
        hdr.set("CRPIX1", float(self.crpix1), "reference pixel x")
        hdr.set("CRPIX2", float(self.crpix2), "reference pixel y")
        hdr.set("CDELT1", float(self.cdelt1), "[deg/pix] x scale")
        hdr.set("CDELT2", float(self.cdelt2), "[deg/pix] y scale")
        return hdr

    @classmethod
    def from_header(cls, header: Header) -> "TanWCS":
        """Build a :class:`TanWCS` from FITS keywords, validating CTYPE."""
        ctype1, ctype2 = header.get("CTYPE1"), header.get("CTYPE2")
        if ctype1 != "RA---TAN" or ctype2 != "DEC--TAN":
            raise ValueError(f"not a TAN WCS: CTYPE={ctype1!r},{ctype2!r}")
        return cls(
            crval1=float(header["CRVAL1"]),  # type: ignore[arg-type]
            crval2=float(header["CRVAL2"]),  # type: ignore[arg-type]
            crpix1=float(header["CRPIX1"]),  # type: ignore[arg-type]
            crpix2=float(header["CRPIX2"]),  # type: ignore[arg-type]
            cdelt1=float(header["CDELT1"]),  # type: ignore[arg-type]
            cdelt2=float(header["CDELT2"]),  # type: ignore[arg-type]
        )
