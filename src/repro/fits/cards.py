"""FITS header cards: fixed 80-character keyword records.

A card is ``KEYWORD = value / comment`` padded to 80 columns.  This module
implements the fixed-format value conventions of the FITS standard v3:

* logical values: ``T`` / ``F`` in column 30;
* integers and floats: right-justified ending at column 30;
* strings: single-quoted starting at column 11, embedded quotes doubled;
* commentary keywords ``COMMENT`` / ``HISTORY`` / blank, which carry no
  value indicator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

CARD_LENGTH = 80

#: Value types representable in a card.
CardValue = Union[bool, int, float, str, None]

_COMMENTARY = ("COMMENT", "HISTORY", "")


@dataclass(frozen=True)
class Card:
    """One FITS header card.

    ``value is None`` with a commentary keyword stores the text in
    ``comment``; for value keywords a ``None`` value means the keyword is
    present with an undefined value (allowed by the standard).
    """

    keyword: str
    value: CardValue = None
    comment: str = ""

    def __post_init__(self) -> None:
        kw = self.keyword
        if len(kw) > 8:
            raise ValueError(f"FITS keyword too long (max 8 chars): {kw!r}")
        if kw != kw.upper().strip() and kw != "":
            raise ValueError(f"FITS keyword must be upper-case, stripped: {kw!r}")
        for ch in kw:
            if not (ch.isalnum() or ch in "-_"):
                raise ValueError(f"invalid character {ch!r} in keyword {kw!r}")

    @property
    def is_commentary(self) -> bool:
        return self.keyword in _COMMENTARY


def _format_value(value: CardValue) -> str:
    """Render the fixed-format value field (columns 11+)."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return f"{'T' if value else 'F':>20s}"
    if isinstance(value, int):
        return f"{value:>20d}"
    if isinstance(value, float):
        text = f"{value:.14G}"
        # The standard requires a decimal point or exponent so the value
        # re-parses as a float, not an int.
        if "." not in text and "E" not in text and "N" not in text and "F" not in text:
            text += "."
        return f"{text:>20s}"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        body = f"'{escaped:<8s}'"  # min 8 chars inside quotes per standard
        return body
    raise TypeError(f"unsupported card value type: {type(value).__name__}")


def format_card(card: Card) -> str:
    """Serialise a :class:`Card` to its 80-character record."""
    if card.is_commentary:
        text = f"{card.keyword:<8s}{card.comment}"
        if len(text) > CARD_LENGTH:
            raise ValueError(f"commentary card too long: {text!r}")
        return f"{text:<{CARD_LENGTH}s}"

    image = f"{card.keyword:<8s}= {_format_value(card.value)}"
    if card.comment:
        image += f" / {card.comment}"
    if len(image) > CARD_LENGTH:
        raise ValueError(f"card too long ({len(image)} > {CARD_LENGTH}): {image!r}")
    return f"{image:<{CARD_LENGTH}s}"


def _parse_value(field: str) -> tuple[CardValue, str]:
    """Parse the value + optional comment portion of a value card."""
    field = field.strip()
    if not field:
        return None, ""
    if field.startswith("'"):
        # Scan for the closing quote, honouring doubled quotes.
        i = 1
        chars: list[str] = []
        while i < len(field):
            if field[i] == "'":
                if i + 1 < len(field) and field[i + 1] == "'":
                    chars.append("'")
                    i += 2
                    continue
                break
            chars.append(field[i])
            i += 1
        else:
            raise ValueError(f"unterminated string in card value: {field!r}")
        rest = field[i + 1 :].lstrip()
        comment = rest[1:].strip() if rest.startswith("/") else ""
        # Trailing blanks inside the quotes are not significant.
        return "".join(chars).rstrip(), comment

    value_part, _, comment = field.partition("/")
    token = value_part.strip()
    comment = comment.strip()
    if token == "T":
        return True, comment
    if token == "F":
        return False, comment
    if token == "":
        return None, comment
    try:
        return int(token), comment
    except ValueError:
        pass
    try:
        return float(token), comment
    except ValueError as exc:
        raise ValueError(f"unparseable card value: {token!r}") from exc


def parse_card(record: str) -> Card:
    """Parse one 80-character record into a :class:`Card`.

    Records shorter than 80 characters are accepted (treated as
    space-padded) so that hand-written headers in tests stay readable.
    """
    if len(record) > CARD_LENGTH:
        raise ValueError(f"record longer than {CARD_LENGTH} characters")
    record = record.ljust(CARD_LENGTH)
    keyword = record[:8].rstrip()
    if keyword in _COMMENTARY:
        return Card(keyword=keyword, comment=record[8:].rstrip())
    if record[8:10] != "= ":
        # Keyword with no value indicator: treat as commentary-style.
        return Card(keyword=keyword, comment=record[8:].rstrip())
    value, comment = _parse_value(record[10:])
    return Card(keyword=keyword, value=value, comment=comment)
