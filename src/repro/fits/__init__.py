"""Minimal FITS (Flexible Image Transport System) implementation.

The paper uses FITS (Hanisch 2001b) "in all our NVO demonstrations to
transport images".  astropy is not available in this environment, so this
package implements the subset the prototype needs, from the standard:

* 80-character header cards with ``KEYWORD = value / comment`` syntax,
  including string, logical, integer and floating-point values;
* 2880-byte header and data blocks;
* primary image HDUs with BITPIX in {-64, -32, 8, 16, 32, 64} and big-endian
  data ordering as mandated by the standard;
* tangent-plane (TAN / gnomonic) world coordinate systems, the projection
  used by SDSS/DSS-style survey imagery.

The implementation round-trips byte-exactly through files, which the
property-based tests in ``tests/fits`` verify.
"""

from repro.fits.bintable import (
    BinTableColumn,
    BinTableHDU,
    bintable_to_votable,
    votable_to_bintable,
)
from repro.fits.cards import Card, format_card, parse_card
from repro.fits.hdu import ImageHDU
from repro.fits.header import Header
from repro.fits.io import read_fits, read_fits_bytes, write_fits, write_fits_bytes
from repro.fits.wcs import TanWCS

__all__ = [
    "BinTableColumn",
    "BinTableHDU",
    "bintable_to_votable",
    "votable_to_bintable",
    "Card",
    "format_card",
    "parse_card",
    "Header",
    "ImageHDU",
    "read_fits",
    "read_fits_bytes",
    "write_fits",
    "write_fits_bytes",
    "TanWCS",
]
