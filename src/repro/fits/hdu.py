"""Primary image HDU: header + n-dimensional big-endian array."""

from __future__ import annotations

import numpy as np

from repro.fits.header import BLOCK_SIZE, Header

#: FITS BITPIX code -> numpy dtype (big-endian where multi-byte).
_BITPIX_TO_DTYPE = {
    8: np.dtype(">u1"),
    16: np.dtype(">i2"),
    32: np.dtype(">i4"),
    64: np.dtype(">i8"),
    -32: np.dtype(">f4"),
    -64: np.dtype(">f8"),
}
_KIND_TO_BITPIX = {
    ("u", 1): 8,
    ("i", 2): 16,
    ("i", 4): 32,
    ("i", 8): 64,
    ("f", 4): -32,
    ("f", 8): -64,
}


def bitpix_for(dtype: np.dtype) -> int:
    """Return the FITS BITPIX code for ``dtype`` or raise ``TypeError``."""
    key = (dtype.kind, dtype.itemsize)
    if key not in _KIND_TO_BITPIX:
        raise TypeError(f"dtype {dtype} has no FITS BITPIX representation")
    return _KIND_TO_BITPIX[key]


class ImageHDU:
    """A primary FITS image HDU.

    ``data`` may be ``None`` for a header-only HDU (NAXIS=0).  Axis order
    follows the FITS convention: ``NAXIS1`` is the *fastest-varying* axis,
    i.e. the last numpy axis.
    """

    def __init__(self, data: np.ndarray | None = None, header: Header | None = None) -> None:
        self.data = None if data is None else np.asarray(data)
        if self.data is not None:
            bitpix_for(self.data.dtype)  # validate representability
        self.header = header if header is not None else Header()

    # -- serialisation -----------------------------------------------------
    def _structural_header(self) -> Header:
        """Header with mandatory structural keywords prepended/refreshed."""
        hdr = Header()
        hdr.set("SIMPLE", True, "conforms to FITS standard")
        if self.data is None:
            hdr.set("BITPIX", 8, "array data type")
            hdr.set("NAXIS", 0, "number of array dimensions")
        else:
            hdr.set("BITPIX", bitpix_for(self.data.dtype), "array data type")
            hdr.set("NAXIS", self.data.ndim, "number of array dimensions")
            for i, n in enumerate(reversed(self.data.shape), start=1):
                hdr.set(f"NAXIS{i}", int(n))
        structural = {"SIMPLE", "BITPIX", "NAXIS"} | {f"NAXIS{i}" for i in range(1, 10)}
        for card in self.header:
            if card.is_commentary:
                hdr.add_comment(card.comment) if card.keyword == "COMMENT" else hdr.add_history(card.comment)
            elif card.keyword not in structural:
                hdr.set(card.keyword, card.value, card.comment)
        return hdr

    def to_bytes(self) -> bytes:
        """Serialise header + data, each padded to 2880-byte blocks."""
        out = bytearray(self._structural_header().to_bytes())
        if self.data is not None:
            target = _BITPIX_TO_DTYPE[bitpix_for(self.data.dtype)]
            raw = np.ascontiguousarray(self.data, dtype=target).tobytes()
            out += raw
            out += b"\0" * ((-len(raw)) % BLOCK_SIZE)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> tuple["ImageHDU", int]:
        """Parse an HDU from ``data``; return it plus total bytes consumed."""
        header, offset = Header.from_bytes(data)
        if header.get("SIMPLE") is not True:
            raise ValueError("not a simple FITS primary HDU (SIMPLE != T)")
        naxis = int(header["NAXIS"])  # type: ignore[arg-type]
        if naxis == 0:
            return cls(None, header), offset
        shape = tuple(
            int(header[f"NAXIS{i}"]) for i in range(naxis, 0, -1)  # type: ignore[arg-type]
        )
        bitpix = int(header["BITPIX"])  # type: ignore[arg-type]
        if bitpix not in _BITPIX_TO_DTYPE:
            raise ValueError(f"unsupported BITPIX {bitpix}")
        dtype = _BITPIX_TO_DTYPE[bitpix]
        count = int(np.prod(shape))
        nbytes = count * dtype.itemsize
        if offset + nbytes > len(data):
            raise ValueError("truncated FITS data section")
        array = np.frombuffer(data[offset : offset + nbytes], dtype=dtype).reshape(shape)
        consumed = offset + ((nbytes + BLOCK_SIZE - 1) // BLOCK_SIZE) * BLOCK_SIZE
        # Native byte order for downstream numpy work; copy detaches from buffer.
        native = array.astype(dtype.newbyteorder("="), copy=True)
        return cls(native, header), consumed

    @property
    def nbytes(self) -> int:
        return 0 if self.data is None else int(self.data.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        shape = None if self.data is None else self.data.shape
        return f"ImageHDU(shape={shape}, cards={len(self.header)})"
