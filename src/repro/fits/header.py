"""FITS header: an ordered, keyword-addressable collection of cards."""

from __future__ import annotations

from typing import Iterator

from repro.fits.cards import CARD_LENGTH, Card, CardValue, format_card, parse_card

BLOCK_SIZE = 2880
CARDS_PER_BLOCK = BLOCK_SIZE // CARD_LENGTH  # 36


class Header:
    """Ordered mapping of FITS keywords to values with comments.

    Behaves like a dict for value keywords (``hdr["NAXIS"]``) while
    preserving card order and commentary cards, as real FITS tooling must.
    """

    def __init__(self, cards: list[Card] | None = None) -> None:
        self._cards: list[Card] = list(cards or [])

    # -- mapping interface -------------------------------------------------
    def __getitem__(self, keyword: str) -> CardValue:
        for card in self._cards:
            if card.keyword == keyword and not card.is_commentary:
                return card.value
        raise KeyError(keyword)

    def get(self, keyword: str, default: CardValue = None) -> CardValue:
        try:
            return self[keyword]
        except KeyError:
            return default

    def __setitem__(self, keyword: str, value: CardValue) -> None:
        self.set(keyword, value)

    def set(self, keyword: str, value: CardValue, comment: str | None = None) -> None:
        """Set ``keyword`` to ``value``, replacing the first existing card
        with that keyword or appending a new one."""
        for i, card in enumerate(self._cards):
            if card.keyword == keyword and not card.is_commentary:
                self._cards[i] = Card(keyword, value, comment if comment is not None else card.comment)
                return
        self._cards.append(Card(keyword, value, comment or ""))

    def __contains__(self, keyword: str) -> bool:
        return any(c.keyword == keyword and not c.is_commentary for c in self._cards)

    def __delitem__(self, keyword: str) -> None:
        before = len(self._cards)
        self._cards = [c for c in self._cards if c.keyword != keyword or c.is_commentary]
        if len(self._cards) == before:
            raise KeyError(keyword)

    def __len__(self) -> int:
        return len(self._cards)

    def __iter__(self) -> Iterator[Card]:
        return iter(self._cards)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Header) and self._cards == other._cards

    # -- commentary --------------------------------------------------------
    def add_comment(self, text: str) -> None:
        self._cards.append(Card("COMMENT", None, text))

    def add_history(self, text: str) -> None:
        self._cards.append(Card("HISTORY", None, text))

    def comments(self) -> list[str]:
        return [c.comment for c in self._cards if c.keyword == "COMMENT"]

    def history(self) -> list[str]:
        return [c.comment for c in self._cards if c.keyword == "HISTORY"]

    # -- serialisation -----------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise to one or more 2880-byte blocks, END-terminated."""
        records = [format_card(c) for c in self._cards]
        records.append(f"{'END':<{CARD_LENGTH}s}")
        text = "".join(records)
        pad = (-len(text)) % BLOCK_SIZE
        return (text + " " * pad).encode("ascii")

    @classmethod
    def from_bytes(cls, data: bytes) -> tuple["Header", int]:
        """Parse a header from ``data``; return it and the byte offset just
        past its final 2880-byte block."""
        cards: list[Card] = []
        offset = 0
        while True:
            if offset + CARD_LENGTH > len(data):
                raise ValueError("truncated FITS header: no END card found")
            record = data[offset : offset + CARD_LENGTH].decode("ascii")
            offset += CARD_LENGTH
            if record[:8].rstrip() == "END":
                break
            if record.strip() == "":
                continue  # blank padding card before END in sloppy writers
            cards.append(parse_card(record))
        # Round up past the block containing END.
        consumed = ((offset + BLOCK_SIZE - 1) // BLOCK_SIZE) * BLOCK_SIZE
        return cls(cards), consumed
