"""FITS file I/O: byte-level and path-level read/write of primary HDUs."""

from __future__ import annotations

from pathlib import Path

from repro.fits.hdu import ImageHDU


def write_fits_bytes(hdu: ImageHDU) -> bytes:
    """Serialise ``hdu`` to a complete FITS byte stream."""
    return hdu.to_bytes()


def read_fits_bytes(data: bytes) -> ImageHDU:
    """Parse the primary HDU from a FITS byte stream.

    Trailing bytes (extension HDUs) are ignored — the prototype only ships
    single-HDU images.
    """
    hdu, _ = ImageHDU.from_bytes(data)
    return hdu


def write_fits(path: str | Path, hdu: ImageHDU) -> int:
    """Write ``hdu`` to ``path``; return the number of bytes written."""
    payload = hdu.to_bytes()
    Path(path).write_bytes(payload)
    return len(payload)


def read_fits(path: str | Path) -> ImageHDU:
    """Read the primary HDU from the FITS file at ``path``."""
    return read_fits_bytes(Path(path).read_bytes())
