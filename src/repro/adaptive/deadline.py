"""Deadline-aware degradation: predict completion, shed before you miss.

A campaign submitted with an SLO deadline should *narrow* when the Grid
slows down, not silently blow through the deadline with its full job
set.  :class:`DeadlineTracker` keeps a decayed mean of completed-job
durations and predicts when the current queue will drain; the workload
manager consults :meth:`should_shed` after every completion and cancels
the lowest-priority queued jobs (journaled as ``deadline-shed`` events)
until the prediction fits the deadline again.

The tracker is advisory and lock-free from the caller's perspective:
the manager calls it while already holding its own condition lock.
"""

from __future__ import annotations

from repro.adaptive.estimator import DecayedReservoir


class DeadlineTracker:
    """Predicted campaign completion against a relative deadline."""

    def __init__(self, deadline_s: float, started_at: float) -> None:
        if deadline_s <= 0.0:
            raise ValueError("deadline_s must be positive")
        self.deadline_s = deadline_s
        self.started_at = started_at
        self._durations = DecayedReservoir(window=64, decay=0.9)

    def observe(self, duration_s: float) -> None:
        """Record one completed job's run duration."""
        self._durations.observe(max(0.0, duration_s))

    @property
    def samples(self) -> int:
        return len(self._durations)

    def predicted_completion(
        self, now: float, queued: int, running: int, parallelism: int
    ) -> float | None:
        """Seconds-since-start at which the queue is predicted to drain.

        ``None`` until at least one job completed (no basis to predict —
        shedding on zero information would cancel work for nothing).
        Remaining work is ``(queued + running) × mean_duration`` spread
        over ``parallelism`` workers; running jobs are counted whole
        (conservative: we do not know how far along they are).
        """
        mean = self._durations.mean()
        if mean is None:
            return None
        remaining = queued + running
        if remaining == 0:
            return now - self.started_at
        waves = -(-remaining // max(1, parallelism))  # ceil division
        return (now - self.started_at) + waves * mean

    def should_shed(
        self, now: float, queued: int, running: int, parallelism: int
    ) -> bool:
        """Would the campaign, as queued, miss its deadline?"""
        predicted = self.predicted_completion(now, queued, running, parallelism)
        return predicted is not None and predicted > self.deadline_s

    def snapshot(self, now: float) -> dict[str, float | None]:
        return {
            "deadline_s": self.deadline_s,
            "elapsed_s": round(now - self.started_at, 4),
            "mean_job_s": self._durations.mean(),
        }
