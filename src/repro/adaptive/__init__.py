"""SLO-driven adaptive execution: predict, speculate, degrade, autoscale.

ROADMAP item 2 closes the loop between telemetry and planning/execution.
The resilience layer (PR 4) reacts to *hard* failures — a site must drop
attempts before the breaker routes around it.  This package handles the
grayer failure mode the paper's production ancestors actually fought: a
site that is alive but *slow*, holding a whole campaign's makespan hostage.

Four cooperating mechanisms, all observational (none changes output bytes):

* :mod:`~repro.adaptive.estimator` — per-(site, node-class) decayed
  latency histograms with nearest-rank quantiles, fed by both executors;
* :mod:`~repro.adaptive.selector` — :class:`PredictiveSiteSelector`,
  a decorator that turns any base policy cost-predictive (with hysteresis
  so one outlier does not thrash placement);
* :mod:`~repro.adaptive.speculation` — the straggler budget
  (p95 × multiplier) and the launched/won/wasted ledger, charging
  duplicate cost through :class:`~repro.services.transport.CostMeter`
  under the ``speculative`` category;
* :mod:`~repro.adaptive.autoscale` — per-site slot scaling against queue
  depth in the discrete-event simulator, with cooldowns;
* :mod:`~repro.adaptive.deadline` — predicted-completion tracking for
  deadline-aware shedding in the workload manager.

:class:`AdaptiveController` bundles the shared state and is the single
object threaded through :class:`~repro.core.vds.VirtualDataSystem` into
both executors and the planner's site-selector factory.  When it is
``None`` (the default everywhere) none of this machinery exists at
runtime — the hot paths carry one ``is None`` test, held under the same
< 1% disabled-layer budget as the fault hooks.
"""

from __future__ import annotations

from repro.adaptive.autoscale import AutoscaleConfig, SiteAutoscaler
from repro.adaptive.controller import AdaptiveController
from repro.adaptive.deadline import DeadlineTracker
from repro.adaptive.estimator import DecayedReservoir, SiteLatencyEstimator
from repro.adaptive.selector import PredictiveSiteSelector
from repro.adaptive.speculation import SpeculationPolicy, SpeculationTracker

__all__ = [
    "AdaptiveController",
    "AutoscaleConfig",
    "DecayedReservoir",
    "DeadlineTracker",
    "PredictiveSiteSelector",
    "SiteAutoscaler",
    "SiteLatencyEstimator",
    "SpeculationPolicy",
    "SpeculationTracker",
]
