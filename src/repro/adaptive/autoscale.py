"""Per-site slot autoscaling for the discrete-event simulator.

:class:`~repro.condor.pool.CondorPool` is frozen (its slot count is the
*provisioned* topology), so the autoscaler keeps a dynamic overlay: the
simulator asks :meth:`SiteAutoscaler.slots` instead of ``pool.slots``
when the layer is armed.  Scaling reacts to *blocked demand* — ready
nodes that could not start because every slot was busy:

* depth above ``scale_up_at`` per busy site grows it by ``step_up``
  slots (bounded by ``max_factor × provisioned``);
* zero blocked demand and idle slots shrink by ``step_down`` back toward
  the provisioned floor;
* both directions honour a per-site ``cooldown_s`` on the *simulation*
  clock, so one burst cannot saw the pool up and down.

Slot counts are published as the ``adaptive_site_slots`` gauge so the
``repro top`` speculation/autoscale row can show current capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry


@dataclass(frozen=True)
class AutoscaleConfig:
    """Autoscaler knobs (documented in docs/adaptive.md)."""

    scale_up_at: int = 4  # blocked ready nodes that justify growth
    step_up: int = 2
    step_down: int = 1
    max_factor: float = 2.0  # ceiling as a multiple of provisioned slots
    cooldown_s: float = 30.0  # sim-clock seconds between decisions/site

    def __post_init__(self) -> None:
        if self.scale_up_at < 1:
            raise ValueError("scale_up_at must be >= 1")
        if self.step_up < 1 or self.step_down < 1:
            raise ValueError("steps must be >= 1")
        if self.max_factor < 1.0:
            raise ValueError("max_factor must be >= 1.0")
        if self.cooldown_s < 0.0:
            raise ValueError("cooldown_s must be non-negative")


class SiteAutoscaler:
    """Dynamic per-site slot overlay over a provisioned topology."""

    def __init__(
        self, provisioned: dict[str, int], config: AutoscaleConfig | None = None
    ) -> None:
        self.config = config if config is not None else AutoscaleConfig()
        self._provisioned = dict(provisioned)
        self._slots = dict(provisioned)
        self._last_change: dict[str, float] = {site: float("-inf") for site in provisioned}
        self.scale_ups = 0
        self.scale_downs = 0

    def slots(self, site: str) -> int:
        return self._slots.get(site, 0)

    def current(self) -> dict[str, int]:
        return dict(self._slots)

    def evaluate(self, site: str, blocked: int, busy: int, now: float) -> int:
        """One scaling decision for ``site``; returns the new slot count."""
        if site not in self._provisioned:
            return 0
        cfg = self.config
        if now - self._last_change[site] < cfg.cooldown_s:
            return self._slots[site]
        provisioned = self._provisioned[site]
        ceiling = int(provisioned * cfg.max_factor)
        current = self._slots[site]
        if blocked >= cfg.scale_up_at and current < ceiling:
            self._slots[site] = min(ceiling, current + cfg.step_up)
        elif blocked == 0 and busy < current and current > provisioned:
            self._slots[site] = max(provisioned, current - cfg.step_down)
        if self._slots[site] != current:
            self._last_change[site] = now
            if self._slots[site] > current:
                self.scale_ups += 1
            else:
                self.scale_downs += 1
            telemetry.gauge_set(
                "adaptive_site_slots", float(self._slots[site]), site=site
            )
        return self._slots[site]

    def snapshot(self) -> dict[str, object]:
        return {
            "slots": dict(sorted(self._slots.items())),
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
        }
