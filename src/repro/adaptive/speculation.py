"""Speculative straggler mitigation: the budget and the ledger.

A running compute node becomes a *straggler* when it exceeds its class's
pooled p95 duration times :attr:`SpeculationPolicy.p95_multiplier`.  The
executor then launches a duplicate of the node on the next-best site;
the first result wins, the loser is cancelled, and because duplicates
share the derivation signature (same job, same inputs, deterministic
body) the results are interchangeable — byte identity is preserved no
matter which copy wins.

Cost accounting is the satellite fix this module owns: a cancelled
duplicate charges **only its elapsed seconds** to the
:class:`~repro.services.transport.CostMeter` under the ``speculative``
category — never the full transport timeout.  Waiting for nothing is the
most expensive way a call can fail, but a duplicate we *chose* to kill
only cost what it actually ran.

:class:`SpeculationTracker` is the thread-safe launched/won/wasted
ledger shared by both executors and surfaced in ``repro top``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro import telemetry
from repro.services.transport import CostMeter

#: CostMeter category every duplicate second lands under.
SPECULATIVE_CATEGORY = "speculative"


@dataclass(frozen=True)
class SpeculationPolicy:
    """When to duplicate a running node.

    ``p95_multiplier``
        The straggler budget is ``class_p95 × p95_multiplier``: a node
        running past it is worth duplicating.
    ``min_samples``
        Observations of the node class required before any budget exists
        — speculating off two samples would duplicate half the campaign.
    ``max_active``
        Concurrent duplicates allowed per executor run (speculation must
        relieve the tail, not double the load).
    ``quantile``
        The rank the budget is taken at (p95 by default).
    ``min_budget_s``
        Floor under the budget so sub-second node classes never trip it
        on scheduling noise.
    """

    p95_multiplier: float = 1.5
    min_samples: int = 5
    max_active: int = 4
    quantile: float = 0.95
    min_budget_s: float = 0.0

    def __post_init__(self) -> None:
        if self.p95_multiplier < 1.0:
            raise ValueError("p95_multiplier must be >= 1.0")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.max_active < 1:
            raise ValueError("max_active must be >= 1")
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if self.min_budget_s < 0.0:
            raise ValueError("min_budget_s must be non-negative")


class SpeculationTracker:
    """Launched / won / wasted accounting, shared across executors."""

    def __init__(self, meter: CostMeter | None = None) -> None:
        self.meter = meter
        self._lock = threading.Lock()
        self._launched = 0
        self._won = 0
        self._wasted = 0
        self._wasted_seconds = 0.0

    def record_launch(self, site: str, node_id: str) -> None:
        with self._lock:
            self._launched += 1
        telemetry.count("speculation_launched_total", site=site)

    def record_win(self, site: str, node_id: str) -> None:
        """The *duplicate* finished first and its result was used."""
        with self._lock:
            self._won += 1
        telemetry.count("speculation_won_total", site=site)

    def record_waste(self, site: str, node_id: str, elapsed_s: float) -> None:
        """A duplicate (or the original it raced) was cancelled after
        ``elapsed_s`` — charge exactly that, not the transport timeout."""
        elapsed_s = max(0.0, elapsed_s)
        with self._lock:
            self._wasted += 1
            self._wasted_seconds += elapsed_s
        if self.meter is not None:
            self.meter.charge(SPECULATIVE_CATEGORY, elapsed_s)
        telemetry.count("speculation_wasted_total", site=site)
        telemetry.count("speculation_wasted_seconds_total", elapsed_s)

    @property
    def launched(self) -> int:
        with self._lock:
            return self._launched

    @property
    def won(self) -> int:
        with self._lock:
            return self._won

    @property
    def wasted(self) -> int:
        with self._lock:
            return self._wasted

    @property
    def wasted_seconds(self) -> float:
        with self._lock:
            return self._wasted_seconds

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "launched": self._launched,
                "won": self._won,
                "wasted": self._wasted,
                "wasted_seconds": round(self._wasted_seconds, 4),
            }
