"""Per-site latency estimators: decayed samples + nearest-rank quantiles.

The estimator answers two questions the static planner cannot:

* *how long will a node of this class take on this site?* — the
  prediction :class:`PredictiveSiteSelector` ranks candidates by;
* *how long is suspiciously long?* — the p95 budget the speculation
  layer watches running nodes against.

Samples decay exponentially (each new observation multiplies every
existing weight by ``decay``), so a site that recovers from a slow spell
re-earns trust within a few tens of observations instead of dragging a
whole campaign's history behind it.  Quantiles are **nearest-rank over
the decayed weights** — no interpolation, so a single outlier cannot
invent a duration nobody ever observed.

Everything is thread-safe: the local executor observes from its worker
pool while the planner predicts from the dispatcher thread.
"""

from __future__ import annotations

import threading
from collections import deque

#: Default sample window per (site, class); decayed weights make the
#: effective window smaller, this just bounds memory.
DEFAULT_WINDOW = 256


class DecayedReservoir:
    """A bounded, exponentially decayed sample set of durations."""

    def __init__(self, window: int = DEFAULT_WINDOW, decay: float = 0.97) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.window = window
        self.decay = decay
        self._samples: deque[float] = deque(maxlen=window)
        self._weights: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        if value < 0.0:
            raise ValueError(f"negative duration: {value}")
        for i in range(len(self._weights)):
            self._weights[i] *= self.decay
        self._samples.append(float(value))
        self._weights.append(1.0)

    def __len__(self) -> int:
        return len(self._samples)

    def mean(self) -> float | None:
        """Decay-weighted mean; ``None`` with no samples."""
        if not self._samples:
            return None
        total_w = sum(self._weights)
        return sum(s * w for s, w in zip(self._samples, self._weights)) / total_w

    def quantile(self, q: float) -> float | None:
        """Nearest-rank weighted quantile; ``None`` with no samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return None
        pairs = sorted(zip(self._samples, self._weights))
        total = sum(w for _, w in pairs)
        target = q * total
        cum = 0.0
        for value, weight in pairs:
            cum += weight
            if cum >= target:
                return value
        return pairs[-1][0]


class SiteLatencyEstimator:
    """The shared ledger of observed node durations, keyed (site, class).

    A *node class* is the transformation name (``galMorph``), with
    clustered bundles suffixed by member count (``galMorph*8``) since a
    bundle's duration scales with its size.  Aggregation across classes
    (``node_class=None``) serves the site selector, which ranks sites
    before knowing which class dominates the plan.
    """

    def __init__(self, window: int = DEFAULT_WINDOW, decay: float = 0.97) -> None:
        self._window = window
        self._decay = decay
        self._lock = threading.Lock()
        self._reservoirs: dict[tuple[str, str], DecayedReservoir] = {}

    def observe(self, site: str, node_class: str, duration: float) -> None:
        with self._lock:
            key = (site, node_class)
            reservoir = self._reservoirs.get(key)
            if reservoir is None:
                reservoir = DecayedReservoir(self._window, self._decay)
                self._reservoirs[key] = reservoir
            reservoir.observe(duration)

    def samples(self, site: str, node_class: str | None = None) -> int:
        with self._lock:
            return sum(
                len(r)
                for (s, c), r in self._reservoirs.items()
                if s == site and (node_class is None or c == node_class)
            )

    def predict(
        self, site: str, node_class: str | None = None
    ) -> float | None:
        """Expected duration of one node on ``site`` (decayed mean).

        With ``node_class=None`` the per-class means are averaged,
        weighted by sample count.  ``None`` when the site has no history.
        """
        with self._lock:
            num = 0.0
            den = 0
            for (s, c), reservoir in self._reservoirs.items():
                if s != site or (node_class is not None and c != node_class):
                    continue
                mean = reservoir.mean()
                if mean is None:
                    continue
                num += mean * len(reservoir)
                den += len(reservoir)
            return num / den if den else None

    def quantile(
        self, site: str, node_class: str, q: float
    ) -> float | None:
        with self._lock:
            reservoir = self._reservoirs.get((site, node_class))
            return reservoir.quantile(q) if reservoir is not None else None

    def class_quantile(self, node_class: str, q: float) -> float | None:
        """The quantile pooled across every site running ``node_class`` —
        the straggler budget must reflect what the *grid* considers
        normal, not what the slow site has normalised itself to."""
        samples: list[tuple[float, float]] = []
        with self._lock:
            for (s, c), reservoir in self._reservoirs.items():
                if c != node_class:
                    continue
                samples.extend(zip(reservoir._samples, reservoir._weights))
        if not samples:
            return None
        pairs = sorted(samples)
        total = sum(w for _, w in pairs)
        target = q * total
        cum = 0.0
        for value, weight in pairs:
            cum += weight
            if cum >= target:
                return value
        return pairs[-1][0]

    def best_quantile(self, node_class: str, q: float) -> float | None:
        """The *best* per-site quantile for ``node_class`` — the straggler
        budget.  Pooling across sites would let a slow site's samples
        inflate the budget until its own stragglers look normal; taking
        the minimum over sites anchors "suspiciously long" to what the
        healthiest site demonstrably achieves."""
        with self._lock:
            quantiles = [
                value
                for (s, c), reservoir in self._reservoirs.items()
                if c == node_class
                and (value := reservoir.quantile(q)) is not None
            ]
        return min(quantiles) if quantiles else None

    def class_samples(self, node_class: str) -> int:
        with self._lock:
            return sum(
                len(r) for (s, c), r in self._reservoirs.items() if c == node_class
            )

    def sites(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted({s for s, _ in self._reservoirs}))

    def snapshot(self) -> dict[str, dict[str, float]]:
        """JSON-ready ``{site: {mean, p95, samples}}`` for dashboards."""
        out: dict[str, dict[str, float]] = {}
        for site in self.sites():
            mean = self.predict(site)
            with self._lock:
                keys = [c for (s, c) in self._reservoirs if s == site]
            p95s = [
                p for c in keys if (p := self.quantile(site, c, 0.95)) is not None
            ]
            out[site] = {
                "mean_s": round(mean, 4) if mean is not None else 0.0,
                "p95_s": round(max(p95s), 4) if p95s else 0.0,
                "samples": self.samples(site),
            }
        return out
