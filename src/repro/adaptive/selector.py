"""Cost-predictive site selection with hysteresis.

:class:`PredictiveSiteSelector` is a decorator in the same shape as
:class:`~repro.pegasus.site_selector.HealthAwareSiteSelector`: it wraps
any base policy and only overrides the choice when the estimator has
enough history to rank candidates by *predicted completion time* —
expected node duration scaled by the backlog this selector has already
assigned to the site.  Composition order in the planner factory is

    HealthAwareSiteSelector(PredictiveSiteSelector(base))

so hard-failed sites are removed before prediction ever sees them, and
prediction refines (never fights) the health gate.

Hysteresis: switching the preferred site requires the challenger to beat
the incumbent's predicted completion by ``hysteresis`` (a fraction) —
one outlier sample cannot thrash placement between two near-equal sites,
which matters because thrashing defeats input-locality and warm caches.
"""

from __future__ import annotations

from collections import defaultdict

from repro import telemetry
from repro.adaptive.estimator import SiteLatencyEstimator
from repro.pegasus.site_selector import SiteSelector

#: History below which prediction abstains and the base policy decides.
MIN_SAMPLES = 3


class PredictiveSiteSelector(SiteSelector):
    """Rank candidates by predicted completion; fall back to the base."""

    def __init__(
        self,
        base: SiteSelector,
        estimator: SiteLatencyEstimator,
        capacities: dict[str, int] | None = None,
        hysteresis: float = 0.15,
        min_samples: int = MIN_SAMPLES,
    ) -> None:
        if not 0.0 <= hysteresis < 1.0:
            raise ValueError(f"hysteresis must be in [0, 1), got {hysteresis}")
        self.base = base
        self.estimator = estimator
        self.capacities = dict(capacities or {})
        self.hysteresis = hysteresis
        self.min_samples = min_samples
        self._assigned: dict[str, int] = defaultdict(int)
        self._preferred: str | None = None

    def _predicted_completion(self, site: str) -> float | None:
        """Expected duration inflated by the backlog already placed here."""
        duration = self.estimator.predict(site)
        if duration is None:
            return None
        capacity = max(1, self.capacities.get(site, 1))
        return duration * (1.0 + self._assigned[site] / capacity)

    def choose(self, job_id: str, candidate_sites: list[str]) -> str:
        self._require(job_id, candidate_sites)
        scored: dict[str, float] = {}
        for site in candidate_sites:
            if self.estimator.samples(site) < self.min_samples:
                continue
            predicted = self._predicted_completion(site)
            if predicted is not None:
                scored[site] = predicted
        # Prediction only takes over once every candidate has history:
        # ranking a known site against an unknown one would starve the
        # unknown site of the samples it needs to ever be ranked.
        if len(scored) < len(candidate_sites):
            site = self.base.choose(job_id, candidate_sites)
            self._assigned[site] += 1
            return site
        best = min(sorted(scored), key=lambda s: scored[s])
        choice = best
        incumbent = self._preferred
        if (
            incumbent is not None
            and incumbent in scored
            and best != incumbent
            and scored[best] >= scored[incumbent] * (1.0 - self.hysteresis)
        ):
            # The challenger's edge is within the hysteresis band: stay.
            choice = incumbent
        if choice != incumbent:
            telemetry.count("adaptive_placement_switches_total", site=choice)
        self._preferred = choice
        self._assigned[choice] += 1
        telemetry.count("adaptive_predictive_choices_total", site=choice)
        return choice
