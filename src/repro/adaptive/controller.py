"""The one object the adaptive layer threads through the system.

:class:`AdaptiveController` bundles the shared estimator, the
speculation policy + ledger, and the autoscaler configuration so that
:class:`~repro.core.vds.VirtualDataSystem` needs a single optional
constructor argument.  Each sub-mechanism is independently optional:

* ``speculation=None`` — no straggler duplicates in either executor;
* ``autoscale=None`` — the simulator runs the provisioned topology;
* ``predictive=False`` — site selection stays purely health-gated.

The estimator always exists (it is cheap and both mechanisms feed on
it), but nothing observes into it unless an executor holds the
controller.
"""

from __future__ import annotations

from typing import Any

from repro.adaptive.autoscale import AutoscaleConfig, SiteAutoscaler
from repro.adaptive.estimator import SiteLatencyEstimator
from repro.adaptive.speculation import SpeculationPolicy, SpeculationTracker
from repro.services.transport import CostMeter


class AdaptiveController:
    """Shared state of the adaptive-execution layer."""

    def __init__(
        self,
        *,
        speculation: SpeculationPolicy | None = None,
        autoscale: AutoscaleConfig | None = None,
        predictive: bool = True,
        meter: CostMeter | None = None,
        hysteresis: float = 0.15,
    ) -> None:
        self.estimator = SiteLatencyEstimator()
        self.speculation = speculation
        self.autoscale = autoscale
        self.predictive = predictive
        self.hysteresis = hysteresis
        #: duplicate cost is charged here under the ``speculative``
        #: category — the environment's meter when one exists.
        self.tracker = SpeculationTracker(meter)
        #: the most recent simulator run's slot overlay (the autoscaler is
        #: per-run; the simulator parks it here so dashboards can read the
        #: final slot counts and decision tallies)
        self.last_autoscaler: "SiteAutoscaler | None" = None

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready state for ``/health`` and ``repro top``."""
        return {
            "speculation": self.tracker.snapshot(),
            "sites": self.estimator.snapshot(),
            "predictive": self.predictive,
            "speculation_enabled": self.speculation is not None,
            "autoscale_enabled": self.autoscale is not None,
            **(
                {"autoscale": self.last_autoscaler.snapshot()}
                if self.last_autoscaler is not None
                else {}
            ),
        }
