"""Pegasus: Planning for Execution in Grids.

"Pegasus can map an abstract workflow onto the available Grid resources ...
receives an abstract workflow description from Chimera, produces a concrete
workflow, and submits it to Condor-G/DAGMan for execution" (§3.2).  The
numbered pipeline of Figure 2 maps onto this package as:

* Request Manager / orchestration — :mod:`repro.pegasus.planner`
* (5)->(6) Abstract DAG Reduction — :mod:`repro.pegasus.reduction`
* (3)/(4) RLS queries, (7)/(8) TC queries, feasibility check, site and
  replica selection, transfer/registration node insertion —
  :mod:`repro.pegasus.concretizer` and :mod:`repro.pegasus.site_selector`
* (11) Submit File Generator — :mod:`repro.pegasus.submit`
"""

from repro.pegasus.clustering import cluster_workflow
from repro.pegasus.options import PlannerOptions
from repro.pegasus.planner import PegasusPlanner, PlanResult
from repro.pegasus.reduction import reduce_workflow
from repro.pegasus.site_selector import (
    LeastLoadedSiteSelector,
    RandomSiteSelector,
    RoundRobinSiteSelector,
    SiteSelector,
    make_site_selector,
)
from repro.pegasus.submit import generate_submit_files

__all__ = [
    "cluster_workflow",
    "PlannerOptions",
    "PegasusPlanner",
    "PlanResult",
    "reduce_workflow",
    "SiteSelector",
    "RandomSiteSelector",
    "RoundRobinSiteSelector",
    "LeastLoadedSiteSelector",
    "make_site_selector",
    "generate_submit_files",
]
