"""Abstract DAG Reduction: Pegasus's virtual-data optimisation.

"If data products described within the AW already exist, Pegasus reuses
them and thus reduces the complexity of the CW ... the reduction component
of Pegasus assumes that it is more costly to execute a component (a job)
than to access the results of the component if that data is available"
(§3.2, Figures 1 -> 3).

The algorithm is a backward chase from the workflow's requested products:
a logical file is *satisfied* if it has a replica in the RLS; otherwise its
producing job is *needed*, and all that job's inputs must in turn be
satisfied or produced.  Jobs never reached are pruned.  This correctly
handles chains (materialised ``b`` prunes ``d1`` in the paper's example),
diamonds, and partially materialised multi-output jobs (a job with *any*
unsatisfied needed output must run).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.rls.rls import ReplicaLocationService
from repro.workflow.abstract import AbstractWorkflow


@dataclass(frozen=True)
class ReductionResult:
    """Outcome of the reduction pass.

    Attributes
    ----------
    workflow:
        The reduced abstract workflow (possibly empty when every requested
        product already exists).
    pruned_jobs:
        Ids of jobs removed because their outputs were materialised.
    reused_lfns:
        Logical files satisfied from the RLS instead of recomputation —
        these become stage-in candidates during concretization.
    """

    workflow: AbstractWorkflow
    pruned_jobs: tuple[str, ...]
    reused_lfns: tuple[str, ...]

    @property
    def fully_satisfied(self) -> bool:
        """True when nothing needs to run at all."""
        return len(self.workflow) == 0


def reduce_workflow(
    workflow: AbstractWorkflow,
    rls: ReplicaLocationService,
    requested_lfns: Iterable[str] | None = None,
) -> ReductionResult:
    """Prune jobs whose outputs are already materialised in the RLS.

    ``requested_lfns`` defaults to the workflow's final products; files in
    that set are *always* recomputed-or-fetched targets — if they exist in
    the RLS their producing jobs are pruned and the files simply delivered.
    """
    requested = set(requested_lfns) if requested_lfns is not None else workflow.final_products()
    unknown = requested - workflow.products()
    if unknown:
        raise ValueError(f"requested files not produced by this workflow: {sorted(unknown)}")

    needed_jobs: set[str] = set()
    reused: set[str] = set()
    visited_lfns: set[str] = set()
    frontier: deque[str] = deque(sorted(requested))

    while frontier:
        lfn = frontier.popleft()
        if lfn in visited_lfns:
            continue
        visited_lfns.add(lfn)
        if rls.exists(lfn):
            # Satisfied from storage; do not chase its producer.  Raw inputs
            # (no producer) are ordinary stage-ins, not "reuse".
            if workflow.producer_of(lfn) is not None:
                reused.add(lfn)
            continue
        producer = workflow.producer_of(lfn)
        if producer is None:
            # A raw workflow input that is absent from the RLS: reduction
            # leaves it; the feasibility check will reject the plan.
            continue
        if producer in needed_jobs:
            continue
        needed_jobs.add(producer)
        frontier.extend(workflow.job(producer).inputs)

    kept = [job for job in workflow.jobs() if job.job_id in needed_jobs]
    pruned = tuple(job.job_id for job in workflow.jobs() if job.job_id not in needed_jobs)
    reduced = AbstractWorkflow()
    # Preserve original (dependency-consistent) insertion order.
    for job in kept:
        reduced.add_job(job)
    return ReductionResult(workflow=reduced, pruned_jobs=pruned, reused_lfns=tuple(sorted(reused)))
