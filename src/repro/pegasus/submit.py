"""Submit File Generator: Condor-G submit descriptions plus the DAGMan file.

"Pegasus' Submit File Generator generates submit files which are given to
Condor-G and the associated DAGMan for execution.  These files contain the
actual commands used to execute the workflow as well as the path for the
executables and data" (§3.2, step 11 of Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workflow.concrete import (
    ClusteredComputeNode,
    ComputeNode,
    ConcreteWorkflow,
    RegistrationNode,
    TransferNode,
)


@dataclass(frozen=True)
class SubmitFiles:
    """The generated artifacts: one ``.sub`` text per node + the ``.dag``."""

    dag_file: str
    submit_files: dict[str, str]  # node_id -> submit file text

    def __len__(self) -> int:
        return len(self.submit_files)


def _compute_submit(node: ComputeNode) -> str:
    args = " ".join(f"-{k} {v}" for k, v in sorted(node.job.parameters.items()))
    files_in = ",".join(node.job.inputs)
    files_out = ",".join(node.job.outputs)
    return "\n".join(
        [
            "universe = globus",
            f"globusscheduler = {node.site}.grid/jobmanager-condor",
            f"executable = {node.executable}",
            f"arguments = {args}",
            f"transfer_input_files = {files_in}",
            f"transfer_output_files = {files_out}",
            f"log = {node.node_id}.log",
            "notification = NEVER",
            "queue",
            "",
        ]
    )


def _clustered_submit(node: ClusteredComputeNode) -> str:
    """A seqexec-style bundle: one submission, members run in sequence."""
    member_lines = [
        f"# member {m.job.job_id}: {m.executable} "
        + " ".join(f"-{k} {v}" for k, v in sorted(m.job.parameters.items()))
        for m in node.members
    ]
    return "\n".join(
        [
            "universe = globus",
            f"globusscheduler = {node.site}.grid/jobmanager-condor",
            "executable = /usr/local/vds/bin/seqexec",
            f"arguments = {node.node_id}.in",
            *member_lines,
            f"log = {node.node_id}.log",
            "notification = NEVER",
            "queue",
            "",
        ]
    )


def _transfer_submit(node: TransferNode) -> str:
    return "\n".join(
        [
            "universe = globus",
            f"globusscheduler = {node.dest_site}.grid/jobmanager-fork",
            "executable = /usr/bin/globus-url-copy",
            f"arguments = {node.source_pfn} {node.dest_pfn}",
            f"log = {node.node_id}.log",
            "notification = NEVER",
            "queue",
            "",
        ]
    )


def _registration_submit(node: RegistrationNode) -> str:
    return "\n".join(
        [
            "universe = scheduler",
            "executable = /usr/bin/globus-rls-cli",
            f"arguments = create {node.lfn} {node.pfn}",
            f"log = {node.node_id}.log",
            "notification = NEVER",
            "queue",
            "",
        ]
    )


def generate_submit_files(cw: ConcreteWorkflow, dag_name: str = "workflow") -> SubmitFiles:
    """Render every node's submit file and the DAGMan driver file.

    The ``.dag`` lists ``JOB`` lines in topological order plus a
    ``PARENT ... CHILD ...`` line per edge and a default 2-retry policy, as
    DAGMan rescue semantics expect.
    """
    submit_files: dict[str, str] = {}
    dag_lines: list[str] = [f"# DAGMan file for {dag_name}"]
    for node_id in cw.dag.topological_order():
        payload = cw.dag.payload(node_id)
        if isinstance(payload, ComputeNode):
            submit_files[node_id] = _compute_submit(payload)
        elif isinstance(payload, ClusteredComputeNode):
            submit_files[node_id] = _clustered_submit(payload)
        elif isinstance(payload, TransferNode):
            submit_files[node_id] = _transfer_submit(payload)
        elif isinstance(payload, RegistrationNode):
            submit_files[node_id] = _registration_submit(payload)
        else:  # pragma: no cover - future node kinds
            raise TypeError(f"unknown concrete node type: {type(payload).__name__}")
        dag_lines.append(f"JOB {node_id} {node_id}.sub")
        dag_lines.append(f"RETRY {node_id} 2")
    for parent, child in sorted(cw.dag.edges()):
        dag_lines.append(f"PARENT {parent} CHILD {child}")
    return SubmitFiles(dag_file="\n".join(dag_lines) + "\n", submit_files=submit_files)
