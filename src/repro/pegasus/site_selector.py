"""Execution-site selection policies.

The paper's Concrete Workflow Generator "picks a random location to execute
from among the returned locations" — :class:`RandomSiteSelector`.  The
round-robin and least-loaded policies are the ablation alternatives the
site-selection benchmark compares (the paper's related-work section notes
other systems schedule by load; Pegasus left this to future work).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict

import numpy as np

from repro import telemetry
from repro.core.errors import PlanningError
from repro.resilience.breaker import SiteHealthTracker
from repro.utils.rng import derive_rng


class SiteSelector(ABC):
    """Chooses an execution site for a job among TC-provided candidates."""

    @abstractmethod
    def choose(self, job_id: str, candidate_sites: list[str]) -> str:
        """Return one of ``candidate_sites``; raise PlanningError if empty."""

    def _require(self, job_id: str, candidate_sites: list[str]) -> None:
        if not candidate_sites:
            raise PlanningError(f"no site provides the transformation for job {job_id!r}")


class RandomSiteSelector(SiteSelector):
    """Uniform random choice — the paper's policy."""

    def __init__(self, seed: int = 2003) -> None:
        self._rng: np.random.Generator = derive_rng(seed, "site-selector")

    def choose(self, job_id: str, candidate_sites: list[str]) -> str:
        self._require(job_id, candidate_sites)
        return candidate_sites[int(self._rng.integers(0, len(candidate_sites)))]


class RoundRobinSiteSelector(SiteSelector):
    """Cycle through candidates per transformation-independent counter."""

    def __init__(self) -> None:
        self._counter = 0

    def choose(self, job_id: str, candidate_sites: list[str]) -> str:
        self._require(job_id, candidate_sites)
        site = sorted(candidate_sites)[self._counter % len(candidate_sites)]
        self._counter += 1
        return site


class LeastLoadedSiteSelector(SiteSelector):
    """Greedy least-assigned-jobs, weighted by per-site capacity.

    Capacity is in slots; the selector tracks its own assignments, so a
    site with twice the slots receives roughly twice the jobs.
    """

    def __init__(self, capacities: dict[str, int]) -> None:
        if any(c <= 0 for c in capacities.values()):
            raise ValueError(f"capacities must be positive: {capacities}")
        self._capacities = dict(capacities)
        self._assigned: dict[str, int] = defaultdict(int)

    def choose(self, job_id: str, candidate_sites: list[str]) -> str:
        self._require(job_id, candidate_sites)
        known = [s for s in candidate_sites if s in self._capacities]
        if not known:
            raise PlanningError(
                f"no capacity information for any candidate site of job {job_id!r}: "
                f"{candidate_sites}"
            )
        site = min(sorted(known), key=lambda s: self._assigned[s] / self._capacities[s])
        self._assigned[site] += 1
        return site


class HealthAwareSiteSelector(SiteSelector):
    """Decorator: filter candidates through the site-health ledger.

    Wraps any base policy; candidates whose circuit breaker is OPEN are
    removed *before* the base policy chooses, so a replan after an outage
    routes around the sick site without the base policy ever seeing it.
    If every candidate is blacklisted the breaker must not deadlock the
    plan: the full candidate list is used unfiltered (a HALF_OPEN probe
    is preferable to an unplannable workflow) and the fallback is
    counted.
    """

    def __init__(self, base: SiteSelector, health: SiteHealthTracker) -> None:
        self.base = base
        self.health = health

    def choose(self, job_id: str, candidate_sites: list[str]) -> str:
        self._require(job_id, candidate_sites)
        healthy = self.health.filter_available(candidate_sites)
        if healthy:
            if len(healthy) < len(candidate_sites):
                telemetry.count(
                    "resilience_sites_blacklisted_total",
                    len(candidate_sites) - len(healthy),
                )
            return self.base.choose(job_id, healthy)
        telemetry.count("resilience_blacklist_fallbacks_total")
        return self.base.choose(job_id, candidate_sites)


def make_site_selector(
    policy: str,
    seed: int = 2003,
    capacities: dict[str, int] | None = None,
) -> SiteSelector:
    """Factory keyed by :attr:`PlannerOptions.site_selection`."""
    if policy == "random":
        return RandomSiteSelector(seed)
    if policy == "round-robin":
        return RoundRobinSiteSelector()
    if policy == "least-loaded":
        if not capacities:
            raise PlanningError("least-loaded site selection requires site capacities")
        return LeastLoadedSiteSelector(capacities)
    raise PlanningError(f"unknown site-selection policy {policy!r}")
