"""The Pegasus planner: Request Manager orchestration of Figure 2.

``PegasusPlanner.plan`` runs the numbered pipeline — (2) abstract DAG to the
reduction, (3)/(4) logical-to-physical file resolution against the RLS,
(5)->(6) reduction, (7)/(8) transformation resolution against the TC,
(9)/(10) concrete DAG, (11) submit files — emitting one event per step so
the Figure 2 benchmark can assert the exact message order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro import telemetry
from repro.pegasus.concretizer import Concretizer, PfnResolver, SizeEstimator, default_pfn_resolver, _zero_size
from repro.pegasus.options import PlannerOptions
from repro.pegasus.reduction import ReductionResult, reduce_workflow
from repro.pegasus.site_selector import SiteSelector, make_site_selector
from repro.pegasus.submit import SubmitFiles, generate_submit_files
from repro.rls.rls import ReplicaLocationService
from repro.tc.catalog import TransformationCatalog
from repro.utils.events import EventLog
from repro.workflow.abstract import AbstractWorkflow
from repro.workflow.concrete import ConcreteWorkflow


@dataclass(frozen=True)
class PlanResult:
    """Everything a planning run produced."""

    abstract: AbstractWorkflow
    reduction: ReductionResult
    concrete: ConcreteWorkflow
    submit: SubmitFiles

    @property
    def reduced(self) -> AbstractWorkflow:
        return self.reduction.workflow


class PegasusPlanner:
    """Maps abstract workflows onto the Grid.

    Construct once per Grid configuration (RLS + TC + site capacities) and
    call :meth:`plan` per request; each call gets a fresh site selector so
    policies with internal state (round-robin, least-loaded) start clean.
    """

    def __init__(
        self,
        rls: ReplicaLocationService,
        tc: TransformationCatalog,
        options: PlannerOptions | None = None,
        site_capacities: dict[str, int] | None = None,
        pfn_resolver: PfnResolver = default_pfn_resolver,
        size_estimator: SizeEstimator = _zero_size,
        event_log: EventLog | None = None,
        site_selector_factory: Callable[[], SiteSelector] | None = None,
    ) -> None:
        self.rls = rls
        self.tc = tc
        self.options = options if options is not None else PlannerOptions()
        self.site_capacities = dict(site_capacities or {})
        self.pfn_resolver = pfn_resolver
        self.size_estimator = size_estimator
        self.events = event_log if event_log is not None else EventLog()
        # Overrides the named policy of PlannerOptions — the hook the MDS
        # selector plugs into ("dynamic information provided by Globus MDS").
        self.site_selector_factory = site_selector_factory

    def plan(
        self,
        workflow: AbstractWorkflow,
        requested_lfns: Iterable[str] | None = None,
    ) -> PlanResult:
        """Run the full Figure 2 pipeline on one abstract workflow."""
        emit = self.events.emit
        requested = set(requested_lfns) if requested_lfns is not None else workflow.final_products()

        with telemetry.trace_span("pegasus.plan", jobs=len(workflow)) as plan_span:
            telemetry.count("pegasus_plans_total")
            emit(0.0, "pegasus", "abstract-workflow-received", jobs=len(workflow))
            emit(0.0, "pegasus", "request-manager-dispatch", requested=sorted(requested))

            # (3)/(4): resolve the workflow's logical file universe against the RLS.
            with telemetry.trace_span("pegasus.rls_resolution") as span:
                lfns = sorted(workflow.required_inputs() | workflow.products())
                replicas = self.rls.lookup_many(lfns)
                physical = sum(len(v) for v in replicas.values())
                span.set(logical=len(lfns), physical=physical)
            emit(0.0, "pegasus", "rls-resolution", logical=len(lfns), physical=physical)

            # (5) -> (6): abstract DAG reduction.
            with telemetry.trace_span("pegasus.reduction") as span:
                if self.options.enable_reduction:
                    reduction = reduce_workflow(workflow, self.rls, requested)
                else:
                    reduction = ReductionResult(
                        workflow=workflow.copy(), pruned_jobs=(), reused_lfns=()
                    )
                span.set(
                    before=len(workflow), after=len(reduction.workflow),
                    pruned=len(reduction.pruned_jobs), reused=len(reduction.reused_lfns),
                )
            telemetry.count("pegasus_nodes_eliminated_total", len(reduction.pruned_jobs))
            telemetry.count("pegasus_lfns_reused_total", len(reduction.reused_lfns))
            emit(
                0.0, "pegasus", "dag-reduction",
                before=len(workflow), after=len(reduction.workflow),
                pruned=len(reduction.pruned_jobs), reused=len(reduction.reused_lfns),
            )

            # (7)/(8): transformation resolution against the TC.
            with telemetry.trace_span("pegasus.tc_resolution") as span:
                transformations = sorted({j.transformation for j in reduction.workflow.jobs()})
                resolved = {t: self.tc.sites_providing(t) for t in transformations}
                installations = sum(len(v) for v in resolved.values())
                span.set(transformations=len(transformations), installations=installations)
            emit(
                0.0, "pegasus", "tc-resolution",
                transformations=len(transformations), installations=installations,
            )

            # (9)/(10): concrete workflow generation.
            with telemetry.trace_span("pegasus.concretize") as span:
                if self.site_selector_factory is not None:
                    selector = self.site_selector_factory()
                else:
                    selector = make_site_selector(
                        self.options.site_selection,
                        seed=self.options.seed,
                        capacities=self.site_capacities or None,
                    )
                concretizer = Concretizer(
                    rls=self.rls,
                    tc=self.tc,
                    options=self.options,
                    site_selector=selector,
                    pfn_resolver=self.pfn_resolver,
                    size_estimator=self.size_estimator,
                )
                concrete = concretizer.concretize(
                    reduction.workflow,
                    requested_lfns=requested,
                    reused_lfns=set(reduction.reused_lfns),
                )
                span.set(**concrete.stats())
            emit(0.0, "pegasus", "concrete-workflow", **concrete.stats())

            # (11): submit files for Condor-G / DAGMan.
            with telemetry.trace_span("pegasus.submit_files") as span:
                submit = generate_submit_files(concrete)
                span.set(count=len(submit))
            emit(0.0, "pegasus", "submit-files-generated", count=len(submit))
            plan_span.set(
                concrete_nodes=len(concrete), pruned=len(reduction.pruned_jobs)
            )

        return PlanResult(abstract=workflow, reduction=reduction, concrete=concrete, submit=submit)
