"""Concrete Workflow Generator: map the reduced DAG onto Grid resources.

Responsibilities, following §3.2 and Figure 4:

* **feasibility check** — "It determines the root nodes for the abstract
  workflow and queries the RLS for the existence of the input files";
  absent inputs raise :class:`InfeasibleWorkflowError`;
* **site selection** — Transformation Catalog lookup per job, then the
  configured policy ("currently ... picks a random location");
* **replica selection** — among RLS replicas of a stage-in file, prefer a
  replica already at the execution site (no transfer needed), otherwise
  pick per policy ("Pegasus currently picks the source location at
  random");
* **transfer node insertion** — stage-in nodes "so that each component and
  its input files are at the same physical location", inter-site nodes
  between producer and consumer jobs on different sites, and stage-out of
  final products to the user-specified location U;
* **registration node insertion** — "registers the newly created data
  product in the RLS" when requested.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.errors import InfeasibleWorkflowError, PlanningError
from repro.pegasus.options import PlannerOptions
from repro.pegasus.site_selector import SiteSelector
from repro.rls.rls import Replica, ReplicaLocationService
from repro.tc.catalog import TransformationCatalog
from repro.utils.ids import sequential_namer
from repro.utils.rng import derive_rng
from repro.workflow.abstract import AbstractWorkflow
from repro.workflow.concrete import (
    ComputeNode,
    ConcreteWorkflow,
    RegistrationNode,
    TransferKind,
    TransferNode,
)

#: Maps (site, lfn) -> physical file name at that site.
PfnResolver = Callable[[str, str], str]
#: Plan-time size estimate for a logical file (bytes); 0 when unknown.
SizeEstimator = Callable[[str], int]


def default_pfn_resolver(site: str, lfn: str) -> str:
    return f"gsiftp://{site}.grid/data/{lfn}"


def _zero_size(_: str) -> int:
    return 0


class Concretizer:
    """Stateful single-workflow concretization pass."""

    def __init__(
        self,
        rls: ReplicaLocationService,
        tc: TransformationCatalog,
        options: PlannerOptions,
        site_selector: SiteSelector,
        pfn_resolver: PfnResolver = default_pfn_resolver,
        size_estimator: SizeEstimator = _zero_size,
    ) -> None:
        self.rls = rls
        self.tc = tc
        self.options = options
        self.site_selector = site_selector
        self.pfn = pfn_resolver
        self.size_of = size_estimator
        self._rng: np.random.Generator = derive_rng(options.seed, "replica-selector")
        self._next_transfer = sequential_namer("xfer")
        self._next_registration = sequential_namer("reg")

    # -- replica selection ------------------------------------------------------
    def _choose_replica(self, lfn: str, exec_site: str, replicas: list[Replica]) -> Replica | None:
        """Replica to stage from; ``None`` means a copy already sits at the
        execution site and no transfer is needed."""
        local = [r for r in replicas if r.site == exec_site]
        if local:
            return None
        if not replicas:
            raise PlanningError(f"no replica of {lfn!r} anywhere in the Grid")
        if self.options.replica_selection == "first":
            return sorted(replicas, key=lambda r: (r.site, r.pfn))[0]
        if self.options.replica_selection == "random":
            return replicas[int(self._rng.integers(0, len(replicas)))]
        raise PlanningError(f"unknown replica-selection policy {self.options.replica_selection!r}")

    # -- feasibility -----------------------------------------------------------
    def check_feasibility(self, workflow: AbstractWorkflow) -> None:
        """Every raw input of the workflow must exist somewhere in the Grid."""
        missing = sorted(lfn for lfn in workflow.required_inputs() if not self.rls.exists(lfn))
        if missing:
            raise InfeasibleWorkflowError(
                f"workflow is infeasible; {len(missing)} input file(s) not found in the RLS: "
                f"{missing[:5]}{'...' if len(missing) > 5 else ''}"
            )

    # -- main pass -----------------------------------------------------------------
    def concretize(
        self,
        workflow: AbstractWorkflow,
        requested_lfns: set[str] | None = None,
        reused_lfns: set[str] | None = None,
    ) -> ConcreteWorkflow:
        """Build the concrete workflow for a (reduced) abstract workflow.

        ``requested_lfns`` are the user-visible products (stage-out targets);
        ``reused_lfns`` are files the reduction satisfied from the RLS —
        requested ones among them still need delivery to the output site.
        """
        self.check_feasibility(workflow)
        requested = set(requested_lfns) if requested_lfns is not None else workflow.final_products()
        reused = set(reused_lfns or ())

        cw = ConcreteWorkflow()
        exec_site: dict[str, str] = {}  # job_id -> site
        compute_id: dict[str, str] = {}  # job_id -> concrete node id
        # (lfn, dest_site) -> transfer node id, for stage-in/inter-site dedup
        transfers_done: dict[tuple[str, str], str] = {}

        order = workflow.dag.topological_order()

        for job_id in order:
            job = workflow.job(job_id)
            sites = self.tc.sites_providing(job.transformation)
            site = self.site_selector.choose(job_id, sites)
            entries = self.tc.query(job.transformation, site)
            node = ComputeNode(
                node_id=f"job-{job_id}",
                job=job,
                site=site,
                executable=entries[0].path,
            )
            cw.add(node)
            exec_site[job_id] = site
            compute_id[job_id] = node.node_id

            for lfn in job.inputs:
                producer = workflow.producer_of(lfn)
                if producer is not None:
                    self._wire_intermediate(cw, transfers_done, workflow, lfn, producer, job_id, site, exec_site, compute_id)
                else:
                    self._wire_stage_in(cw, transfers_done, lfn, site, node.node_id)

        # stage-out + registration for products of executed jobs
        for job_id in order:
            job = workflow.job(job_id)
            site = exec_site[job_id]
            for lfn in job.outputs:
                self._wire_outputs(cw, job_id, lfn, site, compute_id, requested)

        # delivery of requested products that the reduction satisfied from
        # the RLS (Figure 6 step 2, when only part of the request was cached)
        if self.options.output_site is not None:
            for lfn in sorted(reused & requested):
                self._wire_reused_delivery(cw, lfn)

        cw.validate()
        return cw

    # -- wiring helpers ---------------------------------------------------------
    def _wire_intermediate(
        self,
        cw: ConcreteWorkflow,
        transfers_done: dict[tuple[str, str], str],
        workflow: AbstractWorkflow,
        lfn: str,
        producer: str,
        consumer: str,
        consumer_site: str,
        exec_site: dict[str, str],
        compute_id: dict[str, str],
    ) -> None:
        """Producer and consumer in the same workflow: direct edge or an
        inter-site transfer between their execution sites."""
        producer_site = exec_site[producer]
        if producer_site == consumer_site:
            cw.link(compute_id[producer], compute_id[consumer])
            return
        key = (lfn, consumer_site)
        if key not in transfers_done:
            node = TransferNode(
                node_id=self._next_transfer(),
                lfn=lfn,
                kind=TransferKind.INTER_SITE,
                source_site=producer_site,
                source_pfn=self.pfn(producer_site, lfn),
                dest_site=consumer_site,
                dest_pfn=self.pfn(consumer_site, lfn),
                size_bytes=self.size_of(lfn),
            )
            cw.add(node)
            cw.link(compute_id[producer], node.node_id)
            transfers_done[key] = node.node_id
        cw.link(transfers_done[key], compute_id[consumer])

    def _wire_stage_in(
        self,
        cw: ConcreteWorkflow,
        transfers_done: dict[tuple[str, str], str],
        lfn: str,
        site: str,
        consumer_node: str,
    ) -> None:
        """Raw input: stage from a chosen replica unless already local."""
        key = (lfn, site)
        if key in transfers_done:
            cw.link(transfers_done[key], consumer_node)
            return
        replicas = self.rls.lookup(lfn)
        chosen = self._choose_replica(lfn, site, replicas)
        if chosen is None:
            return  # replica already at the execution site
        node = TransferNode(
            node_id=self._next_transfer(),
            lfn=lfn,
            kind=TransferKind.STAGE_IN,
            source_site=chosen.site,
            source_pfn=chosen.pfn,
            dest_site=site,
            dest_pfn=self.pfn(site, lfn),
            size_bytes=self.size_of(lfn),
        )
        cw.add(node)
        cw.link(node.node_id, consumer_node)
        transfers_done[key] = node.node_id

    def _wire_outputs(
        self,
        cw: ConcreteWorkflow,
        job_id: str,
        lfn: str,
        site: str,
        compute_id: dict[str, str],
        requested: set[str],
    ) -> None:
        """Stage final products out to U; register everything new."""
        source_node = compute_id[job_id]
        final_site = site
        if self.options.output_site is not None and lfn in requested and site != self.options.output_site:
            out = TransferNode(
                node_id=self._next_transfer(),
                lfn=lfn,
                kind=TransferKind.STAGE_OUT,
                source_site=site,
                source_pfn=self.pfn(site, lfn),
                dest_site=self.options.output_site,
                dest_pfn=self.pfn(self.options.output_site, lfn),
                size_bytes=self.size_of(lfn),
            )
            cw.add(out)
            cw.link(source_node, out.node_id)
            source_node = out.node_id
            final_site = self.options.output_site
        if self.options.register_outputs:
            reg = RegistrationNode(
                node_id=self._next_registration(),
                lfn=lfn,
                pfn=self.pfn(final_site, lfn),
                site=final_site,
            )
            cw.add(reg)
            cw.link(source_node, reg.node_id)

    def _wire_reused_delivery(self, cw: ConcreteWorkflow, lfn: str) -> None:
        """A requested product already in the RLS: deliver it to U."""
        output_site = self.options.output_site
        assert output_site is not None
        replicas = self.rls.lookup(lfn)
        chosen = self._choose_replica(lfn, output_site, replicas)
        if chosen is None:
            return  # already at the output site: nothing to do
        cw.add(
            TransferNode(
                node_id=self._next_transfer(),
                lfn=lfn,
                kind=TransferKind.STAGE_OUT,
                source_site=chosen.site,
                source_pfn=chosen.pfn,
                dest_site=output_site,
                dest_pfn=self.pfn(output_site, lfn),
                size_bytes=self.size_of(lfn),
            )
        )
