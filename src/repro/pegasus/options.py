"""Planner configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PlannerOptions:
    """Knobs of a Pegasus planning run.

    Attributes
    ----------
    output_site:
        The "user-specified location U" of Figure 4; final products are
        staged out there.  ``None`` leaves products at their execution site.
    register_outputs:
        Add registration nodes publishing new products into the RLS
        ("if the user requested that all the data be published").
    site_selection:
        Policy name: ``"random"`` (the paper's default — "picks a random
        location to execute from among the returned locations"),
        ``"round-robin"``, or ``"least-loaded"``.
    replica_selection:
        ``"random"`` (the paper: "Pegasus currently picks the source
        location at random") or ``"first"`` (deterministic, for tests).
    enable_reduction:
        Apply the Abstract DAG Reduction against the RLS.  Disabling it is
        the ablation baseline for the §3.2 reuse claim.
    seed:
        RNG seed for the random policies.
    """

    output_site: str | None = None
    register_outputs: bool = True
    site_selection: str = "random"
    replica_selection: str = "random"
    enable_reduction: bool = True
    seed: int = 2003
