"""Horizontal job clustering: amortising per-job Grid overhead.

The campaign's galMorph jobs are "fairly light" (§2) — a few seconds of
computation behind tens of seconds of Condor-G scheduling latency.  The
Pegasus lineage answer (and a natural extension of this prototype) is
*horizontal clustering*: bundle many independent jobs bound for the same
site into one submitted unit executed sequentially by a wrapper (seqexec),
paying the scheduling overhead once per bundle.

:func:`cluster_workflow` rewrites a concrete workflow, grouping compute
nodes by (site, transformation, DAG depth) into
:class:`~repro.workflow.concrete.ClusteredComputeNode` bundles of at most
``max_cluster_size`` members.  Grouping within one depth level keeps the
rewrite trivially acyclic: members of a bundle can never depend on each
other.
"""

from __future__ import annotations

from collections import defaultdict

from repro.workflow.concrete import (
    ClusteredComputeNode,
    ComputeNode,
    ConcreteWorkflow,
)


def cluster_workflow(
    workflow: ConcreteWorkflow,
    max_cluster_size: int,
    transformations: set[str] | None = None,
) -> ConcreteWorkflow:
    """Return a new workflow with eligible compute nodes bundled.

    ``transformations`` restricts clustering to the named logical
    transformations (default: all).  Bundles never span sites or DAG depth
    levels; singleton bundles are left as plain compute nodes.
    """
    if max_cluster_size < 1:
        raise ValueError(f"cluster size must be >= 1: {max_cluster_size}")

    depth_of: dict[str, int] = {}
    for depth, level in enumerate(workflow.dag.depth_levels()):
        for node_id in level:
            depth_of[node_id] = depth

    # group eligible compute nodes
    groups: dict[tuple[str, str, int], list[str]] = defaultdict(list)
    for node_id, payload in workflow.dag.payloads():
        if not isinstance(payload, ComputeNode):
            continue
        if transformations is not None and payload.transformation not in transformations:
            continue
        groups[(payload.site, payload.transformation, depth_of[node_id])].append(node_id)

    # member node id -> its bundle's new node id
    bundle_of: dict[str, str] = {}
    bundles: dict[str, ClusteredComputeNode] = {}
    counter = 0
    for (site, transformation, _depth), node_ids in sorted(groups.items()):
        for start in range(0, len(node_ids), max_cluster_size):
            chunk = node_ids[start : start + max_cluster_size]
            if len(chunk) < 2:
                continue  # singleton: not worth a wrapper
            counter += 1
            bundle_id = f"cluster-{transformation}-{site}-{counter:03d}"
            members = tuple(workflow.dag.payload(n) for n in chunk)
            bundles[bundle_id] = ClusteredComputeNode(
                node_id=bundle_id, members=members, site=site
            )
            for node_id in chunk:
                bundle_of[node_id] = bundle_id

    # rebuild the workflow with bundles substituted
    out = ConcreteWorkflow()
    for node_id, payload in workflow.dag.payloads():
        if node_id in bundle_of:
            bundle_id = bundle_of[node_id]
            if bundle_id not in out.dag:
                out.add(bundles[bundle_id])
        else:
            out.add(payload)  # type: ignore[arg-type]

    def mapped(node_id: str) -> str:
        return bundle_of.get(node_id, node_id)

    seen_edges: set[tuple[str, str]] = set()
    for parent, child in workflow.dag.edges():
        edge = (mapped(parent), mapped(child))
        if edge[0] == edge[1] or edge in seen_edges:
            continue
        seen_edges.add(edge)
        out.link(*edge)
    out.validate()
    return out
