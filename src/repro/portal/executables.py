"""The transformation bodies: galMorph and concatVOTable, executed for real.

``galMorph`` is the per-galaxy science job of the VDL example in §3.2: it
reads one FITS cutout and writes a small text result file.  ``concatVOTable``
is the fan-in job of Figure 6 step 6 ("finally concatenate all the results
into an output VOTable"), carrying the per-galaxy *validity flag* of
§4.3.1(4) so that bad images never fail a whole cluster run.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

import numpy as np

from repro.condor.local import ExecutableRegistry
from repro.core.errors import ExecutionError
from repro.fits.io import read_fits_bytes
from repro.morphology.pipeline import GalmorphTask, MorphologyResult, galmorph, galmorph_batch
from repro.votable.model import Field, VOTable
from repro.votable.writer import write_votable
from repro.workflow.abstract import AbstractJob

#: Schema of the computed-parameters VOTable returned to the portal.
MORPHOLOGY_FIELDS = (
    Field("id", "char", ucd="meta.id"),
    Field("valid", "boolean", description="computation completed successfully"),
    Field("surface_brightness", "double", unit="mag/arcsec2", ucd="phot.mag.sb"),
    Field("concentration", "double", ucd="phys.morph"),
    Field("asymmetry", "double", ucd="phys.morph"),
    Field("petrosian_radius_arcsec", "double", unit="arcsec"),
    Field("petrosian_radius_kpc", "double", unit="kpc"),
    Field("error", "char"),
)


def result_to_text(result: MorphologyResult) -> bytes:
    """Serialise one galMorph result as the per-galaxy ``.txt`` file."""
    lines = [
        f"id {result.galaxy_id}",
        f"valid {1 if result.valid else 0}",
        f"surface_brightness {float(result.surface_brightness)!r}",
        f"concentration {float(result.concentration)!r}",
        f"asymmetry {float(result.asymmetry)!r}",
        f"petrosian_radius_arcsec {float(result.petrosian_radius_arcsec)!r}",
        f"petrosian_radius_kpc {float(result.petrosian_radius_kpc)!r}",
        f"error {result.error}",
    ]
    return ("\n".join(lines) + "\n").encode("utf-8")


def text_to_result(payload: bytes) -> MorphologyResult:
    """Parse a per-galaxy ``.txt`` file back into a result record."""
    fields: dict[str, str] = {}
    for line in payload.decode("utf-8").splitlines():
        key, _, value = line.partition(" ")
        fields[key] = value
    try:
        return MorphologyResult(
            galaxy_id=fields["id"],
            valid=fields["valid"] == "1",
            surface_brightness=float(fields["surface_brightness"]),
            concentration=float(fields["concentration"]),
            asymmetry=float(fields["asymmetry"]),
            petrosian_radius_arcsec=float(fields["petrosian_radius_arcsec"]),
            petrosian_radius_kpc=float(fields["petrosian_radius_kpc"]),
            error=fields.get("error", ""),
        )
    except KeyError as exc:
        raise ExecutionError(f"malformed galMorph result file: missing {exc}") from exc


def _galmorph_task(job: AbstractJob, inputs: dict[str, bytes]) -> GalmorphTask:
    """Decode one galMorph job + its staged input bytes into a task record."""
    if len(inputs) != 1 or len(job.outputs) != 1:
        raise ExecutionError(
            f"galMorph expects 1 input and 1 output, got {len(inputs)}/{len(job.outputs)}"
        )
    (image_bytes,) = inputs.values()
    params = job.parameters
    return GalmorphTask(
        image=read_fits_bytes(image_bytes),
        redshift=float(params["redshift"]),
        pix_scale=float(params["pixScale"]),
        zero_point=float(params.get("zeroPoint", "0")),
        ho=float(params.get("Ho", "100")),
        om=float(params.get("om", "0.3")),
        flat=params.get("flat", "1") == "1",
    )


def galmorph_executable(job: AbstractJob, inputs: dict[str, bytes]) -> dict[str, bytes]:
    """The galMorph transformation body.

    Expects exactly one FITS input and the scalar parameters of the VDL
    derivation (``redshift``, ``pixScale``, ``zeroPoint``, ``Ho``, ``om``,
    ``flat``); writes the single declared output file.
    """
    task = _galmorph_task(job, inputs)
    result = galmorph(
        task.image,
        redshift=task.redshift,
        pix_scale=task.pix_scale,
        zero_point=task.zero_point,
        ho=task.ho,
        om=task.om,
        flat=task.flat,
    )
    return {job.outputs[0]: result_to_text(result)}


def galmorph_batch_executable(
    jobs: Sequence[AbstractJob], inputs_list: Sequence[dict[str, bytes]]
) -> list[dict[str, bytes]]:
    """Whole-bundle galMorph body for clustered compute nodes.

    Decodes every member's FITS cutout up front and routes the bundle
    through :func:`repro.morphology.pipeline.galmorph_batch`, so all
    same-shape cutouts of a seqexec cluster stack into one shared-geometry
    batch (index grids, radius maps, sorted permutations, aperture masks
    built once per shape) instead of rebuilding state per member.  Output
    values hold the stacked kernels' 1e-9 parity contract against the
    per-job body (identity, validity and structure match exactly), and
    stacked chunks are bit-identical to sequential rows — the worker-pool
    fan-out is invisible in the provenance record.

    ``REPRO_GALMORPH_PROCESSES`` overrides the pool width for the bundle
    (``0``/``1`` forces the in-process stacked path — useful on nodes
    where /dev/shm is restricted); unset or invalid values defer to
    :func:`galmorph_batch`'s own default.
    """
    tasks = [_galmorph_task(job, inputs) for job, inputs in zip(jobs, inputs_list)]
    processes: int | None = None
    raw = os.environ.get("REPRO_GALMORPH_PROCESSES")
    if raw is not None:
        try:
            processes = int(raw)
        except ValueError:
            processes = None
    results = galmorph_batch(tasks, processes=processes)
    return [
        {job.outputs[0]: result_to_text(result)} for job, result in zip(jobs, results)
    ]


def concat_executable(job: AbstractJob, inputs: dict[str, bytes]) -> dict[str, bytes]:
    """The concatVOTable transformation body: results -> output VOTable."""
    if len(job.outputs) != 1:
        raise ExecutionError(f"concatVOTable expects 1 output, got {len(job.outputs)}")
    table = VOTable(MORPHOLOGY_FIELDS, name=job.parameters.get("cluster", "morphology"))
    for lfn in job.inputs:  # preserve the derivation's input order
        result = text_to_result(inputs[lfn])
        table.append(
            {
                "id": result.galaxy_id,
                "valid": result.valid,
                "surface_brightness": _none_if_nan(result.surface_brightness),
                "concentration": _none_if_nan(result.concentration),
                "asymmetry": _none_if_nan(result.asymmetry),
                "petrosian_radius_arcsec": _none_if_nan(result.petrosian_radius_arcsec),
                "petrosian_radius_kpc": _none_if_nan(result.petrosian_radius_kpc),
                "error": result.error,
            }
        )
    return {job.outputs[0]: write_votable(table).encode("utf-8")}


def _none_if_nan(value: float) -> float | None:
    return None if not np.isfinite(value) else value


def register_demo_executables(registry: ExecutableRegistry) -> None:
    """Install galMorph and concatVOTable into an executable registry.

    galMorph also gets its batch body, so clustered compute nodes amortise
    cutout geometry across the whole bundle instead of running the naive
    per-member loop.
    """
    registry.register("galMorph", galmorph_executable)
    registry.register_batch("galMorph", galmorph_batch_executable)
    registry.register("concatVOTable", concat_executable)
