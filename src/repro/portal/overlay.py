"""Figure 7 as real data products: FITS layers + a DS9/Aladin region file.

The paper loaded its results into Aladin; an astronomer reproducing that
needs three artifacts on disk, all on a common optical pixel grid:

* ``<cluster>-optical.fits`` — the wide-field optical mosaic;
* ``<cluster>-xray.fits`` — the X-ray map *reprojected onto the optical
  WCS* (red/blue overlay-ready);
* ``<cluster>-galaxies.reg`` — the catalog layer, circles coloured by
  asymmetry exactly as the Figure 7 caption describes.

:func:`build_overlay` assembles them from a finished portal session;
:func:`write_overlay` drops them into a directory.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.catalog.regions import CircleRegion, catalog_to_regions, write_region_file
from repro.fits.hdu import ImageHDU
from repro.fits.io import write_fits
from repro.fits.wcs import TanWCS
from repro.sky.cluster import ClusterModel
from repro.sky.imaging import render_field_mosaic
from repro.sky.reproject import reproject_tan
from repro.sky.xray import render_xray_map
from repro.votable.model import VOTable


@dataclass(frozen=True)
class OverlayProduct:
    """The assembled Figure 7 layers."""

    cluster: str
    optical: ImageHDU
    xray: ImageHDU  # on the optical grid
    regions: tuple[CircleRegion, ...]

    @property
    def region_text(self) -> str:
        return write_region_file(
            list(self.regions),
            comment=f"{self.cluster}: galaxy morphologies, color = asymmetry index",
        )


def build_overlay(
    merged: VOTable,
    cluster: ClusterModel,
    optical_size: int = 256,
    xray_size: int = 128,
) -> OverlayProduct:
    """Assemble the three Figure 7 layers from a merged portal catalog."""
    if not {"ra", "dec", "valid", "asymmetry"} <= set(merged.field_names()):
        raise ValueError("merged catalog lacks ra/dec/valid/asymmetry columns")
    optical = render_field_mosaic(cluster, size=optical_size)
    xray_native = render_xray_map(cluster, size=xray_size)
    target_wcs = TanWCS.from_header(optical.header)
    xray = reproject_tan(xray_native, target_wcs, optical.data.shape)
    regions = tuple(catalog_to_regions(merged))
    return OverlayProduct(cluster=cluster.name, optical=optical, xray=xray, regions=regions)


def write_overlay(product: OverlayProduct, directory: str | Path) -> dict[str, Path]:
    """Write the layers to ``directory``; returns the paths by role."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "optical": directory / f"{product.cluster}-optical.fits",
        "xray": directory / f"{product.cluster}-xray.fits",
        "regions": directory / f"{product.cluster}-galaxies.reg",
    }
    write_fits(paths["optical"], product.optical)
    write_fits(paths["xray"], product.xray)
    paths["regions"].write_text(product.region_text)
    return paths
