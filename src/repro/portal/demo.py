"""Demonstration wiring: every component of the §5 campaign in one call.

The environment matches the paper's deployment:

* three Condor pools (ISI, UWisc, Fermilab) run ``galMorph``;
* the web service's host storage (``nvo-storage``) caches images and runs
  the lightweight ``concatVOTable`` fan-in;
* the portal's site (``stsci-portal``) is the user-specified output
  location U;
* the five Table 1 data centers are served by synthetic archives over the
  eight demonstration clusters.

``seed_virtual_data_reuse=True`` pre-registers one cutout replica at the
Fermilab pool — "some other user may have already materialized part of the
entire required dataset" (§3.2) — which Pegasus's replica-aware planning
turns into one avoided stage-in during the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.adaptive import AdaptiveController

from repro.condor.pool import GridTopology
from repro.condor.simulator import SimulationOptions
from repro.core.errors import ServiceError
from repro.core.vds import VirtualDataSystem
from repro.faults.plan import FaultInjector, FaultPlan
from repro.fits.io import write_fits_bytes
from repro.pegasus.options import PlannerOptions
from repro.portal.executables import register_demo_executables
from repro.portal.portal import GalaxyMorphologyPortal
from repro.portal.service import GalaxyMorphologyService
from repro.portal.status import StatusBoard
from repro.resilience.breaker import SiteHealthTracker
from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.services.conesearch import SyntheticPhotometryCatalog, SyntheticRedshiftCatalog
from repro.services.cutout import CutoutSIAService
from repro.services.nvoregistry import (
    FailoverConeSearch,
    FailoverSIA,
    ResourceRecord,
    ResourceRegistry,
)
from repro.services.registry import DataCenterRegistry, default_registry
from repro.services.sia import OpticalImageArchive, XrayImageArchive
from repro.services.transport import CostMeter, TransportModel
from repro.sky.cluster import ClusterModel
from repro.sky.imaging import CutoutFactory
from repro.sky.registry_data import DEMONSTRATION_CLUSTERS
from repro.utils.events import EventLog

#: Nominal per-cluster X-ray tile counts; DSS serves the rest of the context
#: images (see repro.sky.registry_data for the campaign accounting).  For
#: clusters with few context images the split scales down proportionally.
ROSAT_TILES = 7
CHANDRA_TILES = 5


def _tile_split(total: int) -> tuple[int, int, int]:
    """(dss, rosat, chandra) tile counts summing exactly to ``total``."""
    chandra = min(CHANDRA_TILES, total // 4)
    rosat = min(ROSAT_TILES, max((total - chandra) // 2, 0))
    return total - rosat - chandra, rosat, chandra

GALMORPH_POOLS = ("isi", "uwisc", "fnal")
CACHE_SITE = "nvo-storage"
OUTPUT_SITE = "stsci-portal"


@dataclass
class DemoEnvironment:
    """The fully wired demonstration system."""

    clusters: tuple[ClusterModel, ...]
    registry: DataCenterRegistry
    meter: CostMeter
    transport: TransportModel
    events: EventLog
    vds: VirtualDataSystem
    optical_archive: OpticalImageArchive
    rosat_archive: XrayImageArchive
    chandra_archive: XrayImageArchive
    photometry_service: SyntheticPhotometryCatalog
    redshift_service: SyntheticRedshiftCatalog
    cutout_service: CutoutSIAService
    compute_service: GalaxyMorphologyService
    portal: GalaxyMorphologyPortal
    #: populated when the environment was built with discovery=True
    resource_registry: ResourceRegistry | None = None
    #: populated when the environment was built with a fault plan
    fault_injector: FaultInjector | None = None
    #: per-site circuit-breaker ledger (present iff resilience is enabled)
    health: SiteHealthTracker | None = None
    #: adaptive-execution layer (present iff built with adaptive=True);
    #: serves /health's ``adaptive`` block and the ``repro top`` row
    adaptive: "AdaptiveController | None" = None


def build_demo_environment(
    clusters: Sequence[ClusterModel] = DEMONSTRATION_CLUSTERS,
    execution_mode: str = "local",
    site_selection: str = "round-robin",
    failure_rate: float = 0.0,
    seed_virtual_data_reuse: bool = True,
    seed: int = 2003,
    max_workers: int = 8,
    max_retries: int = 2,
    discovery: bool = False,
    fault_plan: FaultPlan | None = None,
    retry_policy: RetryPolicy | None = None,
    archive_quorum: int | None = None,
    cutout_quorum: float = 1.0,
    adaptive: bool = False,
) -> DemoEnvironment:
    """Construct the complete demonstration environment.

    ``site_selection="round-robin"`` makes the campaign's job placement —
    and hence its transfer accounting — deterministic; pass ``"random"``
    for the paper's actual policy.

    ``discovery=True`` builds the portal the way §5 says a production NVO
    should work: every archive is *registered* in an NVO resource registry
    (with a mirror for each), the portal's services are *discovered* from
    it, and each is wrapped in a failover facade — an archive outage
    mid-session fails over to the mirror instead of failing the user.

    ``fault_plan`` switches on chaos mode: a deterministic
    :class:`~repro.faults.plan.FaultInjector` is threaded through every
    data service, the RLS and both execution engines, and the resilience
    layer (retry policies, per-site circuit breakers, health-aware site
    selection, portal quorum) is armed against it.  When ``fault_plan`` is
    ``None`` none of this machinery is constructed — the fault-free
    environment is byte-for-byte the pre-chaos one.

    ``adaptive=True`` arms the SLO-driven execution layer: predictive site
    selection, speculative straggler duplicates in both executors, and a
    shared latency estimator feeding both.  Like the chaos layer, leaving
    it off constructs none of it.
    """
    clusters = tuple(clusters)
    meter = CostMeter()
    transport = TransportModel()
    events = EventLog()

    # --- the chaos + resilience layer ------------------------------------
    injector: FaultInjector | None = None
    health: SiteHealthTracker | None = None
    if fault_plan is not None:
        injector = fault_plan.injector()
        health = SiteHealthTracker()
        if retry_policy is None:
            retry_policy = DEFAULT_RETRY_POLICY

    # --- the adaptive-execution layer -------------------------------------
    controller: "AdaptiveController | None" = None
    if adaptive:
        from repro.adaptive import AdaptiveController, SpeculationPolicy

        controller = AdaptiveController(
            speculation=SpeculationPolicy(), predictive=True, meter=meter
        )

    # --- the Grid ---------------------------------------------------------
    topology = GridTopology.default_demo(failure_rate=failure_rate)
    vds = VirtualDataSystem(
        topology=topology,
        planner_options=PlannerOptions(
            output_site=OUTPUT_SITE,
            register_outputs=True,
            site_selection=site_selection,
            replica_selection="random",
            seed=seed,
        ),
        simulation_options=SimulationOptions(seed=seed, max_retries=max_retries),
        max_workers=max_workers,
        faults=injector,
        health=health,
        gram_retry=retry_policy if injector is not None else None,
        adaptive=controller,
    )
    vds.add_storage_site(CACHE_SITE)
    vds.add_storage_site(OUTPUT_SITE)
    register_demo_executables(vds.registry)
    for pool in GALMORPH_POOLS:
        vds.tc.install("galMorph", pool, "/usr/local/vds/bin/galmorph", version="1.0")
    vds.tc.install("concatVOTable", CACHE_SITE, "/usr/local/vds/bin/concat-votable", version="1.0")

    # --- the data services --------------------------------------------------
    splits = {c.name: _tile_split(c.context_image_count) for c in clusters}
    optical = OpticalImageArchive(
        clusters,
        tiles_per_cluster={name: s[0] for name, s in splits.items()},
        meter=meter,
        transport=transport,
        faults=injector,
    )
    rosat = XrayImageArchive(
        clusters,
        survey="SYNTH-ROSAT",
        tiles_per_cluster={name: s[1] for name, s in splits.items()},
        meter=meter,
        transport=transport,
        faults=injector,
    )
    chandra = XrayImageArchive(
        clusters,
        survey="SYNTH-CHANDRA",
        tiles_per_cluster={name: s[2] for name, s in splits.items()},
        meter=meter,
        transport=transport,
        faults=injector,
    )
    photometry = SyntheticPhotometryCatalog(
        clusters, meter=meter, transport=transport, faults=injector
    )
    redshift = SyntheticRedshiftCatalog(
        clusters, meter=meter, transport=transport, faults=injector
    )
    cutouts = CutoutSIAService(clusters, meter=meter, transport=transport, faults=injector)

    resource_registry: ResourceRegistry | None = None
    portal_optical = optical
    portal_rosat = rosat
    portal_chandra = chandra
    portal_phot = photometry
    portal_spec = redshift
    if discovery:
        resource_registry = ResourceRegistry()
        # register each archive plus an independent mirror instance
        mirrors = {
            "dss": OpticalImageArchive(
                clusters, tiles_per_cluster={n: s[0] for n, s in splits.items()},
                meter=meter, transport=transport,
            ),
            "rosat": XrayImageArchive(
                clusters, survey="SYNTH-ROSAT",
                tiles_per_cluster={n: s[1] for n, s in splits.items()},
                meter=meter, transport=transport,
            ),
            "chandra": XrayImageArchive(
                clusters, survey="SYNTH-CHANDRA",
                tiles_per_cluster={n: s[2] for n, s in splits.items()},
                meter=meter, transport=transport,
            ),
            "ned": SyntheticPhotometryCatalog(clusters, meter=meter, transport=transport),
            "cnoc": SyntheticRedshiftCatalog(clusters, meter=meter, transport=transport),
        }
        entries = [
            ("dss", "sia", "optical", optical, mirrors["dss"]),
            ("rosat", "sia", "x-ray", rosat, mirrors["rosat"]),
            ("chandra", "sia", "x-ray", chandra, mirrors["chandra"]),
            ("ned", "cone-search", "optical", photometry, mirrors["ned"]),
            ("cnoc", "cone-search", "optical", redshift, mirrors["cnoc"]),
        ]
        for key, capability, waveband, primary, mirror in entries:
            resource_registry.register(
                ResourceRecord(f"ivo://nvo/{key}", key, capability, primary, waveband=waveband)
            )
            resource_registry.register(
                ResourceRecord(f"ivo://mirror/{key}", f"{key}-mirror", capability, mirror, waveband=waveband)
            )

        def discovered(key: str, capability: str):
            return [
                record
                for record in resource_registry.discover(capability=capability)
                if record.title.startswith(key)
            ]

        portal_optical = FailoverSIA(discovered("dss", "sia"))
        portal_rosat = FailoverSIA(discovered("rosat", "sia"))
        portal_chandra = FailoverSIA(discovered("chandra", "sia"))
        portal_phot = FailoverConeSearch(discovered("ned", "cone-search"))
        portal_spec = FailoverConeSearch(discovered("cnoc", "cone-search"))

    def fetch_url(url: str) -> bytes:
        for service in (cutouts, optical, rosat, chandra):
            if url.startswith(service.base_url):
                return service.fetch(url)
        raise ServiceError(f"no service handles URL {url!r}")

    # --- the compute web service + portal --------------------------------------
    compute = GalaxyMorphologyService(
        vds=vds,
        fetch_url=fetch_url,
        cache_site=CACHE_SITE,
        output_site=OUTPUT_SITE,
        execution_mode=execution_mode,
        meter=meter,
        status_board=StatusBoard(),
        event_log=events,
        retry_policy=retry_policy,
    )
    portal = GalaxyMorphologyPortal(
        clusters=list(clusters),
        optical_archive=portal_optical,
        xray_archives=[portal_rosat, portal_chandra],
        photometry_service=portal_phot,
        redshift_service=portal_spec,
        cutout_service=cutouts,
        compute_service=compute,
        meter=meter,
        event_log=events,
        retry_policy=retry_policy,
        archive_quorum=archive_quorum,
        cutout_quorum=cutout_quorum,
    )

    if seed_virtual_data_reuse:
        _seed_reuse_replica(vds, clusters)

    return DemoEnvironment(
        clusters=clusters,
        registry=default_registry(),
        meter=meter,
        transport=transport,
        events=events,
        vds=vds,
        optical_archive=optical,
        rosat_archive=rosat,
        chandra_archive=chandra,
        photometry_service=photometry,
        redshift_service=redshift,
        cutout_service=cutouts,
        compute_service=compute,
        portal=portal,
        resource_registry=resource_registry,
        fault_injector=injector,
        health=health,
        adaptive=controller,
    )


def _seed_reuse_replica(vds: VirtualDataSystem, clusters: Sequence[ClusterModel]) -> None:
    """Pre-materialise one cutout at the Fermilab pool (§3.2's reuse story).

    The richest cluster's first member is chosen; under round-robin site
    selection its galMorph job lands on ``fnal`` (first site in sorted
    order), so the planner finds the input already local and skips that
    stage-in.
    """
    richest = max(clusters, key=lambda c: c.n_galaxies)
    factory = CutoutFactory(richest)
    first = factory.members()[0]
    lfn = f"{first.galaxy_id}.fit"
    content = write_fits_bytes(factory.render_cutout(first.galaxy_id))
    site = vds.sites["fnal"]
    pfn = site.pfn_for(lfn)
    site.put(pfn, content)
    vds.rls.register(lfn, pfn, "fnal")
