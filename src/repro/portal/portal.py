"""The user portal: Figure 5's information flow as a library object.

"The portal first allows a user to select from a list of galaxy clusters
... the portal look[s] up the cluster's spherical position in an internal
catalog.  With that position, the portal searches three image archives, one
containing optical images (DSS) and two others containing x-ray images
(ROSAT, Chandra) ... The user can then request to begin analysis", which
builds the galaxy catalog from two Cone Search services, resolves cutout
references via SIA, ships the combined VOTable to the compute service,
polls, and merges the computed parameters back in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry
from repro.catalog.crossmatch import crossmatch_positions
from repro.core.errors import ServiceError
from repro.resilience.retry import RetryPolicy, retry_call
from repro.services.conesearch import ConeSearchService
from repro.services.cutout import CutoutSIAService
from repro.services.protocol import ConeSearchRequest, SIARequest
from repro.services.sia import SIAService
from repro.services.transport import CostMeter
from repro.sky.cluster import ClusterModel
from repro.portal.service import GalaxyMorphologyService
from repro.utils.events import EventLog
from repro.votable.model import Field, VOTable
from repro.votable.ops import add_column, inner_join
from repro.votable.parser import parse_votable

#: Combined-catalog schema the portal assembles for the compute service.
CATALOG_FIELDS = (
    Field("id", "char", ucd="meta.id"),
    Field("ra", "double", unit="deg", ucd="pos.eq.ra"),
    Field("dec", "double", unit="deg", ucd="pos.eq.dec"),
    Field("mag_r", "double", unit="mag"),
    Field("color_gr", "double", unit="mag"),
    Field("redshift", "double"),
    Field("velocity", "double", unit="km/s"),
)


@dataclass
class PortalSession:
    """State of one user's walk through the portal."""

    cluster: ClusterModel
    context_image_links: list[str] = field(default_factory=list)
    context_image_bytes: int = 0
    catalog: VOTable | None = None
    input_votable: VOTable | None = None
    status_url: str | None = None
    polls: int = 0
    result_table: VOTable | None = None
    merged: VOTable | None = None
    #: graceful-degradation ledger: archive name -> error text for every
    #: archive that stayed down after retries (quorum mode only)
    archive_errors: dict[str, str] = field(default_factory=dict)
    #: galaxies dropped because their cutout reference never resolved
    dropped_galaxies: list[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """Did this session lose any archive or galaxy along the way?"""
        return bool(self.archive_errors or self.dropped_galaxies)

    @property
    def n_context_images(self) -> int:
        return len(self.context_image_links)


class GalaxyMorphologyPortal:
    """The STScI portal, reproduced in-process."""

    def __init__(
        self,
        clusters: list[ClusterModel],
        optical_archive: SIAService,
        xray_archives: list[SIAService],
        photometry_service: ConeSearchService,
        redshift_service: ConeSearchService,
        cutout_service: CutoutSIAService,
        compute_service: GalaxyMorphologyService,
        meter: CostMeter | None = None,
        event_log: EventLog | None = None,
        match_tolerance_arcsec: float = 2.0,
        max_polls: int = 10_000,
        retry_policy: RetryPolicy | None = None,
        archive_quorum: int | None = None,
        cutout_quorum: float = 1.0,
    ) -> None:
        self._clusters = {c.name: c for c in clusters}  # the internal catalog
        self.optical_archive = optical_archive
        self.xray_archives = list(xray_archives)
        self.photometry_service = photometry_service
        self.redshift_service = redshift_service
        self.cutout_service = cutout_service
        self.compute_service = compute_service
        self.meter = meter
        self.events = event_log if event_log is not None else EventLog()
        self.match_tolerance_arcsec = match_tolerance_arcsec
        self.max_polls = max_polls
        #: shared retry ladder around every VO service call; ``None``
        #: preserves the seed behaviour (single attempt, no wrapper).
        self.retry_policy = retry_policy
        #: graceful degradation for the context-image search: minimum
        #: number of image archives that must answer.  ``None`` (default)
        #: keeps the seed all-or-nothing semantics; with a quorum, dead
        #: archives are annotated instead of failing the session.
        self.archive_quorum = archive_quorum
        #: fraction of catalog galaxies whose cutouts must resolve
        #: (1.0 = every galaxy, the seed behaviour).  Below the quorum the
        #: session fails; above it, unresolvable galaxies are dropped and
        #: annotated.
        self.cutout_quorum = cutout_quorum

    def _retried(self, label: str, fn):
        """Run one service call under the shared retry policy.

        Backoff delays are charged to the meter (``retry-backoff``): a
        portal that waits out an archive hiccup pays for the waiting, so
        campaign cost accounting under chaos reflects real wall cost.
        """
        if self.retry_policy is None:
            return fn()

        def on_backoff(attempt: int, delay: float, exc: BaseException) -> None:
            telemetry.count("resilience_retries_total", target="portal")
            if self.meter is not None:
                self.meter.charge("retry-backoff", delay)

        return retry_call(fn, self.retry_policy, label=label, on_backoff=on_backoff)

    # -- Figure 5, stage by stage ------------------------------------------------
    def list_clusters(self) -> list[str]:
        """The cluster pick-list ("restrict[ed] to those for which we know
        all the necessary data exist")."""
        return sorted(self._clusters)

    def select_cluster(self, name: str) -> PortalSession:
        """Look up the cluster position and search the three image archives."""
        if name not in self._clusters:
            raise ServiceError(f"unknown cluster {name!r}; choose from {self.list_clusters()}")
        cluster = self._clusters[name]
        session = PortalSession(cluster=cluster)
        self.events.emit(0.0, "portal", "cluster-selected", cluster=name)

        with telemetry.trace_span("portal.select_cluster", cluster=name) as span:
            field_size = 2.2 * cluster.tidal_radius_deg
            request = SIARequest(ra=cluster.center.ra, dec=cluster.center.dec, size=field_size)
            archives = [self.optical_archive, *self.xray_archives]
            answered = 0
            for archive in archives:
                archive_name = getattr(archive, "survey", type(archive).__name__)
                try:
                    table = self._retried(
                        f"archive-query/{archive_name}/{name}",
                        lambda a=archive: a.query(request),
                    )
                except ServiceError as exc:
                    # Graceful degradation: with a quorum configured a dead
                    # archive becomes an annotation, not a session failure.
                    if self.archive_quorum is None:
                        raise
                    session.archive_errors[archive_name] = str(exc)
                    telemetry.count("portal_archive_errors_total", archive=archive_name)
                    self.events.emit(
                        0.0, "portal", "archive-degraded",
                        cluster=name, archive=archive_name, error=str(exc),
                    )
                    continue
                answered += 1
                for row in table:
                    session.context_image_links.append(row["url"])
                    session.context_image_bytes += int(row["size_bytes"])
            if self.archive_quorum is not None and answered < self.archive_quorum:
                raise ServiceError(
                    f"archive quorum not met for {name!r}: {answered}/{len(archives)} "
                    f"archives answered, quorum is {self.archive_quorum} "
                    f"(errors: {session.archive_errors})"
                )
            span.set(images=session.n_context_images, archives_answered=answered)
        self.events.emit(
            0.0, "portal", "context-images-found",
            cluster=name, images=session.n_context_images,
        )
        return session

    def build_catalog(self, session: PortalSession) -> VOTable:
        """Cone-search both catalog services and merge by sky position."""
        cluster = session.cluster
        with telemetry.trace_span("portal.build_catalog", cluster=cluster.name) as span:
            cone = ConeSearchRequest(
                ra=cluster.center.ra, dec=cluster.center.dec, sr=1.1 * cluster.tidal_radius_deg
            )
            phot = self._retried(
                f"cone/photometry/{cluster.name}",
                lambda: self.photometry_service.search(cone),
            )
            spec = self._retried(
                f"cone/redshift/{cluster.name}",
                lambda: self.redshift_service.search(cone),
            )
            pairs = crossmatch_positions(
                phot["ra"], phot["dec"], spec["ra"], spec["dec"],
                tolerance_arcsec=self.match_tolerance_arcsec,
            )
            catalog = VOTable(CATALOG_FIELDS, name=f"{cluster.name}-catalog")
            for i_phot, i_spec in pairs:
                prow, srow = phot.row(i_phot), spec.row(i_spec)
                catalog.append(
                    {
                        "id": prow["id"],
                        "ra": prow["ra"],
                        "dec": prow["dec"],
                        "mag_r": prow["mag_r"],
                        "color_gr": prow["color_gr"],
                        "redshift": srow["redshift"],
                        "velocity": srow["velocity"],
                    }
                )
            span.set(photometry=len(phot), spectroscopy=len(spec), matched=len(catalog))
        session.catalog = catalog
        self.events.emit(
            0.0, "portal", "catalog-built",
            cluster=cluster.name, photometry=len(phot), spectroscopy=len(spec),
            matched=len(catalog),
        )
        return catalog

    def resolve_cutouts(self, session: PortalSession, batched: bool = False) -> VOTable:
        """Resolve the per-galaxy cutout references over SIA.

        ``batched=False`` (default) issues one tight SIA query per catalog
        galaxy — the §4.2 bottleneck, reproduced faithfully.  ``batched=True``
        uses the hypothetical all-at-once interface the paper wishes for
        ("This could be sped up tremendously if one could query for all
        images at once"); the transport meter records the difference.
        """
        if session.catalog is None:
            raise ServiceError("build_catalog must run before resolve_cutouts")
        with telemetry.trace_span(
            "portal.resolve_cutouts", cluster=session.cluster.name, batched=batched
        ) as span:
            requests = [
                SIARequest(ra=row["ra"], dec=row["dec"], size=0.005) for row in session.catalog
            ]
            if batched:
                tables = [self.cutout_service.query_batch(requests)] * len(requests)
            else:
                tables = [
                    self._retried(
                        f"cutout-query/{session.cluster.name}/{i}",
                        lambda r=request: self.cutout_service.query(r),
                    )
                    for i, request in enumerate(requests)
                ]
            urls: list[str] = []
            scales: list[float] = []
            resolved_rows: list[dict] = []
            for row, table in zip(session.catalog, tables):
                matches = [r for r in table if r["title"] == row["id"]]
                if not matches:
                    # Per-row quorum: below 1.0 an unresolvable galaxy is
                    # dropped and annotated instead of failing the session.
                    if self.cutout_quorum >= 1.0:
                        raise ServiceError(
                            f"cutout service returned no image for {row['id']!r}"
                        )
                    session.dropped_galaxies.append(row["id"])
                    telemetry.count("portal_dropped_galaxies_total")
                    continue
                resolved_rows.append(row)
                urls.append(matches[0]["url"])
                scales.append(matches[0]["scale"])
            total = len(session.catalog)
            if total and len(resolved_rows) / total < self.cutout_quorum:
                raise ServiceError(
                    f"cutout quorum not met for {session.cluster.name!r}: "
                    f"{len(resolved_rows)}/{total} galaxies resolved, quorum is "
                    f"{self.cutout_quorum:.0%}"
                )
            catalog = session.catalog
            if session.dropped_galaxies:
                catalog = VOTable(
                    catalog.fields, name=catalog.name, params=dict(catalog.params)
                )
                for row in resolved_rows:
                    catalog.append(row)
                session.catalog = catalog
            span.set(resolved=len(urls), dropped=len(session.dropped_galaxies))
        with_urls = add_column(session.catalog, Field("cutout_url", "char", ucd="meta.ref.url"), urls)
        session.input_votable = add_column(
            with_urls, Field("cutout_scale", "double", unit="deg/pix"), scales
        )
        self.events.emit(0.0, "portal", "cutouts-resolved", count=len(urls))
        return session.input_votable

    def submit_and_wait(
        self, session: PortalSession, resume_from: set[str] | None = None
    ) -> VOTable:
        """Ship the VOTable to the compute service, poll, fetch results.

        ``resume_from`` forwards rescue-DAG state (node ids a failed earlier
        request completed) to the compute service, which pre-marks them DONE.
        """
        if session.input_votable is None:
            raise ServiceError("resolve_cutouts must run before submit_and_wait")
        out_name = f"{session.cluster.name}-morphology.vot"
        with telemetry.trace_span(
            "portal.submit_and_wait", cluster=session.cluster.name, out=out_name
        ) as span:
            session.status_url = self.compute_service.gal_morph_compute(
                session.input_votable, out_name, session.cluster.name,
                resume_from=resume_from,
            )
            self.events.emit(0.0, "portal", "compute-submitted", out=out_name)
            message = self.compute_service.poll(session.status_url)
            session.polls = 1
            while not message.state in ("completed", "failed"):
                if session.polls >= self.max_polls:
                    raise ServiceError(f"gave up polling after {session.polls} polls")
                message = self.compute_service.poll(session.status_url)
                session.polls += 1
            span.set(polls=session.polls, state=message.state)
            if message.state == "failed" or message.result_url is None:
                raise ServiceError(f"compute service failed: {message.text}")
            payload = self.compute_service.fetch_result(message.result_url)
            session.result_table = parse_votable(payload.decode("utf-8"))
        self.events.emit(0.0, "portal", "results-received", rows=len(session.result_table))
        return session.result_table

    def merge_results(self, session: PortalSession) -> VOTable:
        """Join the computed parameters back into the galaxy catalog."""
        if session.input_votable is None or session.result_table is None:
            raise ServiceError("submit_and_wait must run before merge_results")
        with telemetry.trace_span("portal.merge_results", cluster=session.cluster.name) as span:
            session.merged = inner_join(session.input_votable, session.result_table, on="id")
            # Degradation annotations ride the output VOTable as PARAMs so a
            # consumer can tell a partial catalog from a complete one.  A
            # clean (recovered) session adds nothing — its serialisation is
            # byte-identical to a fault-free run.
            for archive_name, error in sorted(session.archive_errors.items()):
                session.merged.params[f"archive_error_{archive_name}"] = error
            if session.dropped_galaxies:
                session.merged.params["dropped_galaxies"] = ",".join(
                    sorted(session.dropped_galaxies)
                )
            span.set(rows=len(session.merged), degraded=session.degraded)
        self.events.emit(0.0, "portal", "results-merged", rows=len(session.merged))
        return session.merged

    def run_analysis(
        self, cluster_name: str, resume_from: set[str] | None = None
    ) -> PortalSession:
        """The complete Figure 5 flow for one cluster.

        With telemetry enabled the whole walk is one ``portal.run_analysis``
        trace: every stage, service call, planner step, DAG node and
        galMorph kernel below it parents back to this span.
        """
        with telemetry.trace_span("portal.run_analysis", cluster=cluster_name) as span:
            telemetry.count("portal_sessions_total")
            session = self.select_cluster(cluster_name)
            self.build_catalog(session)
            self.resolve_cutouts(session)
            self.submit_and_wait(session, resume_from=resume_from)
            self.merge_results(session)
            span.set(
                galaxies=len(session.merged) if session.merged is not None else 0,
                polls=session.polls,
            )
        return session
