"""Cluster dynamics: the science goal behind the morphology measurements.

§2: "Our goal is to investigate the dynamical state of galaxy clusters ...
The hypothesis is that recent falling of matter into the cluster, be it in
the form of single galaxies or cluster mass groupings, will show the
effects of the merging into the main cluster mass."

The portal's merged catalog carries line-of-sight velocities (from the
CNOC-like redshift service); this module derives the dynamical quantities
a cluster astronomer would compute from them:

* robust velocity dispersion (the *gapper* estimator of Beers, Flynn &
  Gebhardt 1990 — standard for the paper's 37-galaxy regime);
* the **Dressler & Shectman (1988) substructure test**: per-galaxy local
  kinematic deviations delta_i, the cumulative Delta statistic, and its
  significance calibrated by velocity shuffling — Dressler's own tool for
  "large scale events in the history of the galaxy cluster".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.catalog.crossmatch import _unit_vectors
from repro.sky.cluster import ClusterModel
from repro.utils.rng import derive_rng
from repro.votable.model import VOTable


def gapper_dispersion(velocities: np.ndarray) -> float:
    """The gapper velocity-dispersion estimator, km/s.

    ``sigma = sqrt(pi)/(n(n-1)) * sum_i i (n-i) g_i`` over the ordered
    velocity gaps ``g_i`` — unbiased and outlier-resistant for small
    samples, unlike the plain standard deviation.
    """
    v = np.sort(np.asarray(velocities, dtype=float))
    n = v.size
    if n < 2:
        raise ValueError(f"need at least two velocities, got {n}")
    gaps = np.diff(v)
    i = np.arange(1, n)
    weights = i * (n - i)
    return float(np.sqrt(np.pi) / (n * (n - 1)) * np.sum(weights * gaps))


def biweight_location(values: np.ndarray, tuning: float = 6.0) -> float:
    """Tukey's biweight estimate of the central velocity (robust mean)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("empty sample")
    median = np.median(values)
    mad = np.median(np.abs(values - median))
    if mad == 0:
        return float(median)
    u = (values - median) / (tuning * mad)
    mask = np.abs(u) < 1.0
    num = np.sum((values[mask] - median) * (1 - u[mask] ** 2) ** 2)
    den = np.sum((1 - u[mask] ** 2) ** 2)
    return float(median + num / den) if den > 0 else float(median)


@dataclass(frozen=True)
class DresslerShectmanResult:
    """Outcome of the DS substructure test."""

    delta: tuple[float, ...]  # per-galaxy deviation delta_i
    big_delta: float  # sum of delta_i
    n_galaxies: int
    n_neighbors: int
    p_value: float  # shuffle-calibrated P(Delta_shuffled >= Delta)
    n_shuffles: int

    @property
    def has_substructure(self) -> bool:
        """Conventional threshold: significant at the 5% level."""
        return self.p_value < 0.05

    def summary(self) -> str:
        verdict = "substructure detected" if self.has_substructure else "relaxed"
        return (
            f"DS test: Delta={self.big_delta:.1f} over {self.n_galaxies} galaxies "
            f"(Delta/N={self.big_delta / self.n_galaxies:.2f}), "
            f"p={self.p_value:.3f} ({self.n_shuffles} shuffles) -> {verdict}"
        )


def _ds_delta(
    ra: np.ndarray,
    dec: np.ndarray,
    velocity: np.ndarray,
    n_neighbors: int,
) -> np.ndarray:
    """Per-galaxy DS deviations for one velocity configuration."""
    n = ra.size
    v_mean = biweight_location(velocity)
    sigma = gapper_dispersion(velocity)
    if sigma <= 0:
        raise ValueError("zero global velocity dispersion")
    tree = cKDTree(_unit_vectors(ra, dec))
    # each galaxy + its n nearest neighbours
    _, idx = tree.query(_unit_vectors(ra, dec), k=n_neighbors + 1)
    local_v = velocity[idx]  # (n, k+1)
    local_mean = local_v.mean(axis=1)
    local_sigma = local_v.std(axis=1, ddof=1)
    delta_sq = ((n_neighbors + 1) / sigma**2) * (
        (local_mean - v_mean) ** 2 + (local_sigma - sigma) ** 2
    )
    return np.sqrt(delta_sq)


def dressler_shectman_test(
    ra: np.ndarray,
    dec: np.ndarray,
    velocity: np.ndarray,
    n_neighbors: int | None = None,
    n_shuffles: int = 500,
    seed: int = 2003,
) -> DresslerShectmanResult:
    """Run the DS test on positions + line-of-sight velocities.

    ``n_neighbors`` defaults to the classical sqrt(N).  Significance is
    calibrated by shuffling velocities over the fixed positions, which
    destroys position-velocity correlation while preserving both marginal
    distributions.
    """
    ra = np.asarray(ra, dtype=float)
    dec = np.asarray(dec, dtype=float)
    velocity = np.asarray(velocity, dtype=float)
    n = ra.size
    if not (n == dec.size == velocity.size):
        raise ValueError("ra, dec and velocity must have equal length")
    if n < 10:
        raise ValueError(f"DS test needs at least 10 galaxies, got {n}")
    k = n_neighbors if n_neighbors is not None else max(int(round(np.sqrt(n))), 3)
    if k >= n:
        raise ValueError(f"n_neighbors={k} must be smaller than the sample ({n})")

    delta = _ds_delta(ra, dec, velocity, k)
    big_delta = float(delta.sum())

    rng = derive_rng(seed, "ds-test")
    exceed = 0
    shuffled = velocity.copy()
    for _ in range(n_shuffles):
        rng.shuffle(shuffled)
        if float(_ds_delta(ra, dec, shuffled, k).sum()) >= big_delta:
            exceed += 1
    p_value = (exceed + 1) / (n_shuffles + 1)

    return DresslerShectmanResult(
        delta=tuple(float(d) for d in delta),
        big_delta=big_delta,
        n_galaxies=n,
        n_neighbors=k,
        p_value=float(p_value),
        n_shuffles=n_shuffles,
    )


@dataclass(frozen=True)
class DynamicalState:
    """The dynamical summary of one cluster from the merged catalog."""

    cluster: str
    n_members: int
    velocity_dispersion_kms: float
    mean_velocity_kms: float
    ds: DresslerShectmanResult

    def summary(self) -> str:
        return (
            f"Cluster {self.cluster}: N={self.n_members}, "
            f"sigma_v={self.velocity_dispersion_kms:.0f} km/s "
            f"(biweight centre {self.mean_velocity_kms:+.0f} km/s)\n  "
            + self.ds.summary()
        )


def analyze_dynamics(
    merged: VOTable,
    cluster: ClusterModel,
    n_shuffles: int = 500,
    seed: int = 2003,
) -> DynamicalState:
    """Dynamical state from a portal catalog with ra/dec/velocity columns."""
    required = {"ra", "dec", "velocity"}
    missing = required - set(merged.field_names())
    if missing:
        raise ValueError(f"catalog lacks columns {sorted(missing)}")
    rows = [r for r in merged if r["velocity"] is not None]
    ra = np.array([r["ra"] for r in rows])
    dec = np.array([r["dec"] for r in rows])
    velocity = np.array([r["velocity"] for r in rows])
    return DynamicalState(
        cluster=cluster.name,
        n_members=len(rows),
        velocity_dispersion_kms=gapper_dispersion(velocity),
        mean_velocity_kms=biweight_location(velocity),
        ds=dressler_shectman_test(ra, dec, velocity, n_shuffles=n_shuffles, seed=seed),
    )
