"""The Galaxy Morphology compute web service ("Pegasus as a Web service").

Implements the seven numbered steps of Figure 6:

1. receive (input VOTable, cluster name); mint a request id; return the
   status URL immediately (asynchronous interface, §4.3.1(2));
2. query the RLS for the output VOTable; if mapped, publish its location
   and finish — the virtual-data short circuit;
3. transform the input VOTable into a URL list (the first "stylesheet"),
   download each image into the local cache site and register it in the
   RLS (§4.3.1(3): the GridFTP-reachable image cache);
4. transform the input VOTable into Chimera VDL (the second "stylesheet"):
   the galMorph TR once, one DV per galaxy, one fan-in concat DV;
5. Chimera composes the abstract workflow for the output VOTable;
6. Pegasus reduces + concretizes and DAGMan/Condor-G executes;
7. the status page serves the final VOTable's location once the RLS holds
   its registration.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro import telemetry
from repro.core.errors import (
    MalformedResponseError,
    ReproError,
    ServiceError,
    is_transient,
)
from repro.core.vds import VirtualDataSystem
from repro.pegasus.planner import PlanResult
from repro.condor.report import ExecutionReport
from repro.resilience.retry import RetryPolicy, retry_call
from repro.services.transport import CostMeter
from repro.utils.events import EventLog
from repro.utils.ids import new_request_id
from repro.portal.status import StatusBoard, StatusMessage
from repro.votable.model import VOTable
from repro.workflow.concrete import RegistrationNode

#: Fetches image bytes for an access URL (wired to the cutout service).
UrlFetcher = Callable[[str], bytes]

#: Columns the input VOTable must carry (built by the portal).
REQUIRED_INPUT_FIELDS = ("id", "ra", "dec", "redshift", "cutout_url", "cutout_scale")


# -- the two XSLT-equivalent transforms (§4.3: "we used two stylesheets") ----
def votable_to_url_list(vot: VOTable) -> list[tuple[str, str]]:
    """Stylesheet 1: the input VOTable -> (galaxy id, image URL) pairs."""
    missing = [f for f in ("id", "cutout_url") if f not in vot.field_names()]
    if missing:
        raise ServiceError(f"input VOTable lacks fields {missing}")
    return [(row["id"], row["cutout_url"]) for row in vot]


GALMORPH_TR = """
TR galMorph( in redshift, in pixScale, in zeroPoint, in Ho, in om,
             in flat, in image, out galMorph ) { }

TR concatVOTable( in results, in cluster, out votable ) { }
"""


def votable_to_vdl(
    vot: VOTable,
    out_name: str,
    cluster_name: str,
    zero_point: float = 0.0,
    ho: float = 100.0,
    om: float = 0.3,
) -> str:
    """Stylesheet 2: the input VOTable -> VDL derivations.

    One ``galMorph`` DV per galaxy (mirroring the paper's example
    derivation, scalar cosmology parameters included) plus the fan-in
    ``concatVOTable`` DV producing the cluster's output VOTable.
    """
    chunks: list[str] = []
    result_lfns: list[str] = []
    for row in vot:
        galaxy_id = row["id"]
        image_lfn = f"{galaxy_id}.fit"
        result_lfn = f"{galaxy_id}.txt"
        result_lfns.append(result_lfn)
        chunks.append(
            f'DV dv-{galaxy_id}->galMorph( '
            f'redshift="{row["redshift"]}", '
            f'pixScale="{row["cutout_scale"]}", '
            f'zeroPoint="{zero_point}", Ho="{ho}", om="{om}", flat="1", '
            f'image=@{{in:"{image_lfn}"}}, '
            f'galMorph=@{{out:"{result_lfn}"}} );'
        )
    joined = ",".join(f'"{lfn}"' for lfn in result_lfns)
    # Keyed by the *output* name: the same cluster requested under a new
    # output VOTable name is a distinct derivation producing a distinct file.
    chunks.append(
        f'DV dv-concat-{out_name}->concatVOTable( '
        f'results=@{{in:{joined}}}, cluster="{cluster_name}", '
        f'votable=@{{out:"{out_name}"}} );'
    )
    return "\n".join(chunks) + "\n"


@dataclass
class ServiceRequestStatus:
    """Book-keeping the service retains per request (for benches/tests)."""

    request_id: str
    cluster: str
    out_name: str
    status_url: str
    short_circuited: bool = False
    images_downloaded: int = 0
    images_cached: int = 0
    bytes_downloaded: int = 0
    plan: PlanResult | None = None
    report: ExecutionReport | None = None
    #: Nodes pre-marked DONE by a rescue-DAG resume (resubmission path).
    resumed_nodes: int = 0


class GalaxyMorphologyService:
    """The asynchronous Grid compute service of §4.3."""

    def __init__(
        self,
        vds: VirtualDataSystem,
        fetch_url: UrlFetcher,
        cache_site: str = "nvo-storage",
        output_site: str | None = None,
        execution_mode: str = "local",
        meter: CostMeter | None = None,
        status_board: StatusBoard | None = None,
        event_log: EventLog | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.vds = vds
        self.fetch_url = fetch_url
        self.retry_policy = retry_policy
        self.cache_site = cache_site
        self.output_site = output_site if output_site is not None else (
            vds.planner_options.output_site or cache_site
        )
        self.execution_mode = execution_mode
        self.meter = meter
        self.status = status_board if status_board is not None else StatusBoard()
        self.events = event_log if event_log is not None else vds.events
        self.requests: dict[str, ServiceRequestStatus] = {}
        self._tr_defined = False
        self.result_base_url = "http://isi.grid/galmorph/result"
        #: Serialises catalog mutation + planning so concurrent requests
        #: (the workload manager dispatches several campaigns at once) never
        #: interleave VDC definitions or planner passes; execution itself —
        #: the long pole — still runs fully in parallel.
        self._plan_lock = threading.Lock()

    # -- public API (what the portal's two lines of C# called) ----------------
    def gal_morph_compute(
        self,
        vot: VOTable,
        out_name: str,
        cluster_name: str,
        resume_from: set[str] | None = None,
    ) -> str:
        """Accept a request; return the status URL (Figure 6 step 1).

        Processing happens before return (single-process reproduction), but
        all results flow through the status page exactly as the polling
        protocol requires.  ``resume_from`` carries rescue-DAG state from a
        failed earlier request: any of those nodes still present in the new
        plan are pre-marked DONE so only the remainder executes.
        """
        missing = [f for f in REQUIRED_INPUT_FIELDS if f not in vot.field_names()]
        if missing:
            raise ServiceError(f"input VOTable missing required fields: {missing}")
        request_id = new_request_id()
        status_url = self.status.create(request_id)
        state = ServiceRequestStatus(request_id, cluster_name, out_name, status_url)
        self.requests[request_id] = state
        self.status.post(request_id, "accepted", f"request for {cluster_name} accepted")
        self.events.emit(0.0, "service", "request-accepted", cluster=cluster_name, out=out_name)
        telemetry.count("service_requests_total", kind="galmorph-compute")
        with telemetry.trace_span(
            "service.request", cluster=cluster_name, out=out_name, galaxies=len(vot)
        ) as span:
            try:
                self._process(state, vot, resume_from=resume_from)
            except ReproError as exc:
                # Typed failure taxonomy: transient faults (timeouts, flaky
                # transports) are distinguishable from permanent ones so the
                # caller can decide whether a resubmission is worthwhile.
                category = "transient" if is_transient(exc) else "permanent"
                telemetry.count(
                    "service_request_errors_total",
                    category=category,
                    kind=type(exc).__name__,
                )
                self.status.post(
                    request_id, "failed", f"{type(exc).__name__}: {exc}"
                )
                self.events.emit(
                    0.0, "service", "request-failed",
                    error=str(exc), category=category,
                )
            except Exception as exc:  # pragma: no cover - last-resort guard
                # The boundary still never propagates: a truly unexpected
                # error becomes a failed status, flagged as such.
                telemetry.count(
                    "service_request_errors_total",
                    category="unexpected",
                    kind=type(exc).__name__,
                )
                self.status.post(request_id, "failed", f"internal error: {exc}")
                self.events.emit(
                    0.0, "service", "request-failed",
                    error=str(exc), category="unexpected",
                )
            span.set(short_circuited=state.short_circuited)
        return status_url

    def poll(self, status_url: str) -> StatusMessage:
        """GET of the status URL (the portal polls this)."""
        if self.meter is not None:
            self.meter.charge("status-poll", 0.1)
        return self.status.poll(status_url)

    def fetch_result(self, result_url: str) -> bytes:
        """Retrieve a finished output VOTable by its published URL."""
        lfn = result_url.rsplit("/", 1)[-1]
        return self.vds.retrieve(lfn)

    # -- the Figure 6 pipeline --------------------------------------------------
    def _result_url(self, out_name: str) -> str:
        return f"{self.result_base_url}/{out_name}"

    def _process(
        self,
        state: ServiceRequestStatus,
        vot: VOTable,
        resume_from: set[str] | None = None,
    ) -> None:
        request_id = state.request_id

        # (2) the virtual-data short circuit
        if self.vds.rls.exists(state.out_name):
            state.short_circuited = True
            telemetry.count("rls_short_circuits_total")
            self.events.emit(0.0, "service", "rls-short-circuit", out=state.out_name)
            self.status.post(
                request_id, "completed",
                "output VOTable already materialised; answered from the RLS",
                result_url=self._result_url(state.out_name),
            )
            return

        # (3) URL list + image cache
        self.status.post(request_id, "running", "collecting galaxy images")
        self._collect_images(state, vot)

        # (4)+(5) VDL generation, Chimera composition, Pegasus planning.
        # One request at a time may mutate the VDC / run the planner;
        # execution below happens outside the lock.
        self.status.post(request_id, "running", "planning and executing on the Grid")
        with self._plan_lock:
            self._define_vdl(state, vot)
            self.events.emit(0.0, "service", "vdl-generated", cluster=state.cluster)
            plan = self.vds.plan([state.out_name])
        state.plan = plan

        # Rescue-DAG resume: pre-mark nodes the failed run already finished.
        # Pegasus reduction may have pruned some of them (their outputs got
        # registered before the failure), so intersect with the live DAG.
        completed = None
        if resume_from:
            completed = set(resume_from) & set(plan.concrete.dag.node_ids())
            state.resumed_nodes = len(completed)
            if completed:
                self.events.emit(
                    0.0, "service", "rescue-resume",
                    out=state.out_name, resumed=len(completed),
                )

        # (6) DAGMan execution
        report = self.vds.execute(
            plan, mode=self.execution_mode, completed=completed or None
        )
        state.report = report
        if self.execution_mode == "simulate" and report.succeeded:
            self._finalize_simulated(plan)

        # (7) completion via the RLS mapping
        if report.succeeded and self.vds.rls.exists(state.out_name):
            self.status.post(
                request_id, "completed",
                f"workflow complete: {len(report.compute_runs)} jobs, "
                f"{len(report.transfer_runs)} transfers",
                result_url=self._result_url(state.out_name),
            )
        else:
            self.status.post(
                request_id, "failed",
                f"workflow failed: {len(report.failed_nodes)} node(s) failed, "
                f"{len(report.unrunnable_nodes)} unrunnable",
            )

    def _collect_images(self, state: ServiceRequestStatus, vot: VOTable) -> None:
        """Figure 6 step 3: download + cache + register each galaxy image.

        The RLS short-circuit is *verified*: a mapped LFN whose replicas
        have all vanished (stale catalog entries) is invalidated and the
        image re-downloaded instead of poisoning the workflow's stage-in.
        """
        cache = self.vds.sites[self.cache_site]
        with telemetry.trace_span("service.collect_images", cluster=state.cluster) as span:
            for galaxy_id, url in votable_to_url_list(vot):
                image_lfn = f"{galaxy_id}.fit"
                if self.vds.rls.exists(image_lfn) and self._verify_cached(image_lfn):
                    state.images_cached += 1
                    continue  # already cached (or materialised elsewhere in the Grid)
                content = self._fetch_image(galaxy_id, url)
                pfn = cache.pfn_for(image_lfn)
                cache.put(pfn, content)
                self.vds.rls.register(image_lfn, pfn, self.cache_site)
                state.images_downloaded += 1
                state.bytes_downloaded += len(content)
            span.set(
                downloaded=state.images_downloaded,
                cached=state.images_cached,
                bytes=state.bytes_downloaded,
            )
        self.events.emit(
            0.0, "service", "images-collected",
            downloaded=state.images_downloaded, cached=state.images_cached,
        )

    def _verify_cached(self, lfn: str) -> bool:
        """True iff at least one replica of ``lfn`` is actually retrievable.

        Replicas whose bytes have vanished are stale catalog entries; they
        are invalidated (unregistered + counted) so later stage-ins never
        see them.
        """
        stale = []
        retrievable = False
        for replica in self.vds.rls.lookup(lfn):
            site = self.vds.sites.get(replica.site)
            if site is not None and site.exists(replica.pfn):
                retrievable = True
            else:
                stale.append(replica)
        for replica in stale:
            self.vds.rls.invalidate_stale(replica)
        return retrievable

    def _fetch_image(self, galaxy_id: str, url: str) -> bytes:
        """Download one image with integrity verification (+ retry if configured).

        A truncated or garbled payload raises
        :class:`~repro.core.errors.MalformedResponseError` — a *transient*
        error, so a configured retry policy re-requests it.
        """

        def attempt() -> bytes:
            content = self.fetch_url(url)
            self._verify_fits(galaxy_id, content)
            return content

        if self.retry_policy is None:
            return attempt()

        def on_backoff(attempt_no: int, delay: float, exc: BaseException) -> None:
            telemetry.count("resilience_retries_total", target="service-fetch")
            if self.meter is not None:
                self.meter.charge("retry-backoff", delay)

        return retry_call(
            attempt,
            self.retry_policy,
            label=f"image-fetch/{galaxy_id}",
            on_backoff=on_backoff,
        )

    @staticmethod
    def _verify_fits(galaxy_id: str, content: bytes) -> None:
        """FITS integrity check: magic word + 2880-byte block alignment."""
        if not content.startswith(b"SIMPLE") or len(content) % 2880 != 0:
            raise MalformedResponseError(
                f"image for {galaxy_id!r} is not a valid FITS payload "
                f"({len(content)} bytes)"
            )

    def _define_vdl(self, state: ServiceRequestStatus, vot: VOTable) -> None:
        """Figure 6 step 4; TR text only on the first request ever."""
        with telemetry.trace_span(
            "service.vdl_generate", cluster=state.cluster, galaxies=len(vot)
        ):
            self._define_vdl_impl(state, vot)

    def _define_vdl_impl(self, state: ServiceRequestStatus, vot: VOTable) -> None:
        if not self._tr_defined:
            self.vds.define(GALMORPH_TR)
            self._tr_defined = True
        vdl_lines = votable_to_vdl(vot, state.out_name, state.cluster)
        # Skip derivations already defined by an earlier request (their
        # outputs have a producer); define only the new ones.
        fresh: list[str] = []
        for line in vdl_lines.splitlines():
            if not line.strip():
                continue
            name = line.split("->", 1)[0].removeprefix("DV ").strip()
            try:
                self.vds.vdc.derivation(name)
            except KeyError:
                fresh.append(line)
        if fresh:
            self.vds.define("\n".join(fresh))
        # Annotate the derivations with application metadata so virtual
        # data can be requested by meaning ("cluster=A1656"), not only by
        # logical file name (the GriPhyN metadata story).
        for row in vot:
            name = f'dv-{row["id"]}'
            try:
                self.vds.vdc.annotate(name, cluster=state.cluster, galaxy=row["id"], kind="morphology")
            except KeyError:
                pass  # defined by an earlier request; annotations persist
        try:
            self.vds.vdc.annotate(
                f"dv-concat-{state.out_name}", cluster=state.cluster, kind="catalog"
            )
        except KeyError:
            pass

    def _finalize_simulated(self, plan: PlanResult) -> None:
        """In simulation mode registration nodes ran only virtually; mirror
        their effect so second-request caching semantics still hold."""
        for node_id, payload in plan.concrete.dag.payloads():
            if isinstance(payload, RegistrationNode):
                site = self.vds.sites.get(payload.site)
                if site is not None and not site.exists(payload.pfn):
                    site.put_size(payload.pfn, self._simulated_size(payload.lfn))
                self.vds.rls.register(payload.lfn, payload.pfn, payload.site)

    @staticmethod
    def _simulated_size(lfn: str) -> int:
        if lfn.endswith(".fit"):
            return 20160
        if lfn.endswith(".txt"):
            return 256
        return 4096
