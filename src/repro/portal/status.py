"""The status board: the polled URL of the asynchronous web service.

§4.3: "the Pegasus web service immediately returns a URL where the status
of the computation is published ... The portal polls the returned URL until
it finds a 'job completed' status message accompanied by a URL pointing to
the location of the VOTable containing the computed results."
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro import telemetry


@dataclass(frozen=True)
class StatusMessage:
    """One line published at a status URL."""

    state: str  # "accepted" | "running" | "completed" | "failed" | ...
    text: str = ""
    result_url: str | None = None

    def as_record(self) -> dict[str, Any]:
        """Structured (JSON-ready) form of the message."""
        record: dict[str, Any] = {"state": self.state, "text": self.text}
        if self.result_url is not None:
            record["result_url"] = self.result_url
        return record


@dataclass
class StatusPage:
    """Everything published under one request's status URL."""

    request_id: str
    messages: list[StatusMessage] = field(default_factory=list)

    @property
    def latest(self) -> StatusMessage:
        return self.messages[-1]

    @property
    def completed(self) -> bool:
        return self.latest.state in ("completed", "failed")

    def as_records(self) -> list[dict[str, Any]]:
        """The page's full history as structured records (newest last)."""
        return [m.as_record() for m in self.messages]


class StatusBoard:
    """URL-addressed store of status pages (the java servlet of Fig. 6.7)."""

    def __init__(self, base_url: str = "http://isi.grid/galmorph/status") -> None:
        self.base_url = base_url
        self._pages: dict[str, StatusPage] = {}
        self._lock = threading.Lock()
        self.poll_count = 0

    def create(self, request_id: str) -> str:
        """Open a page for a new request; returns its status URL."""
        with self._lock:
            if request_id in self._pages:
                raise ValueError(f"status page for {request_id!r} already exists")
            self._pages[request_id] = StatusPage(request_id)
        return f"{self.base_url}/{request_id}"

    def post(self, request_id: str, state: str, text: str = "", result_url: str | None = None) -> None:
        with self._lock:
            if request_id not in self._pages:
                raise KeyError(f"no status page for request {request_id!r}")
            self._pages[request_id].messages.append(StatusMessage(state, text, result_url))
        telemetry.count("status_posts_total", state=state)

    def poll(self, status_url: str) -> StatusMessage:
        """What a GET of the status URL returns: the latest message."""
        request_id = status_url.rsplit("/", 1)[-1]
        with self._lock:
            self.poll_count += 1
            if request_id not in self._pages:
                raise KeyError(f"no status page at {status_url!r}")
            page = self._pages[request_id]
            if not page.messages:
                message = StatusMessage("accepted", "request received")
            else:
                message = page.latest
        telemetry.count("status_polls_total")
        return message

    def page(self, request_id: str) -> StatusPage:
        with self._lock:
            return self._pages[request_id]

    def history(self) -> dict[str, list[dict[str, Any]]]:
        """Structured history of every page (request id -> message records).

        This is the machine-readable counterpart of polling: run reports
        and tests consume it instead of re-parsing formatted status text.
        """
        with self._lock:
            return {rid: page.as_records() for rid, page in self._pages.items()}
