"""The status board: the polled URL of the asynchronous web service.

§4.3: "the Pegasus web service immediately returns a URL where the status
of the computation is published ... The portal polls the returned URL until
it finds a 'job completed' status message accompanied by a URL pointing to
the location of the VOTable containing the computed results."
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class StatusMessage:
    """One line published at a status URL."""

    state: str  # "accepted" | "running" | "completed" | "failed" | ...
    text: str = ""
    result_url: str | None = None


@dataclass
class StatusPage:
    """Everything published under one request's status URL."""

    request_id: str
    messages: list[StatusMessage] = field(default_factory=list)

    @property
    def latest(self) -> StatusMessage:
        return self.messages[-1]

    @property
    def completed(self) -> bool:
        return self.latest.state in ("completed", "failed")


class StatusBoard:
    """URL-addressed store of status pages (the java servlet of Fig. 6.7)."""

    def __init__(self, base_url: str = "http://isi.grid/galmorph/status") -> None:
        self.base_url = base_url
        self._pages: dict[str, StatusPage] = {}
        self._lock = threading.Lock()
        self.poll_count = 0

    def create(self, request_id: str) -> str:
        """Open a page for a new request; returns its status URL."""
        with self._lock:
            if request_id in self._pages:
                raise ValueError(f"status page for {request_id!r} already exists")
            self._pages[request_id] = StatusPage(request_id)
        return f"{self.base_url}/{request_id}"

    def post(self, request_id: str, state: str, text: str = "", result_url: str | None = None) -> None:
        with self._lock:
            if request_id not in self._pages:
                raise KeyError(f"no status page for request {request_id!r}")
            self._pages[request_id].messages.append(StatusMessage(state, text, result_url))

    def poll(self, status_url: str) -> StatusMessage:
        """What a GET of the status URL returns: the latest message."""
        request_id = status_url.rsplit("/", 1)[-1]
        with self._lock:
            self.poll_count += 1
            if request_id not in self._pages:
                raise KeyError(f"no status page at {status_url!r}")
            page = self._pages[request_id]
            if not page.messages:
                return StatusMessage("accepted", "request received")
            return page.latest

    def page(self, request_id: str) -> StatusPage:
        with self._lock:
            return self._pages[request_id]
