"""Science analysis: the Dressler density-morphology relation (Figure 7).

"Analysis of our results indicates that we have 'rediscovered' the
Dressler density-morphology relation which showed that elliptical galaxies
are concentrated more towards a cluster's center" (§5).  Given the merged
catalog (positions + computed morphology), this module computes the §2
science model: star-formation/morphology indicators as a function of
cluster radius and local galaxy density.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.catalog.crossmatch import local_density, radial_separation_deg
from repro.sky.cluster import ClusterModel
from repro.sky.xray import beta_model
from repro.votable.model import VOTable

#: Concentration above which we call a galaxy early-type (E/S0).  Sits
#: between the measured means of the n=1 and n=4 populations.
EARLY_TYPE_CONCENTRATION = 2.8


@dataclass(frozen=True)
class BinnedTrend:
    """A quantity binned against radius or density."""

    bin_edges: tuple[float, ...]
    bin_centers: tuple[float, ...]
    counts: tuple[int, ...]
    mean_asymmetry: tuple[float, ...]
    early_fraction: tuple[float, ...]


@dataclass(frozen=True)
class DresslerAnalysis:
    """The Figure 7 statistics for one cluster."""

    cluster: str
    n_galaxies: int
    n_valid: int
    radial: BinnedTrend
    density: BinnedTrend
    asymmetry_radius_spearman: float
    asymmetry_radius_pvalue: float
    early_density_spearman: float
    concentration_radius_spearman: float
    #: §2's third science-model axis: star-formation indicators vs the
    #: x-ray surface brightness of the hot intra-cluster gas.
    asymmetry_xray_spearman: float = float("nan")
    early_xray_spearman: float = float("nan")

    @property
    def rediscovered(self) -> bool:
        """The paper's claim, verbatim: "elliptical galaxies are
        concentrated more towards a cluster's center" — the early-type
        fraction drops from the innermost to the outermost radial bin."""
        inner, outer = self.radial.early_fraction[0], self.radial.early_fraction[-1]
        return inner > outer

    @property
    def asymmetry_trend_positive(self) -> bool:
        """The stricter star-formation signature: asymmetry rank-correlates
        positively with radius.  Noisy below ~50 valid galaxies."""
        return self.asymmetry_radius_spearman > 0

    def summary(self) -> str:
        lines = [
            f"Cluster {self.cluster}: {self.n_valid}/{self.n_galaxies} galaxies measured",
            f"  Spearman(asymmetry, radius)       = {self.asymmetry_radius_spearman:+.3f}"
            f" (p={self.asymmetry_radius_pvalue:.2e})",
            f"  Spearman(early-type, density)     = {self.early_density_spearman:+.3f}",
            f"  Spearman(concentration, radius)   = {self.concentration_radius_spearman:+.3f}",
            f"  Spearman(asymmetry, x-ray SB)     = {self.asymmetry_xray_spearman:+.3f}",
            f"  Spearman(early-type, x-ray SB)    = {self.early_xray_spearman:+.3f}",
            f"  early-type fraction inner->outer  = "
            + " -> ".join(f"{f:.2f}" for f in self.radial.early_fraction),
            f"  density-morphology relation rediscovered: {self.rediscovered}",
        ]
        return "\n".join(lines)


def _binned_trend(
    x: np.ndarray, asym: np.ndarray, early: np.ndarray, n_bins: int
) -> BinnedTrend:
    """Bin a trend on x using quantile edges (equal-count bins)."""
    qs = np.linspace(0.0, 1.0, n_bins + 1)
    edges = np.quantile(x, qs)
    edges[-1] += 1e-12  # include the max point in the last bin
    centers, counts, means, fractions = [], [], [], []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (x >= lo) & (x < hi)
        n = int(mask.sum())
        centers.append(float(0.5 * (lo + hi)))
        counts.append(n)
        means.append(float(asym[mask].mean()) if n else float("nan"))
        fractions.append(float(early[mask].mean()) if n else float("nan"))
    return BinnedTrend(
        bin_edges=tuple(float(e) for e in edges),
        bin_centers=tuple(centers),
        counts=tuple(counts),
        mean_asymmetry=tuple(means),
        early_fraction=tuple(fractions),
    )


def analyze_morphology_catalog(
    merged: VOTable,
    cluster: ClusterModel,
    n_bins: int = 4,
    density_neighbors: int = 10,
) -> DresslerAnalysis:
    """Compute the density-morphology statistics from a merged catalog.

    ``merged`` must carry ``ra``, ``dec``, ``valid``, ``asymmetry`` and
    ``concentration`` columns (the portal's :meth:`merge_results` output).
    Invalid rows (failed computations, §4.3.1(4)) are excluded from the
    statistics but counted.
    """
    rows = [r for r in merged]
    n_total = len(rows)
    valid_rows = [
        r
        for r in rows
        if r["valid"] and r["asymmetry"] is not None and r["concentration"] is not None
    ]
    if len(valid_rows) < max(2 * n_bins, 8):
        raise ValueError(
            f"too few valid measurements ({len(valid_rows)}) for a {n_bins}-bin analysis"
        )
    ra = np.array([r["ra"] for r in valid_rows])
    dec = np.array([r["dec"] for r in valid_rows])
    asym = np.array([r["asymmetry"] for r in valid_rows])
    conc = np.array([r["concentration"] for r in valid_rows])

    radius = radial_separation_deg(cluster.center.ra, cluster.center.dec, ra, dec)
    density = local_density(ra, dec, n_neighbors=min(density_neighbors, len(valid_rows) - 1))
    early = conc > EARLY_TYPE_CONCENTRATION

    rho_ar, p_ar = stats.spearmanr(asym, radius)
    rho_ed, _ = stats.spearmanr(early.astype(float), density)
    rho_cr, _ = stats.spearmanr(conc, radius)

    # x-ray surface brightness at each galaxy position (the beta model of
    # the cluster gas, matching the synthetic ROSAT/Chandra maps)
    xray_sb = beta_model(radius, 1.0, cluster.core_radius_deg * 1.5)
    rho_ax, _ = stats.spearmanr(asym, xray_sb)
    rho_ex, _ = stats.spearmanr(early.astype(float), xray_sb)

    return DresslerAnalysis(
        cluster=cluster.name,
        n_galaxies=n_total,
        n_valid=len(valid_rows),
        radial=_binned_trend(radius, asym, early, n_bins),
        density=_binned_trend(density, asym, early, n_bins),
        asymmetry_radius_spearman=float(rho_ar),
        asymmetry_radius_pvalue=float(p_ar),
        early_density_spearman=float(rho_ed),
        concentration_radius_spearman=float(rho_cr),
        asymmetry_xray_spearman=float(rho_ax),
        early_xray_spearman=float(rho_ex),
    )
