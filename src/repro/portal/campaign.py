"""The §5 campaign driver: analyse all eight demonstration clusters.

"We used our prototype to separately analyze eight different galaxy
clusters ... there were a total of 1152 compute jobs executed.  The
computations were performed on a total of 1525 images, corresponding to
30MB of data.  Staging the data in and out of the computations involved the
transfer of 2295 files."  :func:`run_campaign` reproduces that run and
returns the same accounting, per cluster and in total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ReproError
from repro.portal.analysis import DresslerAnalysis, analyze_morphology_catalog
from repro.portal.demo import DemoEnvironment
from repro.utils.units import format_bytes


@dataclass(frozen=True)
class ClusterRunRecord:
    """The campaign accounting for one cluster."""

    cluster: str
    galaxies: int
    compute_jobs: int
    transfers: int
    stage_in: int
    inter_site: int
    stage_out: int
    images: int
    image_bytes: int
    valid_measurements: int
    jobs_per_site: dict[str, int]
    analysis: DresslerAnalysis | None
    #: DAGMan nodes that exhausted their retries for this cluster.
    failed_nodes: int = 0
    #: Nodes never launched because an ancestor failed.
    unrunnable_nodes: int = 0
    #: The error that ended the cluster's run, when it did not complete.
    error: str | None = None

    @property
    def failed(self) -> bool:
        """Did this cluster's analysis end without a usable catalog?"""
        return self.error is not None or self.failed_nodes > 0 or self.unrunnable_nodes > 0


@dataclass
class CampaignReport:
    """Aggregated §5 numbers plus per-cluster breakdowns."""

    records: list[ClusterRunRecord] = field(default_factory=list)

    @property
    def clusters(self) -> int:
        return len(self.records)

    @property
    def galaxies(self) -> int:
        return sum(r.galaxies for r in self.records)

    @property
    def compute_jobs(self) -> int:
        return sum(r.compute_jobs for r in self.records)

    @property
    def transfers(self) -> int:
        return sum(r.transfers for r in self.records)

    @property
    def images(self) -> int:
        return sum(r.images for r in self.records)

    @property
    def image_bytes(self) -> int:
        return sum(r.image_bytes for r in self.records)

    @property
    def galaxy_range(self) -> tuple[int, int]:
        counts = [r.galaxies for r in self.records]
        return (min(counts), max(counts))

    @property
    def failed_clusters(self) -> list[str]:
        return [r.cluster for r in self.records if r.failed]

    @property
    def failed_nodes(self) -> int:
        return sum(r.failed_nodes for r in self.records)

    @property
    def unrunnable_nodes(self) -> int:
        return sum(r.unrunnable_nodes for r in self.records)

    @property
    def succeeded(self) -> bool:
        """True when every cluster completed with no FAILED/UNRUNNABLE nodes."""
        return not self.failed_clusters

    def failure_summary(self) -> str:
        """One line per failed cluster: node counts + the ending error."""
        lines = []
        for record in self.records:
            if not record.failed:
                continue
            lines.append(
                f"{record.cluster}: {record.failed_nodes} failed node(s), "
                f"{record.unrunnable_nodes} unrunnable"
                + (f" — {record.error}" if record.error else "")
            )
        return "\n".join(lines)

    def pools_used(self) -> list[str]:
        pools: set[str] = set()
        for record in self.records:
            pools.update(record.jobs_per_site)
        return sorted(pools)

    def totals_table(self) -> str:
        """Text table of the §5 quantities, paper value alongside."""
        lo, hi = self.galaxy_range
        rows = [
            ("clusters analyzed", self.clusters, 8),
            ("galaxies (min)", lo, 37),
            ("galaxies (max)", hi, 561),
            ("compute jobs", self.compute_jobs, 1152),
            ("images", self.images, 1525),
            ("file transfers", self.transfers, 2295),
        ]
        lines = [f"{'quantity':<22s} {'measured':>10s} {'paper':>8s}"]
        for label, measured, paper in rows:
            lines.append(f"{label:<22s} {measured:>10d} {paper:>8d}")
        lines.append(
            f"{'image data':<22s} {format_bytes(self.image_bytes):>10s} {'30.0 MB':>8s}"
        )
        return "\n".join(lines)


def run_campaign(
    env: DemoEnvironment,
    cluster_names: list[str] | None = None,
    analyze: bool = True,
) -> CampaignReport:
    """Run the full portal flow for each cluster and collect the accounting.

    ``analyze=False`` skips the Dressler statistics (useful when the run is
    only about workflow accounting).
    """
    names = cluster_names if cluster_names is not None else [c.name for c in env.clusters]
    report = CampaignReport()
    for name in names:
        try:
            session = env.portal.run_analysis(name)
        except ReproError as exc:
            # A failed cluster must not abort the rest of the campaign; it is
            # recorded with its FAILED/UNRUNNABLE node counts so the caller
            # can exit nonzero and report the damage.
            report.records.append(_failed_record(env, name, exc))
            continue
        # The compute request this session created is the service's latest.
        request = list(env.compute_service.requests.values())[-1]
        exec_report = request.report
        assert exec_report is not None and session.merged is not None

        analysis: DresslerAnalysis | None = None
        if analyze:
            try:
                analysis = analyze_morphology_catalog(session.merged, session.cluster)
            except ValueError:
                analysis = None  # too few valid rows (tiny test clusters)

        transfer_counts = exec_report.transfer_counts
        n_valid = sum(1 for row in session.merged if row["valid"])
        cutout_bytes = request.bytes_downloaded
        # The pre-seeded reuse replica is processed but was never downloaded
        # by the service; charge its nominal size so "images processed"
        # bytes stay consistent.
        missing_downloads = len(session.merged) - request.images_downloaded - request.images_cached
        cutout_bytes += missing_downloads * env.cutout_service.estimated_size()

        report.records.append(
            ClusterRunRecord(
                cluster=name,
                galaxies=len(session.merged),
                compute_jobs=sum(1 for r in exec_report.compute_runs if r.success),
                transfers=sum(transfer_counts.values()),
                stage_in=transfer_counts.get("stage-in", 0),
                inter_site=transfer_counts.get("inter-site", 0),
                stage_out=transfer_counts.get("stage-out", 0),
                images=len(session.merged) + session.n_context_images,
                image_bytes=cutout_bytes + session.context_image_bytes,
                valid_measurements=n_valid,
                jobs_per_site=exec_report.jobs_per_site(),
                analysis=analysis,
                failed_nodes=len(exec_report.failed_nodes),
                unrunnable_nodes=len(exec_report.unrunnable_nodes),
            )
        )
    return report


def _failed_record(
    env: DemoEnvironment, name: str, exc: ReproError
) -> ClusterRunRecord:
    """Accounting for a cluster whose run ended in an error."""
    exec_report = None
    for request in reversed(list(env.compute_service.requests.values())):
        if request.cluster == name:
            exec_report = request.report
            break
    return ClusterRunRecord(
        cluster=name,
        galaxies=0,
        compute_jobs=(
            sum(1 for r in exec_report.compute_runs if r.success) if exec_report else 0
        ),
        transfers=sum(exec_report.transfer_counts.values()) if exec_report else 0,
        stage_in=0,
        inter_site=0,
        stage_out=0,
        images=0,
        image_bytes=0,
        valid_measurements=0,
        jobs_per_site=exec_report.jobs_per_site() if exec_report else {},
        analysis=None,
        failed_nodes=len(exec_report.failed_nodes) if exec_report else 0,
        unrunnable_nodes=len(exec_report.unrunnable_nodes) if exec_report else 0,
        error=str(exc),
    )
