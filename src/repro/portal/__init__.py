"""The end-to-end system: portal, compute web service, science analysis.

§4 of the paper: a portal (hosted at STScI, §4.2) orchestrates the NVO
services and hands the assembled galaxy VOTable to the "Pegasus as a Web
service" at ISI (§4.3), polls the returned status URL, and merges the
computed morphology parameters back into the catalog.  This package is that
system:

* :class:`GalaxyMorphologyService` — the asynchronous compute web service
  (Figure 6's seven steps, including the RLS short-circuit and image cache);
* :class:`GalaxyMorphologyPortal` — the portal information flow (Figure 5);
* :mod:`repro.portal.executables` — the real galMorph / concatVOTable
  transformation bodies;
* :mod:`repro.portal.analysis` — the Dressler density-morphology statistics
  behind Figure 7, and :mod:`repro.portal.visualize` for the overlay plot;
* :func:`build_demo_environment` — one call wiring every component of the
  demonstration (§5 campaign configuration).
"""

from repro.portal.analysis import DresslerAnalysis, analyze_morphology_catalog
from repro.portal.demo import DemoEnvironment, build_demo_environment
from repro.portal.dynamics import (
    DynamicalState,
    DresslerShectmanResult,
    analyze_dynamics,
    dressler_shectman_test,
    gapper_dispersion,
)
from repro.portal.executables import register_demo_executables
from repro.portal.overlay import OverlayProduct, build_overlay, write_overlay
from repro.portal.portal import GalaxyMorphologyPortal, PortalSession
from repro.portal.service import GalaxyMorphologyService, ServiceRequestStatus
from repro.portal.status import StatusBoard
from repro.portal.visualize import ascii_histogram, ascii_overlay, ascii_scatter

__all__ = [
    "DresslerAnalysis",
    "analyze_morphology_catalog",
    "DynamicalState",
    "DresslerShectmanResult",
    "analyze_dynamics",
    "dressler_shectman_test",
    "gapper_dispersion",
    "DemoEnvironment",
    "build_demo_environment",
    "register_demo_executables",
    "OverlayProduct",
    "build_overlay",
    "write_overlay",
    "GalaxyMorphologyPortal",
    "PortalSession",
    "GalaxyMorphologyService",
    "ServiceRequestStatus",
    "StatusBoard",
    "ascii_histogram",
    "ascii_overlay",
    "ascii_scatter",
]
