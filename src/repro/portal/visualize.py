"""ASCII visualisation: the Figure 7 overlay and supporting plots.

Figure 7 shows the Aladin viewer with "x-ray emission ... in blue, and the
optical mission ... in red.  The colored dots are located at the positions
of the galaxies ... the dot color represents the value of the asymmetry
index."  :func:`ascii_overlay` renders the same content in a terminal: the
beta-model X-ray surface brightness as background shading, galaxies as
characters graded by asymmetry.
"""

from __future__ import annotations

import numpy as np

from repro.sky.cluster import ClusterModel
from repro.sky.xray import beta_model
from repro.votable.model import VOTable

#: Background shades, faint -> bright X-ray emission.
_XRAY_SHADES = " .:-="
#: Galaxy markers, symmetric (elliptical) -> asymmetric (spiral).
_GALAXY_MARKS = "EeoxS"


def ascii_overlay(
    merged: VOTable,
    cluster: ClusterModel,
    width: int = 64,
    height: int = 28,
) -> str:
    """Render the Figure 7 overlay: X-ray map + asymmetry-graded galaxies.

    ``merged`` needs ``ra``/``dec``/``valid``/``asymmetry`` columns.  The
    legend explains the grading; `E` marks the most symmetric third,
    `S` the most asymmetric.
    """
    field = 2.2 * cluster.tidal_radius_deg
    # Background: beta-model X-ray brightness sampled on the character grid.
    xs = np.linspace(-field / 2, field / 2, width)
    ys = np.linspace(-field / 2, field / 2, height)
    xx, yy = np.meshgrid(xs, ys)
    r = np.hypot(xx, yy)
    brightness = beta_model(r, 1.0, cluster.core_radius_deg * 1.5)
    levels = np.clip(
        (np.log1p(brightness / brightness.min()) / np.log1p(1.0 / brightness.min()))
        * (len(_XRAY_SHADES) - 1),
        0,
        len(_XRAY_SHADES) - 1,
    ).astype(int)
    grid = [[_XRAY_SHADES[levels[j, i]] for i in range(width)] for j in range(height)]

    rows = [r for r in merged if r["valid"] and r["asymmetry"] is not None]
    if rows:
        asym = np.array([r["asymmetry"] for r in rows])
        lo, hi = float(asym.min()), float(np.percentile(asym, 95))
        span = max(hi - lo, 1e-9)
        cosd = np.cos(np.deg2rad(cluster.center.dec))
        for row, a in zip(rows, asym):
            dx = ((row["ra"] - cluster.center.ra + 180.0) % 360.0 - 180.0) * cosd
            dy = row["dec"] - cluster.center.dec
            i = int(round((dx + field / 2) / field * (width - 1)))
            j = int(round((dy + field / 2) / field * (height - 1)))
            if 0 <= i < width and 0 <= j < height:
                grade = int(np.clip((a - lo) / span * (len(_GALAXY_MARKS) - 1), 0, len(_GALAXY_MARKS) - 1))
                grid[j][i] = _GALAXY_MARKS[grade]

    lines = ["".join(line) for line in reversed(grid)]  # north up
    lines.append("")
    lines.append(
        f"cluster {cluster.name}: background = x-ray surface brightness; "
        f"marks E (symmetric) .. S (asymmetric)"
    )
    return "\n".join(lines)


def ascii_scatter(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 56,
    height: int = 18,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """A terminal scatter plot (the Mirage scatter-plot stand-in)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size == 0 or x.size != y.size:
        raise ValueError("scatter needs equal-length, non-empty arrays")
    grid = [[" " for _ in range(width)] for _ in range(height)]
    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)
    for xi, yi in zip(x, y):
        i = int((xi - x_lo) / x_span * (width - 1))
        j = int((yi - y_lo) / y_span * (height - 1))
        cell = grid[height - 1 - j][i]
        grid[height - 1 - j][i] = "*" if cell == " " else "#"
    lines = ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f"x: {xlabel} [{x_lo:.3g}, {x_hi:.3g}]   y: {ylabel} [{y_lo:.3g}, {y_hi:.3g}]")
    return "\n".join(lines)


def ascii_histogram(values: np.ndarray, bins: int = 10, width: int = 40, label: str = "") -> str:
    """A horizontal terminal histogram."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("histogram needs at least one value")
    counts, edges = np.histogram(values, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = [f"histogram{': ' + label if label else ''} (n={values.size})"]
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{lo:9.3g} - {hi:9.3g} |{bar:<{width}s}| {count}")
    return "\n".join(lines)
