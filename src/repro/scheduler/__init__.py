"""``repro.scheduler`` — the multi-tenant workload manager.

The paper's portal serves one cluster analysis at a time; the NVO vision
it argues for is a *service*: DAGMan/Condor-G executing many users'
derivations on shared pools, with Pegasus reusing already-materialised
products instead of recomputing them.  This package is that missing layer,
sitting in front of :func:`repro.portal.portal.GalaxyMorphologyPortal.run_analysis`:

* :mod:`~repro.scheduler.job` — job specs, derivation signatures, records;
* :mod:`~repro.scheduler.journal` — append-only JSONL journal with
  crash-replay (kill the service mid-queue, restart, lose nothing);
* :mod:`~repro.scheduler.policy` — admission control (per-user quotas,
  bounded queue depth) and weighted fair-share ordering;
* :mod:`~repro.scheduler.leases` — pool-slot leases with per-tenant caps
  so one user cannot starve the shared Condor pools;
* :mod:`~repro.scheduler.cache` — the RLS-backed cross-submission result
  cache keyed by derivation signature;
* :mod:`~repro.scheduler.runner` — the execution adapters (the portal flow
  as a job body, plus the stub used in scheduling tests);
* :mod:`~repro.scheduler.service` — :class:`WorkloadManager`, the
  long-lived queue + dispatcher tying it all together.

Quick start::

    from repro.portal.demo import build_demo_environment
    from repro.scheduler import WorkloadManager

    env = build_demo_environment()
    with WorkloadManager.for_environment(env) as manager:
        job = manager.submit("alice", "A3526")
        record = manager.wait(job.job_id)
        votable_bytes = manager.result_bytes(job.job_id)

Queue lifecycle, fair-share math and cache-key derivation are documented
in ``docs/scheduler.md``.
"""

from __future__ import annotations

from repro.scheduler.cache import RlsResultCache
from repro.scheduler.job import (
    JobRecord,
    JobSpec,
    JobState,
    TERMINAL_STATES,
    derivation_signature,
)
from repro.scheduler.journal import (
    JobJournal,
    JournalState,
    global_fingerprint,
    merge_states,
    replay_events,
)
from repro.scheduler.leases import Lease, SlotLeaseManager
from repro.scheduler.policy import AdmissionPolicy, FairShareScheduler
from repro.scheduler.runner import JobFailure, JobOutcome, PortalJobRunner
from repro.scheduler.service import WorkloadManager

__all__ = [
    "AdmissionPolicy",
    "FairShareScheduler",
    "JobFailure",
    "JobJournal",
    "JobOutcome",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JournalState",
    "Lease",
    "PortalJobRunner",
    "RlsResultCache",
    "SlotLeaseManager",
    "TERMINAL_STATES",
    "WorkloadManager",
    "derivation_signature",
    "global_fingerprint",
    "merge_states",
    "replay_events",
]
