"""Job model: what a tenant submits and what the manager tracks.

A *job* is one request to analyse one cluster for one user.  Jobs carry a
**derivation signature** — the content-address of the virtual data product
they would materialise (cluster + morphology options + code version) — so
the workload manager can recognise a resubmitted or overlapping analysis
and answer it from the RLS-backed result cache exactly like Pegasus prunes
already-materialised files out of an abstract workflow.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro import __version__ as CODE_VERSION


class JobState(str, enum.Enum):
    """Lifecycle of a submission."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States from which a job never leaves.
TERMINAL_STATES = frozenset(
    {JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED}
)


@dataclass(frozen=True)
class JobSpec:
    """What the tenant asked for.

    ``options`` are the analysis knobs that change the derived product
    (morphology parameters, batching, ...); anything affecting output bytes
    belongs here because it feeds the derivation signature.
    """

    user: str
    cluster: str
    options: tuple[tuple[str, Any], ...] = ()
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.user:
            raise ValueError("job spec requires a user")
        if not self.cluster:
            raise ValueError("job spec requires a cluster")

    @classmethod
    def create(
        cls,
        user: str,
        cluster: str,
        options: Mapping[str, Any] | None = None,
        priority: int = 0,
    ) -> "JobSpec":
        """Normalise ``options`` into a canonical sorted tuple."""
        items = tuple(sorted((options or {}).items()))
        return cls(user=user, cluster=cluster, options=items, priority=priority)

    def options_dict(self) -> dict[str, Any]:
        return dict(self.options)


def derivation_signature(spec: JobSpec, code_version: str = CODE_VERSION) -> str:
    """The cache key of the product ``spec`` derives.

    Two submissions collide exactly when they would materialise the same
    bytes: same cluster, same analysis options, same code version.  The
    user and priority deliberately do **not** participate — cross-tenant
    reuse is the whole point ("some other user may have already
    materialized part of the entire required dataset", §3.2).
    """
    payload = json.dumps(
        {
            "cluster": spec.cluster,
            "options": [[k, repr(v)] for k, v in spec.options],
            "version": code_version,
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
    return f"sig-{digest}"


@dataclass
class JobRecord:
    """The manager's book-keeping for one submission."""

    job_id: str
    spec: JobSpec
    signature: str
    seq: int
    submitted_at: float
    state: JobState = JobState.QUEUED
    started_at: float | None = None
    finished_at: float | None = None
    attempts: int = 0
    cache_hit: bool = False
    resumed_nodes: int = 0
    result_lfn: str = ""
    error: str = ""
    #: earliest monotonic clock value at which a requeued job may be
    #: re-dispatched (transient-failure backoff); ``None`` = immediately.
    not_before: float | None = None
    #: name of the shard whose journal owns this job (``""`` unsharded).
    #: Journaled with the submit record so placement survives crash-replay
    #: and shows up in ``repro queue``/``repro top``.
    shard: str = ""
    extra: dict[str, Any] = field(default_factory=dict)
    #: the submitting request's trace context (when the observability plane
    #: is on): dispatch re-attaches it so executor spans join the HTTP
    #: request's trace.  Process-local; never journaled.
    trace_ctx: Any = field(default=None, repr=False, compare=False)

    # -- timing -----------------------------------------------------------------
    @property
    def wait_seconds(self) -> float | None:
        """Queue wait: submission to first dispatch (never negative —
        journal-replayed timestamps may come from another process's
        monotonic clock)."""
        if self.started_at is None:
            return None
        return max(0.0, self.started_at - self.submitted_at)

    @property
    def run_seconds(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    # -- (de)serialisation (journal lines) ---------------------------------------
    def as_record(self) -> dict[str, Any]:
        record = {
            "job_id": self.job_id,
            "user": self.spec.user,
            "cluster": self.spec.cluster,
            "options": [[k, v] for k, v in self.spec.options],
            "priority": self.spec.priority,
            "signature": self.signature,
            "seq": self.seq,
            "submitted_at": self.submitted_at,
            "state": self.state.value,
            "attempts": self.attempts,
        }
        if self.shard:
            record["shard"] = self.shard
        return record

    @classmethod
    def from_record(cls, data: Mapping[str, Any]) -> "JobRecord":
        spec = JobSpec(
            user=data["user"],
            cluster=data["cluster"],
            options=tuple((k, v) for k, v in data.get("options", ())),
            priority=int(data.get("priority", 0)),
        )
        return cls(
            job_id=data["job_id"],
            spec=spec,
            signature=data["signature"],
            seq=int(data["seq"]),
            submitted_at=float(data["submitted_at"]),
            state=JobState(data.get("state", "queued")),
            attempts=int(data.get("attempts", 0)),
            shard=str(data.get("shard", "")),
        )
