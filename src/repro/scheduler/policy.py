"""Admission control and fair-share ordering.

Admission control answers "may this submission enter the queue at all?"
(global backpressure + per-tenant quota).  The fair-share scheduler answers
"whose job runs next?" — the weighted-usage policy Condor's user priorities
implement on real pools, reduced to its arithmetic core:

* every user ``u`` has a configured share weight ``w_u`` (default 1);
* the manager charges each finished job's cost (slot-seconds) to its user:
  ``usage_u += cost``, optionally decayed with a half-life so old usage
  forgives;
* a user's **normalized usage** is ``nu_u = usage_u / w_u`` and their
  **fair-share debt** is ``nu_u - min_v nu_v`` (0 for the least-served
  active user);
* dispatch picks the eligible queued job of the user with the *lowest*
  normalized usage (ties: user name), then highest priority, then FIFO.

Under saturation this interleaves tenants regardless of how bursty their
submissions are, which is what bounds every user's median wait near the
global median.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.errors import QueueFullError, QuotaExceededError
from repro.scheduler.job import JobRecord


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounds enforced at submit() time."""

    #: Global backpressure: queued (not yet running) jobs across all users.
    max_queue_depth: int = 64
    #: Per-tenant quota: queued + running jobs for one user.
    max_active_per_user: int = 16

    def admit(self, user: str, queue_depth: int, active_for_user: int) -> None:
        """Raise when the submission must be rejected."""
        if queue_depth >= self.max_queue_depth:
            raise QueueFullError(
                f"queue depth {queue_depth} at bound {self.max_queue_depth}; "
                "retry after the backlog drains"
            )
        if active_for_user >= self.max_active_per_user:
            raise QuotaExceededError(
                f"user {user!r} has {active_for_user} active job(s), "
                f"quota {self.max_active_per_user}"
            )


class FairShareScheduler:
    """Weighted fair-share pick with optional usage decay.

    Not thread-safe by itself; the workload manager calls it under its own
    lock.
    """

    def __init__(
        self,
        weights: dict[str, float] | None = None,
        half_life_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.weights = dict(weights or {})
        if any(w <= 0 for w in self.weights.values()):
            raise ValueError(f"share weights must be positive: {self.weights}")
        self.half_life_s = half_life_s
        self._clock = clock
        self._usage: dict[str, float] = {}
        self._decayed_at = clock()

    # -- usage accounting --------------------------------------------------------
    def _decay(self) -> None:
        if self.half_life_s is None:
            return
        now = self._clock()
        dt = now - self._decayed_at
        if dt <= 0:
            return
        factor = math.pow(0.5, dt / self.half_life_s)
        for user in self._usage:
            self._usage[user] *= factor
        self._decayed_at = now

    def charge(self, user: str, cost: float) -> None:
        """Account ``cost`` (slot-seconds) against ``user``."""
        if cost < 0:
            raise ValueError(f"cannot charge negative cost {cost}")
        self._decay()
        self._usage[user] = self._usage.get(user, 0.0) + cost

    def restore_usage(self, usage: dict[str, float]) -> None:
        """Seed usage from a journal replay (fair-share survives restarts)."""
        self._decay()
        for user, cost in usage.items():
            self._usage[user] = self._usage.get(user, 0.0) + cost

    def usage(self, user: str) -> float:
        self._decay()
        return self._usage.get(user, 0.0)

    def usage_snapshot(self) -> dict[str, float]:
        """Every user's decayed usage — the ledger a fleet coordinator sums
        across shards to compute *global* fair-share debts."""
        self._decay()
        return dict(self._usage)

    def normalized_usage(self, user: str) -> float:
        self._decay()
        return self._usage.get(user, 0.0) / self.weights.get(user, 1.0)

    def debts(self, users: Iterable[str]) -> dict[str, float]:
        """Fair-share debt per user: normalized usage above the floor."""
        users = list(users)
        if not users:
            return {}
        normalized = {u: self.normalized_usage(u) for u in users}
        floor = min(normalized.values())
        return {u: nu - floor for u, nu in normalized.items()}

    # -- the pick ---------------------------------------------------------------
    def pick(
        self,
        queued: Sequence[JobRecord],
        eligible: Callable[[JobRecord], bool] = lambda _: True,
    ) -> JobRecord | None:
        """The next job to dispatch, or ``None`` when nothing is eligible.

        Users are visited lowest-normalized-usage first; within a user,
        highest priority then FIFO.  A user whose jobs are all ineligible
        (signature in flight, lease unavailable) is skipped rather than
        blocking the queue — that is the no-starvation property.
        """
        self._decay()
        by_user: dict[str, list[JobRecord]] = {}
        for record in queued:
            by_user.setdefault(record.spec.user, []).append(record)
        order = sorted(by_user, key=lambda u: (self.normalized_usage(u), u))
        for user in order:
            jobs = sorted(by_user[user], key=lambda r: (-r.spec.priority, r.seq))
            for record in jobs:
                if eligible(record):
                    return record
        return None
