"""The workload manager: queued submissions, fair-share dispatch, reuse.

:class:`WorkloadManager` is the long-lived multi-tenant front door the NVO
service shape requires: ``submit(user, cluster, options)`` journals the job
and returns immediately; a dispatcher thread drains the queue with the
fair-share policy, leasing pool slots per job and running several campaigns
concurrently on a worker pool; the RLS-backed result cache turns
resubmitted or overlapping analyses into zero-compute answers; failed jobs
leave rescue-DAG state behind so a resubmission executes only the
remainder; and the whole queue replays from its JSONL journal after a
crash.

Telemetry (PR-2 registry) published per dispatch cycle / job:

* ``scheduler_queue_depth`` (gauge) — jobs waiting;
* ``scheduler_running_jobs`` (gauge) — jobs holding leases;
* ``scheduler_wait_seconds`` (histogram) — submit-to-dispatch latency;
* ``scheduler_cache_hits_total`` / ``scheduler_cache_misses_total``;
* ``scheduler_jobs_total{state=...}`` — terminal-state counts;
* ``scheduler_fair_share_debt{user=...}`` (gauge) — normalized usage above
  the least-served active tenant.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Mapping

from repro import telemetry
from repro.core.errors import SchedulerError, UnknownJobError
from repro.scheduler.cache import RlsResultCache
from repro.scheduler.job import (
    JobRecord,
    JobSpec,
    JobState,
    derivation_signature,
)
from repro.scheduler.journal import JobJournal
from repro.scheduler.leases import SlotLeaseManager
from repro.scheduler.policy import AdmissionPolicy, FairShareScheduler
from repro.scheduler.runner import JobFailure, JobOutcome, JobRunner, PortalJobRunner
from repro.adaptive.deadline import DeadlineTracker
from repro.resilience.retry import RetryPolicy
from repro.telemetry.tracing import CURRENT_SPAN


def _wall_times(record: JobRecord) -> dict[str, Any]:
    """Wall-clock event times stamped from journal lines (``None`` until the
    event happened).  ``wait_s`` is submit→dispatch from those wall times —
    computable without a journal replay, per the queue-latency dashboards."""
    submitted = record.extra.get("submitted_ts")
    started = record.extra.get("started_ts")
    finished = record.extra.get("finished_ts")
    wait = None
    if submitted is not None and started is not None:
        wait = round(max(0.0, started - submitted), 6)
    return {
        "submitted_ts": submitted,
        "started_ts": started,
        "finished_ts": finished,
        "wait_s": wait,
    }


class WorkloadManager:
    """Multi-tenant queue + fair-share dispatcher over a shared Grid."""

    def __init__(
        self,
        runner: JobRunner | None,
        *,
        total_slots: int = 48,
        slots_per_job: int = 4,
        per_user_slots: int | None = None,
        max_workers: int = 4,
        admission: AdmissionPolicy | None = None,
        scheduler: FairShareScheduler | None = None,
        cache: RlsResultCache | None = None,
        journal: JobJournal | None = None,
        clock: Callable[[], float] = time.monotonic,
        requeue_policy: RetryPolicy | None = None,
        shard: str | None = None,
        deadline_s: float | None = None,
    ) -> None:
        if slots_per_job < 1:
            raise ValueError(f"slots_per_job must be positive, got {slots_per_job}")
        self.runner = runner
        self.slots_per_job = slots_per_job
        #: shard identity when this manager is one partition of a fleet:
        #: job ids gain a ``<shard>-`` prefix (globally unique across the
        #: fleet's journals), records/gauges carry the shard label.
        self.shard = shard or ""
        #: transient-failure requeue: when set, a job whose run raised a
        #: transient :class:`JobFailure` goes back to the queue (with the
        #: policy's exponential backoff as a not-before gate and its rescue
        #: nodes banked) until ``requeue_policy.max_attempts`` is exhausted.
        self.requeue_policy = requeue_policy
        self.admission = admission if admission is not None else AdmissionPolicy()
        self.scheduler = scheduler if scheduler is not None else FairShareScheduler()
        self.cache = cache
        self.journal = journal if journal is not None else JobJournal(None)
        self.leases = SlotLeaseManager(
            total_slots,
            per_user_cap=(
                per_user_slots
                if per_user_slots is not None
                # Default anti-starvation cap: no tenant may hold more than
                # half the Grid (but always enough for one job).
                else max(slots_per_job, total_slots // 2)
            ),
        )
        #: campaign SLO: when set, the dispatcher predicts queue-drain time
        #: from completed-job durations and sheds the lowest-priority queued
        #: jobs (journaled ``deadline-shed``) once the prediction overshoots.
        self.deadline_s = deadline_s
        self._deadline: "DeadlineTracker | None" = None
        self._clock = clock
        self._max_workers = max_workers
        self._cond = threading.Condition()
        self._jobs: dict[str, JobRecord] = {}
        self._queue: list[str] = []  # job ids, submission order
        self._inflight: dict[str, str] = {}  # signature -> job id
        self._rescue: dict[str, set[str]] = {}
        self._results: dict[str, bytes] = {}
        self._seq = 0
        self._running = 0
        self._stop = False
        self._started = False
        self._dispatcher: threading.Thread | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._recover()

    # -- construction helpers ------------------------------------------------------
    @classmethod
    def for_environment(
        cls,
        env: "object",
        cache_site: str = "nvo-storage",
        **kwargs: Any,
    ) -> "WorkloadManager":
        """Wire a manager onto a :class:`~repro.portal.demo.DemoEnvironment`.

        Pool slots come from the Grid topology; the result cache lives at
        the compute service's cache site, registered in the live RLS.
        """
        vds = env.vds
        total = sum(vds.topology.capacities().values()) or 1
        kwargs.setdefault("total_slots", total)
        cache = kwargs.pop("cache", None)
        if cache is None and cache_site in vds.sites:
            cache = RlsResultCache(vds.rls, vds.sites[cache_site], cache_site)
        return cls(PortalJobRunner(env), cache=cache, **kwargs)

    def _recover(self) -> None:
        """Replay the journal: restore queue, rescue state and usage."""
        state = self.journal.replay()
        if not state.jobs:
            return
        self._seq = state.max_seq + 1
        self.scheduler.restore_usage(state.usage)
        self._rescue = {sig: set(nodes) for sig, nodes in state.rescue.items()}
        now = self._clock()
        for record in state.jobs.values():
            self._jobs[record.job_id] = record
            if record.state is JobState.QUEUED:
                # Journal timestamps come from the submitting process's
                # monotonic clock; re-stamp so this process's wait metric
                # measures time since recovery, not cross-boot garbage.
                record.submitted_at = now
                self._queue.append(record.job_id)
        self._publish_gauges_locked()

    # -- lifecycle ------------------------------------------------------------------
    def start(self) -> None:
        """Start the dispatcher (idempotent)."""
        with self._cond:
            if self._started:
                return
            if self.runner is None:
                raise SchedulerError("cannot start a manager constructed without a runner")
            self._started = True
            self._stop = False
            if self.deadline_s is not None and self._deadline is None:
                self._deadline = DeadlineTracker(self.deadline_s, self._clock())
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers, thread_name_prefix="scheduler-job"
            )
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="scheduler-dispatch", daemon=True
            )
            self._dispatcher.start()

    def stop(self, wait: bool = True) -> None:
        """Stop dispatching; running jobs finish, queued jobs stay queued."""
        with self._cond:
            if not self._started:
                return
            self._stop = True
            self._cond.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join()
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
        with self._cond:
            self._started = False
            self._dispatcher = None
            self._pool = None

    def __enter__(self) -> "WorkloadManager":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- the tenant API ---------------------------------------------------------------
    def submit(
        self,
        user: str,
        cluster: str,
        options: Mapping[str, Any] | None = None,
        priority: int = 0,
    ) -> JobRecord:
        """Queue one analysis job; returns its record immediately.

        Raises :class:`~repro.core.errors.QueueFullError` (global
        backpressure) or :class:`~repro.core.errors.QuotaExceededError`
        (per-user admission) without journaling anything.
        """
        spec = JobSpec.create(user, cluster, options, priority)
        signature = derivation_signature(spec)
        with self._cond:
            active = sum(
                1
                for r in self._jobs.values()
                if r.spec.user == user and not r.terminal
            )
            with telemetry.trace_span(
                "scheduler.admission", user=user, queue=len(self._queue)
            ):
                self.admission.admit(user, len(self._queue), active)
            # The id is minted from the journal-global sequence number (not a
            # per-process counter) so spool-then-serve across processes never
            # collides; the suffix ties it visibly to its derivation, and a
            # shard prefix keeps ids unique across a fleet's journal set.
            prefix = f"{self.shard}-" if self.shard else ""
            record = JobRecord(
                job_id=f"{prefix}job-{self._seq:06d}-{signature[4:10]}",
                spec=spec,
                signature=signature,
                seq=self._seq,
                submitted_at=self._clock(),
                shard=self.shard,
            )
            self._seq += 1
            self._jobs[record.job_id] = record
            self._queue.append(record.job_id)
            with telemetry.trace_span(
                "scheduler.journal", event="submit", job_id=record.job_id
            ):
                line = self.journal.append("submit", job=record.as_record())
            record.extra["submitted_ts"] = line["ts"]
            # Tie the queued job back to the submitting request's trace, so
            # the span the worker thread opens later joins the same trace.
            record.trace_ctx = telemetry.capture_context()
            self._publish_gauges_locked()
            self._cond.notify_all()
        telemetry.count("scheduler_submissions_total", user=user)
        return record

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; ``False`` if it already left the queue."""
        with self._cond:
            record = self._require(job_id)
            if record.state is not JobState.QUEUED:
                return False
            record.state = JobState.CANCELLED
            record.finished_at = self._clock()
            self._queue.remove(job_id)
            line = self.journal.append("cancel", job_id=job_id)
            record.extra["finished_ts"] = line["ts"]
            telemetry.count("scheduler_jobs_total", state="cancelled")
            self._publish_gauges_locked()
            self._cond.notify_all()
            return True

    def wait(self, job_id: str, timeout: float | None = None) -> JobRecord:
        """Block until the job reaches a terminal state."""
        with self._cond:
            record = self._require(job_id)
            finished = self._cond.wait_for(lambda: record.terminal, timeout=timeout)
            if not finished:
                raise SchedulerError(f"timed out after {timeout}s waiting for {job_id}")
            return record

    def drain(self, timeout: float | None = None) -> None:
        """Block until the queue is empty and nothing is running."""
        with self._cond:
            done = self._cond.wait_for(
                lambda: not self._queue and self._running == 0, timeout=timeout
            )
            if not done:
                raise SchedulerError(f"timed out after {timeout}s draining the queue")

    def result_bytes(self, job_id: str) -> bytes:
        """The merged VOTable a completed job produced."""
        with self._cond:
            record = self._require(job_id)
            if record.state is not JobState.COMPLETED:
                raise SchedulerError(
                    f"job {job_id} is {record.state.value}, not completed"
                )
            content = self._results.get(job_id)
        if content is not None:
            return content
        if self.cache is not None:
            cached = self.cache.lookup(record.signature)
            if cached is not None:
                return cached
        raise SchedulerError(f"result bytes for {job_id} are no longer materialised")

    # -- introspection -----------------------------------------------------------------
    def job(self, job_id: str) -> JobRecord:
        with self._cond:
            return self._require(job_id)

    def jobs(self) -> list[JobRecord]:
        with self._cond:
            return sorted(self._jobs.values(), key=lambda r: r.seq)

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def running_jobs(self) -> int:
        with self._cond:
            return self._running

    def rescue_state(self, signature: str) -> set[str]:
        with self._cond:
            return set(self._rescue.get(signature, ()))

    def fair_share_debts(self) -> dict[str, float]:
        with self._cond:
            users = {r.spec.user for r in self._jobs.values()}
            return self.scheduler.debts(users)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready queue state (the ``repro queue`` verb renders this)."""
        with self._cond:
            jobs = sorted(self._jobs.values(), key=lambda r: r.seq)
            users = {r.spec.user for r in self._jobs.values()}
            return {
                **({"shard": self.shard} if self.shard else {}),
                "queued": len(self._queue),
                "running": self._running,
                "slots_in_use": self.leases.in_use(),
                "slots_total": self.leases.total_slots,
                "fair_share": self.scheduler.debts(users),
                **(
                    {"deadline": self._deadline.snapshot(self._clock())}
                    if self._deadline is not None
                    else {}
                ),
                "jobs": [
                    {
                        **r.as_record(),
                        "cache_hit": r.cache_hit,
                        "wait_seconds": r.wait_seconds,
                        "run_seconds": r.run_seconds,
                        "error": r.error,
                        "speculated": bool(r.extra.get("speculated", False)),
                        "shed": bool(r.extra.get("shed", False)),
                        **_wall_times(r),
                    }
                    for r in jobs
                ],
            }

    def _require(self, job_id: str) -> JobRecord:
        if job_id not in self._jobs:
            raise UnknownJobError(f"no such job {job_id!r}")
        return self._jobs[job_id]

    # -- dispatch ---------------------------------------------------------------------
    def _eligible(self, record: JobRecord) -> bool:
        """May this queued job be dispatched right now?

        Identical in-flight derivations are held back (they will be answered
        by the cache the moment the first one lands), requeued jobs respect
        their backoff gate, and the tenant must be able to lease slots under
        their cap.
        """
        if record.signature in self._inflight:
            return False
        if record.not_before is not None and self._clock() < record.not_before:
            return False
        return self.leases.can_acquire(record.spec.user, self.slots_per_job)

    def _shed_for_deadline_locked(self) -> None:
        """Cancel lowest-priority queued work while the drain prediction
        overshoots the campaign deadline.  Caller holds the lock.

        Sheds one victim at a time and re-predicts: each cancellation
        shrinks the queue, so the loop stops at the *minimal* sacrifice
        that fits the deadline again.  Victims are picked lowest priority
        first, newest submission first among equals — the jobs whose loss
        degrades the campaign least.
        """
        tracker = self._deadline
        if tracker is None:
            return
        while self._queue:
            now = self._clock()
            if not tracker.should_shed(
                now, len(self._queue), self._running, self._max_workers
            ):
                break
            victim = min(
                (self._jobs[job_id] for job_id in self._queue),
                key=lambda r: (r.spec.priority, -r.seq),
            )
            self._queue.remove(victim.job_id)
            victim.state = JobState.CANCELLED
            victim.finished_at = now
            victim.error = (
                "deadline-shed: predicted campaign completion past "
                f"{tracker.deadline_s:.0f}s"
            )
            victim.extra["shed"] = True
            line = self.journal.append(
                "deadline-shed", job_id=victim.job_id, reason=victim.error
            )
            victim.extra["finished_ts"] = line["ts"]
            telemetry.count("scheduler_deadline_sheds_total", user=victim.spec.user)
            telemetry.count("scheduler_jobs_total", state="cancelled")
            self._publish_gauges_locked()
            self._cond.notify_all()

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                record = None
                while not self._stop:
                    self._shed_for_deadline_locked()
                    if self._queue and self._running < self._max_workers:
                        queued = [self._jobs[j] for j in self._queue]
                        record = self.scheduler.pick(queued, self._eligible)
                        if record is not None:
                            break
                    # Nothing dispatchable: wait for a submit/finish/stop.
                    self._cond.wait(timeout=0.1)
                if self._stop:
                    return
                assert record is not None
                lease = self.leases.try_acquire(record.spec.user, self.slots_per_job)
                if lease is None:  # pragma: no cover - guarded by _eligible
                    continue
                self._queue.remove(record.job_id)
                self._inflight[record.signature] = record.job_id
                self._running += 1
                record.state = JobState.RUNNING
                record.started_at = self._clock()
                record.attempts += 1
                line = self.journal.append("start", job_id=record.job_id)
                record.extra["started_ts"] = line["ts"]
                self._publish_gauges_locked()
                pool = self._pool
            wait = record.wait_seconds
            if wait is not None:
                telemetry.observe("scheduler_wait_seconds", wait, user=record.spec.user)
            assert pool is not None
            pool.submit(self._run_job, record, lease)

    # -- the job body (worker threads) ---------------------------------------------
    def _run_job(self, record: JobRecord, lease: Any) -> None:
        # Re-attach the submitting request's trace (observability plane):
        # the job span — and everything the runner opens beneath it —
        # then shares the HTTP request's trace id.
        ctx = record.trace_ctx
        token = (
            CURRENT_SPAN.set((ctx.trace_id, ctx.span_id)) if ctx is not None else None
        )
        try:
            self._run_job_traced(record, lease, record.signature)
        finally:
            if token is not None:
                CURRENT_SPAN.reset(token)

    def _run_job_traced(self, record: JobRecord, lease: Any, signature: str) -> None:
        outcome: JobOutcome | None = None
        failure: BaseException | None = None
        cache_hit = False
        with telemetry.trace_span(
            "scheduler.job",
            user=record.spec.user,
            cluster=record.spec.cluster,
            signature=signature,
            job_id=record.job_id,
        ) as span:
            try:
                cached = self.cache.lookup(signature) if self.cache is not None else None
                if cached is not None:
                    cache_hit = True
                    telemetry.count("scheduler_cache_hits_total")
                    outcome = JobOutcome(result_bytes=cached)
                else:
                    if self.cache is not None:
                        telemetry.count("scheduler_cache_misses_total")
                    resume = self.rescue_state(signature) or None
                    assert self.runner is not None
                    outcome = self.runner.run(record.spec, resume)
            except BaseException as exc:  # noqa: BLE001 - the queue must survive
                failure = exc
            span.set(cache_hit=cache_hit, status="error" if failure else "ok")
        self._finish_job(record, lease, outcome, failure, cache_hit)

    def _finish_job(
        self,
        record: JobRecord,
        lease: Any,
        outcome: JobOutcome | None,
        failure: BaseException | None,
        cache_hit: bool,
    ) -> None:
        now = self._clock()
        with self._cond:
            try:
                record.finished_at = now
                if outcome is not None:
                    record.state = JobState.COMPLETED
                    record.not_before = None
                    record.error = ""  # clear any requeued attempt's failure
                    record.cache_hit = cache_hit
                    record.resumed_nodes = outcome.resumed_nodes
                    if outcome.speculated > 0:
                        # journaled before the terminal line so a crash in
                        # between replays as the standard interrupted-RUNNING
                        # requeue (never a double run)
                        self.journal.append(
                            "speculate",
                            job_id=record.job_id,
                            nodes=outcome.speculated,
                        )
                        record.extra["speculated"] = True
                        record.extra["speculated_nodes"] = outcome.speculated
                    if self._deadline is not None and not cache_hit:
                        self._deadline.observe(record.run_seconds or 0.0)
                    self._results[record.job_id] = outcome.result_bytes
                    if self.cache is not None:
                        try:
                            if cache_hit:
                                record.result_lfn = self.cache.lfn_for(record.signature)
                            else:
                                record.result_lfn = self.cache.store(
                                    record.signature, outcome.result_bytes
                                )
                        except Exception as exc:  # noqa: BLE001 - result is safe in memory
                            record.extra["cache_store_error"] = str(exc)
                    # A completed derivation invalidates any stale rescue state.
                    if record.signature in self._rescue:
                        del self._rescue[record.signature]
                        self.journal.append(
                            "rescue", signature=record.signature, nodes=[]
                        )
                    cost = (
                        0.0 if cache_hit else (record.run_seconds or 0.0) * lease.slots
                    )
                    self.scheduler.charge(record.spec.user, cost)
                    line = self.journal.append(
                        "complete",
                        job_id=record.job_id,
                        cache_hit=cache_hit,
                        result_lfn=record.result_lfn,
                        cost=cost,
                    )
                    record.extra["finished_ts"] = line["ts"]
                    telemetry.count("scheduler_jobs_total", state="completed")
                else:
                    assert failure is not None
                    record.error = str(failure)
                    if isinstance(failure, JobFailure):
                        record.resumed_nodes = failure.resumed_nodes
                        if failure.rescue_nodes:
                            merged = self._rescue.get(record.signature, set()) | set(
                                failure.rescue_nodes
                            )
                            self._rescue[record.signature] = merged
                            self.journal.append(
                                "rescue",
                                signature=record.signature,
                                nodes=sorted(merged),
                            )
                    # Fair share is charged per attempt, requeued or not.
                    cost = (record.run_seconds or 0.0) * lease.slots
                    self.scheduler.charge(record.spec.user, cost)
                    if (
                        self.requeue_policy is not None
                        and isinstance(failure, JobFailure)
                        and failure.transient
                        and record.attempts < self.requeue_policy.max_attempts
                    ):
                        # Transient failure: back to the queue with backoff;
                        # the banked rescue nodes make the retry a resume.
                        delay = self.requeue_policy.delay_for(
                            record.attempts, label=record.job_id
                        )
                        record.state = JobState.QUEUED
                        record.started_at = None
                        record.finished_at = None
                        record.not_before = now + delay
                        self._queue.append(record.job_id)
                        self.journal.append(
                            "requeue",
                            job_id=record.job_id,
                            attempt=record.attempts,
                            delay=delay,
                        )
                        telemetry.count(
                            "scheduler_requeues_total", user=record.spec.user
                        )
                    else:
                        record.state = JobState.FAILED
                        line = self.journal.append(
                            "fail", job_id=record.job_id, error=record.error
                        )
                        record.extra["finished_ts"] = line["ts"]
                        telemetry.count("scheduler_jobs_total", state="failed")
            finally:
                # Queue accounting must survive any journaling/caching error,
                # or the dispatcher would believe the slots are still leased.
                self._inflight.pop(record.signature, None)
                self._running -= 1
                self.leases.release(lease)
                self._publish_gauges_locked()
                self._cond.notify_all()

    # -- metrics ------------------------------------------------------------------------
    def _publish_gauges_locked(self) -> None:
        """Update gauges; caller holds (or is constructing under) the lock."""
        if not telemetry.enabled():
            return
        labels = {"shard": self.shard} if self.shard else {}
        telemetry.gauge_set(
            "scheduler_queue_depth", float(len(self._queue)), **labels
        )
        telemetry.gauge_set("scheduler_running_jobs", float(self._running), **labels)
        telemetry.gauge_set(
            "scheduler_slots_in_use", float(self.leases.in_use()), **labels
        )
        users = {r.spec.user for r in self._jobs.values()}
        for user, debt in self.scheduler.debts(users).items():
            telemetry.gauge_set("scheduler_fair_share_debt", debt, user=user, **labels)
