"""Job execution adapters.

The workload manager is execution-agnostic: anything with a
``run(spec, resume_from) -> JobOutcome`` method can drive jobs.  The
production adapter is :class:`PortalJobRunner`, which walks a job through
the full Figure-5 portal flow on a shared demonstration environment and
ships back the merged VOTable bytes.  A failed Grid run raises
:class:`JobFailure` carrying the rescue-DAG node set so the manager can
journal it and a resubmission can resume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.condor.rescue import portable_completed_nodes
from repro.core.errors import ReproError, SchedulerError, is_transient
from repro.scheduler.job import JobSpec
from repro.votable.writer import write_votable


@dataclass(frozen=True)
class JobOutcome:
    """What a successful job produced."""

    result_bytes: bytes
    galaxies: int = 0
    valid_measurements: int = 0
    compute_jobs: int = 0
    resumed_nodes: int = 0
    #: speculative straggler duplicates the Grid run launched (0 when the
    #: adaptive layer is off); the manager journals a ``speculate`` line
    #: and flags the job record when nonzero.
    speculated: int = 0


class JobFailure(SchedulerError):
    """A job's Grid run failed; carries resume state for the resubmission.

    ``transient=True`` marks failures rooted in transient faults (service
    timeouts, flaky transfers, site outages a breaker will route around):
    the workload manager may automatically requeue such a job with backoff
    instead of declaring it FAILED.
    """

    def __init__(
        self,
        message: str,
        rescue_nodes: frozenset[str] = frozenset(),
        resumed_nodes: int = 0,
        transient: bool = False,
    ) -> None:
        super().__init__(message)
        self.rescue_nodes = frozenset(rescue_nodes)
        self.resumed_nodes = resumed_nodes
        self.transient = transient


class JobRunner(Protocol):
    """The execution contract the manager dispatches through."""

    def run(self, spec: JobSpec, resume_from: set[str] | None) -> JobOutcome:
        """Execute one job; raise :class:`JobFailure` on a failed Grid run."""
        ...


@dataclass
class PortalJobRunner:
    """The portal's Figure-5 walk as a job body over a shared environment.

    The environment must execute in ``"local"`` mode (real bytes; the
    simulate engine declares sizes only, so there would be no VOTable to
    fetch).  Concurrent jobs are safe: storage sites, the RLS, the status
    board and the event log are all internally locked, and the compute
    service serialises catalog mutation + planning behind its plan lock
    while Grid execution — the long pole — overlaps freely.
    """

    env: "object"  # repro.portal.demo.DemoEnvironment (kept loose for tests)
    namespaced_votable: bool = field(default=True)

    def run(self, spec: JobSpec, resume_from: set[str] | None) -> JobOutcome:
        portal = self.env.portal
        session = portal.select_cluster(spec.cluster)
        portal.build_catalog(session)
        portal.resolve_cutouts(session)
        try:
            portal.submit_and_wait(session, resume_from=resume_from)
        except ReproError as exc:
            rescue, resumed = self._rescue_state(session, resume_from)
            # A failure is worth an automatic resubmission when the root
            # cause is typed transient, or when the run banked progress a
            # resume can skip (a replan may route around the sick site).
            raise JobFailure(
                f"cluster {spec.cluster!r}: {exc}",
                rescue_nodes=rescue,
                resumed_nodes=resumed,
                transient=is_transient(exc) or bool(rescue),
            ) from exc
        portal.merge_results(session)
        assert session.merged is not None
        request = self._request_for(session)
        report = request.report if request is not None else None
        return JobOutcome(
            result_bytes=write_votable(
                session.merged, namespaced=self.namespaced_votable
            ).encode("utf-8"),
            galaxies=len(session.merged),
            valid_measurements=sum(1 for row in session.merged if row["valid"]),
            compute_jobs=(
                sum(1 for r in report.compute_runs if r.success) if report is not None else 0
            ),
            resumed_nodes=request.resumed_nodes if request is not None else 0,
            speculated=report.speculated if report is not None else 0,
        )

    # -- helpers ------------------------------------------------------------------
    def _request_for(self, session: "object"):
        """The service-side request state for this session (by status URL)."""
        if session.status_url is None:
            return None
        request_id = session.status_url.rsplit("/", 1)[-1]
        return self.env.compute_service.requests.get(request_id)

    def _rescue_state(
        self, session: "object", resume_from: set[str] | None
    ) -> tuple[frozenset[str], int]:
        """Nodes a resubmission may skip: everything this run finished plus
        everything it was itself resumed from."""
        request = self._request_for(session)
        nodes: set[str] = set(resume_from or ())
        resumed = 0
        if request is not None:
            resumed = request.resumed_nodes
            if request.report is not None:
                # Only derivation-named (compute) nodes are portable across
                # the resubmission's replan; see portable_completed_nodes.
                nodes |= portable_completed_nodes(request.report)
        return frozenset(nodes), resumed
