"""The persistent submission journal: JSONL append + crash replay.

Every queue transition is one appended line; replaying the file rebuilds
the manager's state exactly.  A service killed mid-queue restarts with:

* every submitted-but-unfinished job back in the queue, original order —
  jobs that were RUNNING at the crash are requeued (their side effects are
  recoverable through the result cache / rescue state, never through the
  journal);
* terminal jobs (completed / failed / cancelled) on record, so a replayed
  queue neither loses nor duplicates work;
* rescue-DAG state per derivation signature, so a resubmission after a
  crash still resumes instead of recomputing;
* per-user usage, so fair-share debts survive the restart.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.core.errors import SchedulerError
from repro.scheduler.job import JobRecord, JobState

#: Event vocabulary (anything else in a journal is rejected at replay).
#: ``speculate`` annotates a RUNNING job whose workflow launched straggler
#: duplicates (no state transition — a crash mid-speculation replays to the
#: same requeue as any interrupted RUNNING job); ``deadline-shed`` is a
#: terminal cancellation recording that the job was dropped to protect a
#: campaign deadline.
EVENTS = (
    "submit",
    "start",
    "complete",
    "fail",
    "cancel",
    "rescue",
    "requeue",
    "speculate",
    "deadline-shed",
)


class JobJournal:
    """Append-only JSONL journal of queue transitions.

    ``path=None`` keeps the journal in memory only — same API, no
    persistence (unit tests, ephemeral managers).
    """

    def __init__(self, path: str | os.PathLike[str] | None = None, fsync: bool = False) -> None:
        self.path = Path(path) if path is not None else None
        self.fsync = fsync
        self._memory: list[dict[str, Any]] = []
        self._lock = threading.Lock()

    def append(self, event: str, **payload: Any) -> dict[str, Any]:
        """Record one transition; returns the journaled line (dict form)."""
        if event not in EVENTS:
            raise SchedulerError(f"unknown journal event {event!r}; expected one of {EVENTS}")
        line = {"ts": time.time(), "event": event, **payload}
        encoded = json.dumps(line, sort_keys=True)
        with self._lock:
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(encoded + "\n")
                    if self.fsync:
                        fh.flush()
                        os.fsync(fh.fileno())
            else:
                self._memory.append(line)
        return line

    def events(self) -> list[dict[str, Any]]:
        """All journaled lines, oldest first.

        A half-written *final* line is tolerated and dropped: a worker
        process SIGKILLed mid-append leaves at most one truncated record at
        EOF, and crash replay must recover the prefix rather than explode.
        Corruption anywhere else in the file is still an error.
        """
        with self._lock:
            if self.path is None:
                return list(self._memory)
            if not self.path.exists():
                return []
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = [raw.strip() for raw in fh]
        lines = [raw for raw in lines if raw]
        out: list[dict[str, Any]] = []
        for i, raw in enumerate(lines):
            try:
                out.append(json.loads(raw))
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # torn tail from a killed writer: replay the prefix
                raise SchedulerError(
                    f"{self.path}: corrupt journal line {i + 1}: {raw[:80]!r}"
                ) from None
        return out

    def replay(self) -> "JournalState":
        """Rebuild manager state from the journal."""
        return replay_events(self.events())


@dataclass
class JournalState:
    """What a replay recovers."""

    #: job id -> record, in original submission order.
    jobs: dict[str, JobRecord] = field(default_factory=dict)
    #: derivation signature -> node ids a failed run completed (rescue DAG).
    rescue: dict[str, set[str]] = field(default_factory=dict)
    #: per-user accumulated usage (slot-seconds), for fair-share restore.
    usage: dict[str, float] = field(default_factory=dict)
    #: highest seq seen, so new submissions continue the ordering.
    max_seq: int = -1

    def queued_jobs(self) -> list[JobRecord]:
        """Jobs a restarted service must run: QUEUED or interrupted RUNNING,
        in submission order."""
        return [
            record
            for record in self.jobs.values()
            if record.state in (JobState.QUEUED, JobState.RUNNING)
        ]

    def fingerprint(self) -> list[tuple[int, str, str, str, str]]:
        """Order-sensitive queue identity: (seq, job id, user, cluster, state).

        Two replays of the same journal — or a live queue and its replay —
        must produce identical fingerprints; the CI concurrency smoke job
        asserts exactly this.
        """
        return [
            (r.seq, r.job_id, r.spec.user, r.spec.cluster, r.state.value)
            for r in self.jobs.values()
        ]


def replay_events(events: Iterable[dict[str, Any]]) -> JournalState:
    """Fold journal lines into a :class:`JournalState` (pure function)."""
    state = JournalState()
    for line in events:
        event = line.get("event")
        if event == "submit":
            record = JobRecord.from_record(line["job"])
            if record.job_id in state.jobs:
                raise SchedulerError(f"journal re-submits job {record.job_id!r}")
            record.state = JobState.QUEUED
            if "ts" in line:
                record.extra["submitted_ts"] = line["ts"]
            state.jobs[record.job_id] = record
            state.max_seq = max(state.max_seq, record.seq)
        elif event in (
            "start",
            "complete",
            "fail",
            "cancel",
            "requeue",
            "speculate",
            "deadline-shed",
        ):
            job_id = line["job_id"]
            record = state.jobs.get(job_id)
            if record is None:
                raise SchedulerError(f"journal {event!r} for unknown job {job_id!r}")
            if event == "speculate":
                # annotation only: the job stays RUNNING, so a crash right
                # after this line requeues it exactly once (the generic
                # interrupted-RUNNING rule below) and the fingerprint —
                # which folds (seq, id, user, cluster, state) — is
                # untouched by how many duplicates the workflow launched.
                record.extra["speculated"] = True
                record.extra["speculated_nodes"] = int(line.get("nodes", 1))
            elif event == "deadline-shed":
                record.state = JobState.CANCELLED
                record.finished_at = line.get("finished_at", line["ts"])
                record.extra["finished_ts"] = line["ts"]
                record.extra["shed"] = True
                record.error = line.get(
                    "reason", "shed to protect the campaign deadline"
                )
            elif event == "requeue":
                # Transient failure sent the job back to the queue; backoff
                # gates are process-local monotonic time and do not replay.
                record.state = JobState.QUEUED
                record.started_at = None
                record.finished_at = None
            elif event == "start":
                record.state = JobState.RUNNING
                record.started_at = line.get("started_at", line["ts"])
                record.extra["started_ts"] = line["ts"]
                record.attempts += 1
            elif event == "complete":
                record.state = JobState.COMPLETED
                record.finished_at = line.get("finished_at", line["ts"])
                record.extra["finished_ts"] = line["ts"]
                record.cache_hit = bool(line.get("cache_hit", False))
                record.result_lfn = line.get("result_lfn", "")
                cost = float(line.get("cost", 0.0))
                user = record.spec.user
                state.usage[user] = state.usage.get(user, 0.0) + cost
            elif event == "fail":
                record.state = JobState.FAILED
                record.finished_at = line.get("finished_at", line["ts"])
                record.extra["finished_ts"] = line["ts"]
                record.error = line.get("error", "")
            else:  # cancel
                record.state = JobState.CANCELLED
                record.finished_at = line.get("finished_at", line["ts"])
                record.extra["finished_ts"] = line["ts"]
        elif event == "rescue":
            signature = line["signature"]
            nodes = set(line.get("nodes", ()))
            if nodes:
                state.rescue[signature] = nodes
            else:
                state.rescue.pop(signature, None)
        else:
            raise SchedulerError(f"journal contains unknown event {event!r}")
    # Jobs RUNNING at the crash were interrupted: they go back to the queue.
    for record in state.jobs.values():
        if record.state is JobState.RUNNING:
            record.state = JobState.QUEUED
            record.started_at = None
    return state


def merge_states(states: Iterable[JournalState]) -> JournalState:
    """Fold several shards' replays into one global :class:`JournalState`.

    Shard journals are disjoint by construction (each worker journals only
    its own jobs, with shard-prefixed job ids), so the merge is a union:
    duplicate job ids are a topology bug and rejected.  Per-user usage sums
    across shards — that is the *global* fair-share ledger.
    """
    merged = JournalState()
    for state in states:
        for job_id, record in state.jobs.items():
            if job_id in merged.jobs:
                raise SchedulerError(
                    f"job {job_id!r} appears in more than one shard journal"
                )
            merged.jobs[job_id] = record
        for signature, nodes in state.rescue.items():
            merged.rescue.setdefault(signature, set()).update(nodes)
        for user, cost in state.usage.items():
            merged.usage[user] = merged.usage.get(user, 0.0) + cost
        merged.max_seq = max(merged.max_seq, state.max_seq)
    return merged


def global_fingerprint(
    paths: Iterable[str | os.PathLike[str]],
) -> list[tuple[int, str, str, str, str]]:
    """Order-insensitive fleet-wide queue identity across shard journals.

    Per-shard fingerprints are order-sensitive (each journal is one
    writer's total order), but shards are concurrent peers — the global
    identity sorts the union by job id so two replays of the same journal
    set always agree, regardless of enumeration order.
    """
    merged = merge_states(JobJournal(path).replay() for path in paths)
    return sorted(merged.fingerprint(), key=lambda item: item[1])
