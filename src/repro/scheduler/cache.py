"""The RLS-backed cross-submission result cache.

Pegasus prunes individual files out of an abstract workflow when the RLS
already maps them; the workload manager applies the same idea one level up:
a whole submission whose derivation signature is already mapped in the RLS
is answered from storage — zero compute nodes, zero transfers, straight to
the merged VOTable.

The cache *is* an RLS client: each entry is a logical file
``<signature>.vot`` stored at the cache site and registered like any other
replica, so the mapping survives as long as the Grid does and other
virtual-data machinery (provenance, retrieval, reduction) sees it too.
"""

from __future__ import annotations

from repro.rls.rls import ReplicaLocationService
from repro.rls.site import StorageSite


class RlsResultCache:
    """signature -> merged-VOTable bytes, via the RLS + one storage site."""

    def __init__(
        self,
        rls: ReplicaLocationService,
        site: StorageSite,
        site_name: str,
    ) -> None:
        self.rls = rls
        self.site = site
        self.site_name = site_name
        # The cache site must be known to the RLS before any register();
        # on a live Grid it already is, on a bare RLS we introduce it.
        if site_name not in rls.sites():
            rls.add_site(site_name)

    @staticmethod
    def lfn_for(signature: str) -> str:
        return f"{signature}.vot"

    def __contains__(self, signature: str) -> bool:
        return self.rls.exists(self.lfn_for(signature))

    def lookup(self, signature: str) -> bytes | None:
        """The cached product, or ``None`` on a miss.

        Resolution is RLS-directed: any retrievable replica of the
        signature's logical file answers, not just the one this cache
        wrote — mappings registered by earlier service lifetimes (or other
        tenants) are reused as-is.
        """
        lfn = self.lfn_for(signature)
        for replica in self.rls.lookup(lfn):
            if replica.site == self.site_name and self.site.exists(replica.pfn):
                return self.site.get(replica.pfn)
        return None

    def store(self, signature: str, content: bytes) -> str:
        """Materialise + register the product; returns its logical name.

        Idempotent: re-storing an identical signature overwrites the same
        PFN and re-registers the same mapping (the RLS de-duplicates).
        """
        lfn = self.lfn_for(signature)
        pfn = self.site.pfn_for(lfn)
        self.site.put(pfn, content)
        self.rls.register(lfn, pfn, self.site_name)
        return lfn
