"""Pool-slot leases: bounded concurrency with per-tenant caps.

The demonstration Grid has a fixed number of Condor slots (isi 12 + uwisc
20 + fnal 16 = 48).  Each dispatched job leases a fixed number of slots for
its lifetime; the lease manager enforces both the global bound and a
per-tenant cap, so a user who floods the queue can saturate at most their
cap while other tenants' jobs keep being placed.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass

from repro.core.errors import SchedulerError


@dataclass(frozen=True)
class Lease:
    """A live claim on pool slots."""

    lease_id: int
    user: str
    slots: int


class SlotLeaseManager:
    """Thread-safe slot accounting with blocking and non-blocking acquire."""

    def __init__(self, total_slots: int, per_user_cap: int | None = None) -> None:
        if total_slots < 1:
            raise ValueError(f"total_slots must be positive, got {total_slots}")
        if per_user_cap is not None and per_user_cap < 1:
            raise ValueError(f"per_user_cap must be positive, got {per_user_cap}")
        self.total_slots = total_slots
        self.per_user_cap = per_user_cap if per_user_cap is not None else total_slots
        self._cond = threading.Condition()
        self._in_use = 0
        self._held: dict[str, int] = {}
        self._live: dict[int, Lease] = {}
        self._ids = itertools.count(1)

    # -- queries ----------------------------------------------------------------
    def available(self) -> int:
        with self._cond:
            return self.total_slots - self._in_use

    def in_use(self) -> int:
        with self._cond:
            return self._in_use

    def held_by(self, user: str) -> int:
        with self._cond:
            return self._held.get(user, 0)

    def _check(self, user: str, slots: int) -> None:
        if slots < 1:
            raise SchedulerError(f"lease must claim at least one slot, got {slots}")
        if slots > self.total_slots:
            raise SchedulerError(
                f"lease of {slots} slot(s) can never be satisfied: "
                f"pool total is {self.total_slots}"
            )
        if slots > self.per_user_cap:
            raise SchedulerError(
                f"lease of {slots} slot(s) exceeds the per-tenant cap "
                f"{self.per_user_cap}"
            )

    def _fits(self, user: str, slots: int) -> bool:
        return (
            self._in_use + slots <= self.total_slots
            and self._held.get(user, 0) + slots <= self.per_user_cap
        )

    def can_acquire(self, user: str, slots: int = 1) -> bool:
        """Would :meth:`try_acquire` succeed right now?"""
        self._check(user, slots)
        with self._cond:
            return self._fits(user, slots)

    # -- acquisition ------------------------------------------------------------
    def _grant(self, user: str, slots: int) -> Lease:
        lease = Lease(next(self._ids), user, slots)
        self._in_use += slots
        self._held[user] = self._held.get(user, 0) + slots
        self._live[lease.lease_id] = lease
        return lease

    def try_acquire(self, user: str, slots: int = 1) -> Lease | None:
        """Non-blocking acquire; ``None`` when the bound or cap is hit."""
        self._check(user, slots)
        with self._cond:
            if not self._fits(user, slots):
                return None
            return self._grant(user, slots)

    def acquire(self, user: str, slots: int = 1, timeout: float | None = None) -> Lease:
        """Blocking acquire; raises :class:`SchedulerError` on timeout."""
        self._check(user, slots)
        with self._cond:
            granted = self._cond.wait_for(lambda: self._fits(user, slots), timeout=timeout)
            if not granted:
                raise SchedulerError(
                    f"timed out waiting {timeout}s for {slots} slot(s) for {user!r}"
                )
            return self._grant(user, slots)

    def release(self, lease: Lease) -> None:
        with self._cond:
            if lease.lease_id not in self._live:
                raise SchedulerError(f"lease {lease.lease_id} is not live")
            del self._live[lease.lease_id]
            self._in_use -= lease.slots
            held = self._held.get(lease.user, 0) - lease.slots
            if held > 0:
                self._held[lease.user] = held
            else:
                self._held.pop(lease.user, None)
            self._cond.notify_all()
