"""The eight demonstration clusters of the §5 campaign.

"We used our prototype to separately analyze eight different galaxy
clusters.  The number of galaxies processed for each cluster ranged from 37
to 561."  The counts below reproduce that range and are sized so the full
campaign hits the paper's totals:

* compute jobs   = sum(members) + 8 concat jobs = 1144 + 8 = 1152
* file transfers = 1144 stage-ins + 1144 result stage-outs + 7 final
  VOTable stage-outs (one cluster's output is answered from the RLS cache)
  = 2295
* images handled = 1144 cutouts + 381 context images found by the portal's
  three SIA archive searches = 1525

Coordinates and redshifts are those of real Abell/MS clusters so that the
synthetic sky is astronomically plausible; the member catalogs themselves
are synthesised (see DESIGN.md substitution table).
"""

from __future__ import annotations

from repro.catalog.coords import SkyPosition
from repro.sky.cluster import ClusterModel

#: Root seed of the demonstration sky; changing it re-rolls every catalog.
DEMO_SEED = 2003

#: name -> (ra, dec, z, n_members, context image count)
_DEMO_SPEC: list[tuple[str, float, float, float, int, int]] = [
    ("A3526", 192.200, -41.310, 0.0114, 37, 47),
    ("MS0451", 73.545, -3.018, 0.5386, 52, 47),
    ("A2390", 328.403, 17.696, 0.2280, 68, 48),
    ("A0119", 14.067, -1.255, 0.0442, 84, 48),
    ("A0496", 68.408, -13.262, 0.0329, 97, 47),
    ("A0085", 10.460, -9.303, 0.0551, 110, 48),
    ("A2029", 227.734, 5.745, 0.0773, 135, 48),
    ("A1656", 194.953, 27.981, 0.0231, 561, 48),
]


def _build(name: str, ra: float, dec: float, z: float, n: int, n_context: int) -> ClusterModel:
    return ClusterModel(
        name=name,
        center=SkyPosition(ra, dec),
        redshift=z,
        n_galaxies=n,
        # richer clusters are angularly larger in this demo sky
        core_radius_deg=0.03 + 0.00008 * n,
        tidal_radius_deg=0.35 + 0.0006 * n,
        seed=DEMO_SEED,
        context_image_count=n_context,
    )


#: The demonstration registry, ordered by member count (smallest first).
DEMONSTRATION_CLUSTERS: tuple[ClusterModel, ...] = tuple(
    _build(*spec) for spec in _DEMO_SPEC
)


def demonstration_cluster(name: str) -> ClusterModel:
    """Look up a demonstration cluster by name (KeyError if absent)."""
    for cluster in DEMONSTRATION_CLUSTERS:
        if cluster.name == name:
            return cluster
    raise KeyError(
        f"unknown demonstration cluster {name!r}; "
        f"available: {[c.name for c in DEMONSTRATION_CLUSTERS]}"
    )


def campaign_expectations() -> dict[str, int]:
    """The paper's §5 totals, derived from the registry (used by benches)."""
    members = sum(c.n_galaxies for c in DEMONSTRATION_CLUSTERS)
    context = sum(c.context_image_count for c in DEMONSTRATION_CLUSTERS)
    return {
        "clusters": len(DEMONSTRATION_CLUSTERS),
        "galaxies": members,
        "compute_jobs": members + len(DEMONSTRATION_CLUSTERS),
        "images": members + context,
        "transfers": 2 * members + len(DEMONSTRATION_CLUSTERS) - 1,
    }
