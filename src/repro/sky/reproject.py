"""WCS reprojection: put images from different instruments on one grid.

Figure 7 overlays ROSAT/Chandra X-ray emission (coarse, its own pointing)
on DSS optical imagery (finer, different pixel grid).  Aladin does this by
resampling through the WCS of both images; this module implements the same
operation for TAN frames — evaluate the target grid's sky coordinates,
project them into the source frame, and interpolate.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.fits.hdu import ImageHDU
from repro.fits.header import Header
from repro.fits.wcs import TanWCS


def reproject_tan(
    source: ImageHDU,
    target_wcs: TanWCS,
    target_shape: tuple[int, int],
    order: int = 1,
    fill_value: float = 0.0,
) -> ImageHDU:
    """Resample ``source`` onto ``target_wcs``/``target_shape``.

    ``order`` is the spline interpolation order (1 = bilinear, 0 = nearest).
    Pixels mapping outside the source frame get ``fill_value``.  Returns a
    new HDU carrying the target WCS.
    """
    if source.data is None:
        raise ValueError("source HDU has no data to reproject")
    if order not in (0, 1, 2, 3):
        raise ValueError(f"unsupported interpolation order {order}")
    source_wcs = TanWCS.from_header(source.header)

    height, width = target_shape
    yy, xx = np.indices((height, width), dtype=float)
    # FITS pixels are 1-based
    ra, dec = target_wcs.pixel_to_sky(xx + 1.0, yy + 1.0)
    sx, sy = source_wcs.sky_to_pixel(ra, dec)
    # back to 0-based array coordinates for map_coordinates (row, col);
    # rounding kills the ~1e-12 projection fuzz that would otherwise blend
    # edge pixels with the fill value
    coords = np.round(np.stack([sy - 1.0, sx - 1.0]), 9)
    resampled = ndimage.map_coordinates(
        np.asarray(source.data, dtype=float),
        coords,
        order=order,
        mode="constant",
        cval=fill_value,
    )

    header = Header()
    for card in source.header:
        if card.is_commentary:
            continue
        if card.keyword in ("OBJECT", "TELESCOP", "SURVEY", "BUNIT", "BAND"):
            header.set(card.keyword, card.value, card.comment)
    target_wcs.to_header(header)
    header.add_history("reprojected by repro.sky.reproject")
    return ImageHDU(resampled.astype(np.float32), header)


def overlay_rgb_weights(
    optical: ImageHDU, xray_on_optical_grid: ImageHDU
) -> tuple[np.ndarray, np.ndarray]:
    """Normalised per-pixel weights for a red=optical / blue=x-ray composite.

    Figure 7: "The x-ray emission is shown in blue, and the optical
    [e]mission is in red."  Uses asinh stretches (the astronomer's
    standard) normalised to [0, 1].
    """
    def stretch(data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=float)
        floor = np.percentile(data, 5.0)
        scale = max(np.percentile(data, 99.0) - floor, 1e-9)
        return np.clip(np.arcsinh((data - floor) / scale * 10.0) / np.arcsinh(10.0), 0.0, 1.0)

    if optical.data is None or xray_on_optical_grid.data is None:
        raise ValueError("both HDUs need data")
    if optical.data.shape != xray_on_optical_grid.data.shape:
        raise ValueError(
            f"grids differ: {optical.data.shape} vs {xray_on_optical_grid.data.shape}; "
            "reproject first"
        )
    return stretch(optical.data), stretch(xray_on_optical_grid.data)
