"""Synthetic X-ray surface-brightness maps (ROSAT / Chandra stand-ins).

Cluster X-ray emission traces the hot intra-cluster gas; the standard
description is the isothermal beta model (Cavaliere & Fusco-Femiano 1976):

    S(r) = S0 * (1 + (r/r_c)^2)^(0.5 - 3 beta)

The portal overlays this on the optical mosaic (Figure 7 shows "x-ray
emission ... in blue"), and its radial gradient gives the science model its
x-ray surface-brightness axis.
"""

from __future__ import annotations

import numpy as np

from repro.fits.hdu import ImageHDU
from repro.fits.header import Header
from repro.fits.wcs import TanWCS
from repro.sky.cluster import ClusterModel
from repro.utils.rng import derive_rng


def beta_model(r: np.ndarray, s0: float, r_core: float, beta: float = 0.67) -> np.ndarray:
    """Beta-model surface brightness at radius ``r`` (same units as r_core)."""
    if r_core <= 0:
        raise ValueError(f"core radius must be positive: {r_core}")
    r = np.asarray(r, dtype=float)
    return s0 * (1.0 + (r / r_core) ** 2) ** (0.5 - 3.0 * beta)


def render_xray_map(
    cluster: ClusterModel,
    size: int = 256,
    field_deg: float | None = None,
    s0_counts: float = 50.0,
    beta: float = 0.67,
    instrument: str = "SYNTH-ROSAT",
) -> ImageHDU:
    """Render a Poisson-noised X-ray count map of the cluster gas halo."""
    field = field_deg if field_deg is not None else 2.2 * cluster.tidal_radius_deg
    scale_deg = field / size
    wcs = TanWCS(
        crval1=cluster.center.ra,
        crval2=cluster.center.dec,
        crpix1=(size + 1) / 2.0,
        crpix2=(size + 1) / 2.0,
        cdelt1=-scale_deg,
        cdelt2=scale_deg,
    )
    yy, xx = np.indices((size, size), dtype=float)
    r_pix = np.hypot(xx - (size - 1) / 2.0, yy - (size - 1) / 2.0)
    r_core_pix = cluster.core_radius_deg * 1.5 / scale_deg  # gas core wider than galaxy core
    expected = beta_model(r_pix, s0_counts, r_core_pix, beta) + 0.3  # + background
    rng = derive_rng(cluster.seed, "xray", cluster.name, instrument)
    counts = rng.poisson(expected).astype(np.float32)

    header = Header()
    header.set("OBJECT", cluster.name, "cluster field")
    header.set("TELESCOP", instrument, "synthetic x-ray mission")
    header.set("BUNIT", "counts")
    header.set("BETA", beta, "beta-model slope")
    wcs.to_header(header)
    return ImageHDU(counts, header)
