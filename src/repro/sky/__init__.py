"""Synthetic sky: the reproduction's substitute for real survey archives.

The paper draws on DSS optical plates, ROSAT/Chandra X-ray archives and the
NED/CNOC galaxy catalogs.  None of those are available offline, so this
package synthesises statistically equivalent data with seeded RNG:

* :mod:`repro.sky.cluster` — parametric galaxy clusters: King-profile member
  positions, velocity dispersions, and a Dressler (1980) morphology-density
  assignment (ellipticals preferentially at high local density / small
  radius).  This is the ground truth the Figure 7 analysis must rediscover
  *from the imaging alone*.
* :mod:`repro.sky.profiles` / :mod:`repro.sky.galaxy` — Sersic surface
  brightness profiles and per-type galaxy image rendering (de Vaucouleurs
  ellipticals, exponential disks with spiral arms, irregulars).
* :mod:`repro.sky.imaging` — FITS cutouts and wide-field mosaics with TAN
  WCS, PSF convolution, sky background and noise.
* :mod:`repro.sky.xray` — beta-model X-ray surface brightness maps for the
  ROSAT/Chandra stand-ins.
* :mod:`repro.sky.registry_data` — the eight demonstration clusters sized to
  match the paper's §5 campaign (37-561 galaxies, 1152 jobs, ...).
"""

from repro.sky.cluster import ClusterModel, GalaxyRecord, MorphType
from repro.sky.galaxy import render_galaxy_image
from repro.sky.imaging import CutoutFactory, render_field_mosaic
from repro.sky.profiles import sersic_b, sersic_profile
from repro.sky.registry_data import DEMONSTRATION_CLUSTERS, demonstration_cluster
from repro.sky.xray import render_xray_map

__all__ = [
    "ClusterModel",
    "GalaxyRecord",
    "MorphType",
    "render_galaxy_image",
    "CutoutFactory",
    "render_field_mosaic",
    "sersic_b",
    "sersic_profile",
    "DEMONSTRATION_CLUSTERS",
    "demonstration_cluster",
    "render_xray_map",
]
