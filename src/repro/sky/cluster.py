"""Parametric galaxy cluster model with Dressler-style morphology mixing.

A :class:`ClusterModel` generates a reproducible member catalog: positions
follow a King (1962) surface-density profile, and morphological type is
drawn from a radius-dependent mixture so that ellipticals dominate the core
and spirals the outskirts — the density-morphology relation of Dressler
(1980) that the paper's Figure 7 analysis "rediscovers".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.catalog.coords import SkyPosition
from repro.utils.rng import derive_rng


class MorphType(str, enum.Enum):
    """Morphological classes with distinct imaging signatures."""

    ELLIPTICAL = "E"
    LENTICULAR = "S0"
    SPIRAL = "Sp"
    IRREGULAR = "Irr"


#: Rendering parameters per type: (sersic index, asymmetry amplitude range,
#: spiral-arm amplitude).  Ellipticals are smooth and concentrated; spirals
#: diffuse with strong non-axisymmetric structure.
MORPH_RENDER_PARAMS: dict[MorphType, dict[str, float | tuple[float, float]]] = {
    MorphType.ELLIPTICAL: {"n": 4.0, "asym": (0.00, 0.04), "arm": 0.0},
    MorphType.LENTICULAR: {"n": 2.5, "asym": (0.02, 0.08), "arm": 0.05},
    MorphType.SPIRAL: {"n": 1.0, "asym": (0.15, 0.40), "arm": 0.55},
    MorphType.IRREGULAR: {"n": 0.8, "asym": (0.35, 0.70), "arm": 0.0},
}


@dataclass(frozen=True)
class GalaxyRecord:
    """One synthesised cluster member — the ground truth behind its image."""

    galaxy_id: str
    ra: float
    dec: float
    redshift: float
    magnitude: float
    morph: MorphType
    r_e_arcsec: float
    ellipticity: float
    position_angle_deg: float
    asymmetry_true: float
    radius_deg: float  # cluster-centric angular radius


@dataclass(frozen=True)
class ClusterModel:
    """A named galaxy cluster and its member-generation parameters.

    Parameters
    ----------
    name:
        Cluster designation, e.g. ``"A1656"``; also seeds the RNG stream.
    center:
        Sky position of the cluster centre.
    redshift:
        Systemic redshift.
    n_galaxies:
        Number of catalogued members (paper range: 37-561).
    core_radius_deg:
        King-profile core radius.
    tidal_radius_deg:
        Outer truncation radius of the member distribution.
    velocity_dispersion_kms:
        1-D velocity dispersion for member redshift scatter.
    elliptical_core_fraction / elliptical_field_fraction:
        Probability a member is E/S0 at r=0 and at the tidal radius; the mix
        interpolates in between (Dressler relation strength).
    seed:
        Root seed; all member properties derive from (seed, name).
    """

    name: str
    center: SkyPosition
    redshift: float
    n_galaxies: int
    core_radius_deg: float = 0.05
    tidal_radius_deg: float = 0.5
    velocity_dispersion_kms: float = 900.0
    elliptical_core_fraction: float = 0.85
    elliptical_field_fraction: float = 0.25
    seed: int = 2003
    context_image_count: int = 48
    #: Merging-cluster knobs (§2: "recent falling of matter into the
    #: cluster ... in the form of ... cluster mass groupings").  A fraction
    #: of members forms an infalling subclump, spatially offset and
    #: kinematically distinct — what the Dressler-Shectman test detects.
    subcluster_fraction: float = 0.0
    subcluster_offset_deg: float = 0.25
    subcluster_velocity_kms: float = 1500.0

    def __post_init__(self) -> None:
        if self.n_galaxies < 1:
            raise ValueError(f"cluster needs at least one galaxy: {self.n_galaxies}")
        if not 0 < self.core_radius_deg < self.tidal_radius_deg:
            raise ValueError("need 0 < core radius < tidal radius")
        if not 0.0 <= self.elliptical_field_fraction <= self.elliptical_core_fraction <= 1.0:
            raise ValueError("need 0 <= field fraction <= core fraction <= 1")
        if not 0.0 <= self.subcluster_fraction < 0.5:
            raise ValueError("subcluster fraction must be in [0, 0.5)")

    # -- member synthesis ----------------------------------------------------
    def _king_radii(self, rng: np.random.Generator) -> np.ndarray:
        """Draw cluster-centric radii from a King surface-density profile.

        Sigma(r) ~ (1 + (r/rc)^2)^-1 truncated at the tidal radius; inverse
        transform sampling of the enclosed-count profile
        N(<r) ~ ln(1 + (r/rc)^2).
        """
        rc, rt = self.core_radius_deg, self.tidal_radius_deg
        u = rng.random(self.n_galaxies)
        norm = np.log1p((rt / rc) ** 2)
        return rc * np.sqrt(np.expm1(u * norm))

    def elliptical_probability(self, radius_deg: np.ndarray) -> np.ndarray:
        """P(early type | cluster-centric radius): the Dressler mixing law.

        Linear in log-density for a King profile is well approximated by a
        smooth interpolation in r/rt; we use an exponential decline with the
        core fraction at r=0 and the field fraction at r=rt.
        """
        x = np.clip(np.asarray(radius_deg, dtype=float) / self.tidal_radius_deg, 0.0, 1.0)
        lo, hi = self.elliptical_field_fraction, self.elliptical_core_fraction
        # exp decline with scale 0.3 rt, renormalised to hit lo at x=1.
        shape = (np.exp(-x / 0.3) - np.exp(-1.0 / 0.3)) / (1.0 - np.exp(-1.0 / 0.3))
        return lo + (hi - lo) * shape

    def generate_members(self) -> list[GalaxyRecord]:
        """Synthesise the reproducible member catalog for this cluster."""
        rng = derive_rng(self.seed, "cluster", self.name)
        radii = self._king_radii(rng)
        theta = rng.uniform(0.0, 2.0 * np.pi, self.n_galaxies)

        p_early = self.elliptical_probability(radii)
        u_type = rng.random(self.n_galaxies)
        u_sub = rng.random(self.n_galaxies)

        # speed of light in km/s for redshift scatter
        dz = rng.normal(0.0, self.velocity_dispersion_kms / 299_792.458, self.n_galaxies)

        members: list[GalaxyRecord] = []
        for i in range(self.n_galaxies):
            if u_type[i] < p_early[i]:
                morph = MorphType.ELLIPTICAL if u_sub[i] < 0.7 else MorphType.LENTICULAR
            else:
                morph = MorphType.SPIRAL if u_sub[i] < 0.85 else MorphType.IRREGULAR
            asym_lo, asym_hi = MORPH_RENDER_PARAMS[morph]["asym"]  # type: ignore[misc]
            pos = self.center.offset(
                float(radii[i] * np.cos(theta[i])), float(radii[i] * np.sin(theta[i]))
            )
            # Schechter-ish magnitudes: brighter galaxies rarer; ellipticals
            # slightly brighter on average (they sit in the core).
            mag = 16.0 + rng.gamma(3.0, 1.0) - (0.5 if morph == MorphType.ELLIPTICAL else 0.0)
            members.append(
                GalaxyRecord(
                    galaxy_id=f"{self.name}-{i:04d}",
                    ra=pos.ra,
                    dec=pos.dec,
                    redshift=float(self.redshift + dz[i]),
                    magnitude=float(mag),
                    morph=morph,
                    r_e_arcsec=float(rng.uniform(2.0, 6.0)),
                    ellipticity=float(rng.uniform(0.0, 0.6 if morph != MorphType.ELLIPTICAL else 0.4)),
                    position_angle_deg=float(rng.uniform(0.0, 180.0)),
                    asymmetry_true=float(rng.uniform(asym_lo, asym_hi)),
                    radius_deg=float(radii[i]),
                )
            )
        if self.subcluster_fraction > 0.0:
            members = self._inject_subcluster(members)
        return members

    def _inject_subcluster(self, members: list[GalaxyRecord]) -> list[GalaxyRecord]:
        """Relocate a fraction of members into an infalling subclump.

        Uses a *separate* RNG stream so that a cluster with
        ``subcluster_fraction=0`` generates byte-identical members to one
        that never had the feature.
        """
        import dataclasses

        rng = derive_rng(self.seed, "subcluster", self.name)
        n_sub = int(round(self.subcluster_fraction * len(members)))
        if n_sub < 1:
            return members
        chosen = rng.choice(len(members), size=n_sub, replace=False)
        clump_pa = float(rng.uniform(0.0, 2.0 * np.pi))
        clump_center = self.center.offset(
            self.subcluster_offset_deg * np.cos(clump_pa),
            self.subcluster_offset_deg * np.sin(clump_pa),
        )
        clump_scatter = self.core_radius_deg
        dz_bulk = self.subcluster_velocity_kms / 299_792.458
        out = list(members)
        for index in chosen:
            member = members[int(index)]
            pos = clump_center.offset(
                float(rng.normal(0.0, clump_scatter)), float(rng.normal(0.0, clump_scatter))
            )
            out[int(index)] = dataclasses.replace(
                member,
                ra=pos.ra,
                dec=pos.dec,
                redshift=member.redshift + dz_bulk,
                radius_deg=self.center.separation_deg(pos),
            )
        return out
