"""Render individual galaxy images from morphological parameters.

The renderer turns a :class:`~repro.sky.cluster.GalaxyRecord` into a pixel
array whose *measurable* morphology (concentration, asymmetry — the
quantities of Conselice 2003 computed by :mod:`repro.morphology`) reflects
the generated type:

* ellipticals: smooth elliptical Sersic n=4, nearly symmetric;
* lenticulars: n=2.5, weak structure;
* spirals: exponential disk with logarithmic spiral arms plus an m=1
  lopsidedness mode — strongly asymmetric under 180-degree rotation;
* irregulars: shallow profile with superposed random clumps.

All work is vectorised over the pixel grid; per the HPC guides the hot path
is pure broadcasting with no Python-level pixel loops.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.sky.cluster import MORPH_RENDER_PARAMS, GalaxyRecord, MorphType
from repro.sky.profiles import pixel_integrated_sersic

#: Per-band smooth-light flux factors by morphological type.  Early types
#: sit on the red sequence (faint in g, bright in i); late types are blue.
BAND_FLUX_FACTORS: dict[str, dict[MorphType, float]] = {
    "g": {
        MorphType.ELLIPTICAL: 0.55,
        MorphType.LENTICULAR: 0.65,
        MorphType.SPIRAL: 0.90,
        MorphType.IRREGULAR: 1.00,
    },
    "r": {t: 1.0 for t in MorphType},
    "i": {
        MorphType.ELLIPTICAL: 1.25,
        MorphType.LENTICULAR: 1.20,
        MorphType.SPIRAL: 1.00,
        MorphType.IRREGULAR: 0.90,
    },
}

#: Star-forming knots are dramatically brighter in the blue: the physical
#: reason asymmetry indices measured in g exceed those measured in i
#: ("galaxy images from different frequency bands could yield different
#: results", §4.2).
BAND_CLUMP_FACTORS: dict[str, float] = {"g": 2.2, "r": 1.0, "i": 0.55}


def _elliptical_radius(
    shape: tuple[int, int],
    x0: float,
    y0: float,
    ellipticity: float,
    position_angle_deg: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Elliptical radius and azimuth grids around (x0, y0)."""
    yy, xx = np.indices(shape, dtype=float)
    dx = xx - x0
    dy = yy - y0
    pa = np.deg2rad(position_angle_deg)
    # rotate into the galaxy frame
    u = dx * np.cos(pa) + dy * np.sin(pa)
    v = -dx * np.sin(pa) + dy * np.cos(pa)
    axis_ratio = 1.0 - np.clip(ellipticity, 0.0, 0.95)
    r = np.hypot(u, v / axis_ratio)
    phi = np.arctan2(v, u)
    return r, phi


def render_galaxy_image(
    galaxy: GalaxyRecord,
    size: int = 64,
    pixel_scale_arcsec: float = 0.4,
    total_flux: float = 1.0e4,
    psf_fwhm_arcsec: float = 1.2,
    sky_level: float = 5.0,
    noise_sigma: float = 1.0,
    rng: np.random.Generator | None = None,
    band: str = "r",
    noise_rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Render a ``size x size`` float32 cutout of ``galaxy``.

    The galaxy is centred; flux scales with magnitude relative to mag 18.
    Returns sky-subtracted-able counts (sky left in, as real cutouts have).

    ``band`` selects the synthetic filter (g/r/i): it scales the smooth
    light by morphology colour and the star-forming knots by the blue/red
    factors above.  ``rng`` drives the galaxy's *structure* (knot layout —
    identical across bands, as physically it must be); ``noise_rng`` the
    pixel noise (defaults to ``rng``).
    """
    if size < 8:
        raise ValueError(f"cutout too small to be meaningful: {size}")
    if band not in BAND_FLUX_FACTORS:
        raise ValueError(f"unknown band {band!r}; available: {sorted(BAND_FLUX_FACTORS)}")
    if rng is None:
        rng = np.random.default_rng(0)
    if noise_rng is None:
        noise_rng = rng

    params = MORPH_RENDER_PARAMS[galaxy.morph]
    n = float(params["n"])  # type: ignore[arg-type]
    arm_amp = float(params["arm"])  # type: ignore[arg-type]

    flux = total_flux * 10.0 ** (-0.4 * (galaxy.magnitude - 18.0))
    flux *= BAND_FLUX_FACTORS[band][galaxy.morph]
    r_e_pix = max(galaxy.r_e_arcsec / pixel_scale_arcsec, 1.0)
    center = (size - 1) / 2.0

    r, phi = _elliptical_radius((size, size), center, center, galaxy.ellipticity, galaxy.position_angle_deg)
    image = pixel_integrated_sersic(
        (size, size),
        (center, center),
        r_e_pix,
        n,
        total_flux=flux,
        axis_ratio=1.0 - np.clip(galaxy.ellipticity, 0.0, 0.95),
        position_angle_rad=np.deg2rad(galaxy.position_angle_deg),
    )

    modulation = np.ones_like(image)
    if arm_amp > 0.0:
        # Two-armed logarithmic spiral: amplitude fades inside the core so
        # the centre stays smooth, pitch fixed at ~20 degrees.
        pitch = np.tan(np.deg2rad(20.0))
        with np.errstate(divide="ignore"):
            winding = np.where(r > 0.1, np.log(np.maximum(r, 0.1) / r_e_pix) / pitch, 0.0)
        arm_phase = 2.0 * (phi - winding)
        radial_gate = 1.0 - np.exp(-(r / (0.8 * r_e_pix)) ** 2)
        modulation += arm_amp * radial_gate * np.cos(arm_phase)

    if galaxy.asymmetry_true > 0.0:
        # m=1 lopsidedness grows with radius: breaks 180-degree symmetry by
        # an amount the asymmetry index will recover.
        lop_phase = np.deg2rad(galaxy.position_angle_deg * 3.1)
        radial_gate = np.clip(r / (2.0 * r_e_pix), 0.0, 1.5)
        modulation += 2.0 * galaxy.asymmetry_true * radial_gate * np.cos(phi - lop_phase)

    image *= np.clip(modulation, 0.0, None)

    clump_factor = BAND_CLUMP_FACTORS[band]
    if galaxy.asymmetry_true > 0.02:
        # Clumpy star formation: point-like knots are what a
        # centre-minimised asymmetry index actually responds to (an m=1
        # smooth mode is largely removable by recentering).  Knot flux
        # fraction scales with the intended asymmetry and the band.
        image += _clump_field(
            size, r_e_pix, flux * 1.6 * galaxy.asymmetry_true * clump_factor, center, rng
        )

    if galaxy.morph == MorphType.IRREGULAR:
        image += _clump_field(size, r_e_pix, flux * 0.5 * clump_factor, center, rng)

    # PSF: Gaussian with the requested FWHM.
    sigma_pix = psf_fwhm_arcsec / pixel_scale_arcsec / 2.3548
    image = ndimage.gaussian_filter(image, sigma_pix, mode="constant")

    image += sky_level
    image += noise_rng.normal(0.0, noise_sigma, image.shape)
    return image.astype(np.float32)


def _clump_field(
    size: int, r_e_pix: float, clump_flux: float, center: float, rng: np.random.Generator
) -> np.ndarray:
    """Star-forming clumps for irregulars: a handful of offset Gaussians."""
    n_clumps = int(rng.integers(3, 7))
    yy, xx = np.indices((size, size), dtype=float)
    field = np.zeros((size, size))
    radii = rng.uniform(0.3, 1.8, n_clumps) * r_e_pix
    angles = rng.uniform(0.0, 2.0 * np.pi, n_clumps)
    weights = rng.dirichlet(np.ones(n_clumps))
    for radius, angle, weight in zip(radii, angles, weights):
        cx = center + radius * np.cos(angle)
        cy = center + radius * np.sin(angle)
        s = max(0.25 * r_e_pix, 1.0)
        field += weight * clump_flux / (2 * np.pi * s**2) * np.exp(
            -((xx - cx) ** 2 + (yy - cy) ** 2) / (2 * s**2)
        )
    return field
