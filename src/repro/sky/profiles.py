"""Sersic surface-brightness profiles.

The Sersic (1968) law ``I(r) = I_e exp(-b_n ((r/r_e)^(1/n) - 1))`` spans the
morphological sequence the prototype classifies: ``n = 4`` is the de
Vaucouleurs profile of ellipticals (centrally concentrated), ``n = 1`` the
exponential disk of spirals (diffuse).  The concentration index measured by
:mod:`repro.morphology` responds directly to ``n``, which is how synthetic
morphology becomes *measurable* morphology.
"""

from __future__ import annotations

import numpy as np
from scipy import special


def sersic_b(n: float) -> float:
    """The b_n coefficient making r_e the half-light radius.

    Solves ``Gamma(2n) = 2 gamma(2n, b)`` via the Ciotti & Bertin (1999)
    asymptotic expansion, accurate to <1e-4 for n >= 0.36 (covers the
    n in [0.5, 6] range used here).
    """
    if n <= 0:
        raise ValueError(f"Sersic index must be positive: {n}")
    return 2.0 * n - 1.0 / 3.0 + 4.0 / (405.0 * n) + 46.0 / (25515.0 * n**2) + 131.0 / (1148175.0 * n**3)


def sersic_profile(r: np.ndarray, r_e: float, n: float, total_flux: float = 1.0) -> np.ndarray:
    """Surface brightness at radius ``r`` for a Sersic profile.

    Normalised so the profile integrates (over the plane, circular symmetry)
    to ``total_flux``:  ``L = 2 pi n Gamma(2n) e^b b^(-2n) I_e r_e^2``.
    """
    if r_e <= 0:
        raise ValueError(f"effective radius must be positive: {r_e}")
    b = sersic_b(n)
    luminosity_factor = 2.0 * np.pi * n * special.gamma(2.0 * n) * np.exp(b) * b ** (-2.0 * n) * r_e**2
    i_e = total_flux / luminosity_factor
    r = np.asarray(r, dtype=float)
    return i_e * np.exp(-b * (np.maximum(r, 0.0) / r_e) ** (1.0 / n) + b)


def pixel_integrated_sersic(
    shape: tuple[int, int],
    center: tuple[float, float],
    r_e: float,
    n: float,
    total_flux: float = 1.0,
    axis_ratio: float = 1.0,
    position_angle_rad: float = 0.0,
    core_halfwidth: int = 4,
    oversample: int = 8,
) -> np.ndarray:
    """Sersic image with proper pixel integration of the cuspy core.

    High-n profiles are (integrably) singular at r=0; sampling the profile
    at pixel *centres* puts wildly too much flux into the central pixel and
    corrupts every concentration measurement downstream.  This renderer
    samples at pixel centres everywhere except a ``(2w+1)^2`` core box,
    which it averages over an ``oversample x oversample`` subpixel grid.

    ``center`` is (y0, x0) in 0-based pixel coordinates.
    """
    if not 0.0 < axis_ratio <= 1.0:
        raise ValueError(f"axis ratio must be in (0, 1]: {axis_ratio}")
    y0, x0 = center
    yy, xx = np.indices(shape, dtype=float)

    def radius(py: np.ndarray, px: np.ndarray) -> np.ndarray:
        dx = px - x0
        dy = py - y0
        u = dx * np.cos(position_angle_rad) + dy * np.sin(position_angle_rad)
        v = -dx * np.sin(position_angle_rad) + dy * np.cos(position_angle_rad)
        return np.hypot(u, v / axis_ratio)

    image = sersic_profile(radius(yy, xx), r_e, n, total_flux)

    w = int(core_halfwidth)
    cy, cx = int(round(y0)), int(round(x0))
    y_lo, y_hi = max(cy - w, 0), min(cy + w + 1, shape[0])
    x_lo, x_hi = max(cx - w, 0), min(cx + w + 1, shape[1])
    if y_lo < y_hi and x_lo < x_hi and oversample > 1:
        sub = (np.arange(oversample) + 0.5) / oversample - 0.5
        oy, ox = np.meshgrid(sub, sub, indexing="ij")
        box_y, box_x = np.mgrid[y_lo:y_hi, x_lo:x_hi]
        # (By, Bx, os, os) broadcast of subpixel sample points
        py = box_y[..., None, None] + oy
        px = box_x[..., None, None] + ox
        values = sersic_profile(radius(py, px), r_e, n, total_flux)
        image[y_lo:y_hi, x_lo:x_hi] = values.mean(axis=(-1, -2))
    return image


def half_light_fraction(r: float, r_e: float, n: float) -> float:
    """Fraction of total flux inside projected radius ``r``.

    ``F(<r)/F_total = gamma(2n, b (r/r_e)^(1/n)) / Gamma(2n)`` — used by the
    tests to verify that the rendered images place half their light inside
    r_e and by the Petrosian-radius checks.
    """
    b = sersic_b(n)
    x = b * (r / r_e) ** (1.0 / n)
    return float(special.gammainc(2.0 * n, x))
