"""FITS image products: galaxy cutouts and wide-field mosaics.

:class:`CutoutFactory` is the synthetic back-end of the SIA cutout service:
given a sky position it finds the matching cluster member and renders its
FITS cutout with a correct TAN WCS (so downstream code can do real
astrometry on it).  :func:`render_field_mosaic` builds the large-scale
optical context image the portal fetches first.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.fits.hdu import ImageHDU
from repro.fits.header import Header
from repro.fits.wcs import TanWCS
from repro.sky.cluster import ClusterModel, GalaxyRecord
from repro.sky.galaxy import render_galaxy_image
from repro.utils.rng import derive_rng

#: Default pixel scale of the synthetic survey, arcsec/pixel (DSS-like).
PIXEL_SCALE_ARCSEC = 0.4


def cutout_wcs(galaxy: GalaxyRecord, size: int, pixel_scale_arcsec: float) -> TanWCS:
    """TAN WCS for a cutout centred on ``galaxy``."""
    scale_deg = pixel_scale_arcsec / 3600.0
    center_pix = (size + 1) / 2.0  # FITS 1-based centre of an odd/even grid
    return TanWCS(
        crval1=galaxy.ra,
        crval2=galaxy.dec,
        crpix1=center_pix,
        crpix2=center_pix,
        cdelt1=-scale_deg,
        cdelt2=scale_deg,
    )


class CutoutFactory:
    """Renders FITS cutouts for the members of one cluster.

    The factory owns the noise RNG streams so the same (seed, galaxy) pair
    always yields the identical image — campaign runs are reproducible and
    cached image files are byte-stable.
    """

    def __init__(
        self,
        cluster: ClusterModel,
        size: int = 64,
        pixel_scale_arcsec: float = PIXEL_SCALE_ARCSEC,
        band: str = "r",
    ) -> None:
        self.cluster = cluster
        self.size = size
        self.pixel_scale_arcsec = pixel_scale_arcsec
        self.band = band
        self._members = {m.galaxy_id: m for m in cluster.generate_members()}

    def members(self) -> list[GalaxyRecord]:
        return list(self._members.values())

    def member(self, galaxy_id: str) -> GalaxyRecord:
        if galaxy_id not in self._members:
            raise KeyError(f"unknown galaxy {galaxy_id!r} in cluster {self.cluster.name}")
        return self._members[galaxy_id]

    def render_cutout(self, galaxy_id: str) -> ImageHDU:
        """Render the FITS cutout for one member, WCS and metadata included."""
        galaxy = self.member(galaxy_id)
        # Structure (knot layout) is band-independent; pixel noise is not.
        structure_rng = derive_rng(self.cluster.seed, "cutout", galaxy_id)
        noise_rng = derive_rng(self.cluster.seed, "cutout-noise", galaxy_id, self.band)
        data = render_galaxy_image(
            galaxy,
            size=self.size,
            pixel_scale_arcsec=self.pixel_scale_arcsec,
            rng=structure_rng,
            noise_rng=noise_rng,
            band=self.band,
        )
        header = Header()
        header.set("OBJECT", galaxy_id, "galaxy identifier")
        header.set("CLUSTER", self.cluster.name, "parent cluster")
        header.set("BAND", self.band, "synthetic filter")
        header.set("REDSHIFT", round(galaxy.redshift, 6), "galaxy redshift")
        header.set("MAG", round(galaxy.magnitude, 3), "apparent magnitude")
        header.set("BUNIT", "counts", "pixel units")
        cutout_wcs(galaxy, self.size, self.pixel_scale_arcsec).to_header(header)
        header.add_history("synthetic cutout rendered by repro.sky")
        return ImageHDU(data, header)


def render_field_mosaic(
    cluster: ClusterModel,
    size: int = 512,
    field_deg: float | None = None,
    psf_fwhm_pix: float = 2.0,
) -> ImageHDU:
    """Render the wide-field optical context image of a cluster.

    Members are splatted as Gaussians of their half-light radius — at mosaic
    resolution the detailed profile is unresolved, so this is both faithful
    and fast (one vectorised pass per galaxy over a local stamp).
    """
    field = field_deg if field_deg is not None else 2.2 * cluster.tidal_radius_deg
    scale_deg = field / size
    wcs = TanWCS(
        crval1=cluster.center.ra,
        crval2=cluster.center.dec,
        crpix1=(size + 1) / 2.0,
        crpix2=(size + 1) / 2.0,
        cdelt1=-scale_deg,
        cdelt2=scale_deg,
    )
    image = np.zeros((size, size), dtype=float)
    members = cluster.generate_members()
    ras = np.array([m.ra for m in members])
    decs = np.array([m.dec for m in members])
    xs, ys = wcs.sky_to_pixel(ras, decs)
    fluxes = 10.0 ** (-0.4 * (np.array([m.magnitude for m in members]) - 18.0)) * 1e4
    sigmas = np.maximum(np.array([m.r_e_arcsec for m in members]) / 3600.0 / scale_deg, 0.7)

    half = 8  # stamp half-width in units of sigma-capped pixels
    for x, y, flux, sigma in zip(xs, ys, fluxes, sigmas):
        # 0-based array coordinates
        cx, cy = float(x) - 1.0, float(y) - 1.0
        w = int(np.ceil(half * sigma))
        x_lo, x_hi = max(int(cx) - w, 0), min(int(cx) + w + 1, size)
        y_lo, y_hi = max(int(cy) - w, 0), min(int(cy) + w + 1, size)
        if x_lo >= x_hi or y_lo >= y_hi:
            continue  # member fell outside the mosaic
        yy, xx = np.mgrid[y_lo:y_hi, x_lo:x_hi]
        image[y_lo:y_hi, x_lo:x_hi] += (
            flux / (2 * np.pi * sigma**2) * np.exp(-((xx - cx) ** 2 + (yy - cy) ** 2) / (2 * sigma**2))
        )

    image = ndimage.gaussian_filter(image, psf_fwhm_pix / 2.3548, mode="constant")
    rng = derive_rng(cluster.seed, "mosaic", cluster.name)
    image += 5.0 + rng.normal(0.0, 1.0, image.shape)

    header = Header()
    header.set("OBJECT", cluster.name, "cluster field")
    header.set("SURVEY", "SYNTH-DSS", "synthetic optical survey")
    header.set("BUNIT", "counts")
    wcs.to_header(header)
    return ImageHDU(image.astype(np.float32), header)
