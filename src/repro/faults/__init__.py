"""``repro.faults`` — deterministic chaos-engineering fault injection.

The reproduction's execution layer already honoured one failure knob
(``forced_failures`` on the Condor engines); everything else — the VO
service clients, the RLS, GRAM submission, stage-in transfers — was
assumed perfect.  Production Grid astronomy is the opposite: transient
archive timeouts, stale replica catalogs and flaky sites are the norm.

This package makes every subsystem *injectable with faults*:

* :mod:`repro.faults.plan` — :class:`FaultPlan` (frozen, declarative
  description of what should break, how often, and for how long) and the
  :class:`FaultInjector` it compiles to.  All draws derive from
  :func:`~repro.utils.rng.derive_rng` label paths, so a fault schedule is
  bit-identical across runs and process pools.  A ``None`` plan is the
  default everywhere and costs nothing — not even an attribute test on
  most hot paths, because the fault hooks are only installed when a plan
  is present.
* :mod:`repro.faults.profiles` — named, curated fault profiles used by the
  chaos CLI and CI: ``recoverable`` (the canonical profile the recovery
  invariant is asserted against), ``degraded-archives`` and ``grid-down``.
* :mod:`repro.faults.chaos` — the chaos harness: run a campaign twice
  (fault-free and under a profile) and check the recovery invariant —
  byte-identical merged VOTables for recoverable profiles, graceful
  quorum-annotated degradation for unrecoverable ones.

See ``docs/resilience.md`` for the fault taxonomy and the pairing between
each fault family and the mechanism that absorbs it.
"""

from __future__ import annotations

from repro.faults.plan import (
    FaultInjector,
    FaultPlan,
    RlsFaultSpec,
    ServiceFaultSpec,
    SiteFaultSpec,
)
from repro.faults.profiles import (
    CANONICAL_RECOVERABLE_PROFILE,
    available_profiles,
    get_profile,
)

__all__ = [
    "CANONICAL_RECOVERABLE_PROFILE",
    "FaultInjector",
    "FaultPlan",
    "RlsFaultSpec",
    "ServiceFaultSpec",
    "SiteFaultSpec",
    "available_profiles",
    "get_profile",
]
