"""Chaos campaigns: the recovery invariant, executed.

A chaos campaign runs the same portal workload twice on two independently
wired demonstration environments:

1. **baseline** — fault-free, the reference bytes;
2. **chaos** — the same seed and clusters with a :class:`FaultPlan`
   injected and the full resilience layer armed (retries, circuit
   breakers, health-aware replanning, replica verification + failover,
   scheduler requeue with rescue-bank resume, portal quorum).

For a profile that claims ``recoverable=True`` the invariant is strict:
every cluster's merged output VOTable must be **byte-identical** to the
baseline's.  For an unrecoverable profile the assertion is graceful
degradation instead: every job reaches a terminal state (nothing wedges),
failures carry a summary, and partial results are annotated.

The harness also *manufactures* the stale-RLS fault the plan declares:
for every LFN matching ``plan.rls.stale_lfns`` it deletes the replica's
bytes while leaving the catalog mapping in place — the lie the
verification/invalidation path must catch.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.faults.plan import FaultPlan
from repro.faults.profiles import get_profile
from repro.resilience.retry import RetryPolicy
from repro.scheduler.job import JobState
from repro.scheduler.journal import JobJournal
from repro.scheduler.service import WorkloadManager

#: Two small clusters keep the default campaign fast while still crossing
#: every fault surface (archives, cone searches, cutouts, RLS, all pools).
DEFAULT_CHAOS_CLUSTERS = ("A3526", "MS0451")

#: Markers the portal writes into a degraded output VOTable.
_DEGRADATION_MARKERS = (b"archive_error", b"dropped_galaxies", b"fault_partial")


@dataclass(frozen=True)
class ClusterOutcome:
    """One cluster's baseline-vs-chaos comparison."""

    cluster: str
    baseline_sha256: str
    chaos_sha256: str | None
    state: str
    attempts: int
    requeues: int
    error: str = ""
    degraded: bool = False

    @property
    def identical(self) -> bool:
        return self.chaos_sha256 is not None and self.chaos_sha256 == self.baseline_sha256

    def as_dict(self) -> dict[str, Any]:
        return {
            "cluster": self.cluster,
            "baseline_sha256": self.baseline_sha256,
            "chaos_sha256": self.chaos_sha256,
            "identical": self.identical,
            "state": self.state,
            "attempts": self.attempts,
            "requeues": self.requeues,
            "degraded": self.degraded,
            "error": self.error,
        }


@dataclass
class ChaosReport:
    """What one campaign proved (JSON-ready, deterministic field order)."""

    profile: str
    seed: int
    recoverable: bool
    outcomes: list[ClusterOutcome]
    injected: dict[str, int] = field(default_factory=dict)
    stale_replicas_created: int = 0
    breaker_states: dict[str, str] = field(default_factory=dict)

    @property
    def recovered(self) -> bool:
        """Every cluster completed with byte-identical output."""
        return all(o.state == "completed" and o.identical for o in self.outcomes)

    @property
    def graceful(self) -> bool:
        """Nothing wedged: every job reached a terminal state, and every
        failure carries an error summary."""
        for outcome in self.outcomes:
            if outcome.state not in ("completed", "failed", "cancelled"):
                return False
            if outcome.state == "failed" and not outcome.error:
                return False
        return True

    @property
    def passed(self) -> bool:
        """The profile's claim holds."""
        return self.recovered if self.recoverable else self.graceful

    def exit_code(self) -> int:
        """CLI contract: 0 only for a recovered recoverable profile."""
        if self.recoverable:
            return 0 if self.recovered else 1
        return 1  # degraded/failed runs are never a silent success

    def as_dict(self) -> dict[str, Any]:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "recoverable": self.recoverable,
            "recovered": self.recovered,
            "graceful": self.graceful,
            "passed": self.passed,
            "stale_replicas_created": self.stale_replicas_created,
            "injected_faults": dict(sorted(self.injected.items())),
            "total_injected": sum(self.injected.values()),
            "breaker_states": dict(sorted(self.breaker_states.items())),
            "clusters": [o.as_dict() for o in self.outcomes],
        }

    def summary(self) -> str:
        lines = [
            f"chaos profile {self.profile!r} (seed {self.seed}, "
            f"{'recoverable' if self.recoverable else 'unrecoverable'})",
            "",
            f"{'cluster':<10s} {'state':<10s} {'attempts':>8s} {'requeues':>8s} "
            f"{'identical':>9s} {'degraded':>8s}",
        ]
        for o in self.outcomes:
            lines.append(
                f"{o.cluster:<10s} {o.state:<10s} {o.attempts:>8d} {o.requeues:>8d} "
                f"{'yes' if o.identical else 'NO':>9s} "
                f"{'yes' if o.degraded else '-':>8s}"
            )
            if o.error:
                lines.append(f"           error: {o.error}")
        if self.injected:
            lines.append("")
            lines.append("injected faults:")
            for key, count in sorted(self.injected.items()):
                lines.append(f"  {key:<28s} {count}")
        if self.stale_replicas_created:
            lines.append(f"stale replicas manufactured: {self.stale_replicas_created}")
        if self.breaker_states:
            states = ", ".join(f"{s}={v}" for s, v in sorted(self.breaker_states.items()))
            lines.append(f"circuit breakers: {states}")
        lines.append("")
        if self.recoverable:
            lines.append(
                "recovery invariant: "
                + ("HELD (outputs byte-identical)" if self.recovered else "VIOLATED")
            )
        else:
            lines.append(
                "degradation hygiene: "
                + ("graceful (no wedged jobs)" if self.graceful else "NOT graceful")
            )
        return "\n".join(lines)


def _sha256(content: bytes) -> str:
    return hashlib.sha256(content).hexdigest()


def _make_stale_replicas(env: Any, plan: FaultPlan) -> int:
    """Delete the bytes behind catalog entries matching ``stale_lfns``.

    The RLS mapping survives — that *is* the fault: a catalog confidently
    pointing at storage that no longer holds the file.
    """
    suffixes = tuple(plan.rls.stale_lfns)
    if not suffixes:
        return 0
    broken = 0
    rls = env.vds.rls
    for site_name in rls.sites():
        storage = env.vds.sites.get(site_name)
        if storage is None:
            continue
        catalog = rls._catalogs[site_name]  # noqa: SLF001 - harness-only surgery
        for lfn in catalog.lfns():
            if not lfn.endswith(suffixes):
                continue
            for pfn in catalog.lookup(lfn):
                if storage.exists(pfn):
                    storage.delete(pfn)
                    broken += 1
    return broken


def _run_workload(
    env: Any,
    clusters: Sequence[str],
    requeue_policy: RetryPolicy | None,
    max_workers: int,
    timeout_s: float,
) -> dict[str, dict[str, Any]]:
    """Drain one environment's job set; returns per-cluster outcomes."""
    manager = WorkloadManager.for_environment(
        env,
        journal=JobJournal(None),
        max_workers=max_workers,
        requeue_policy=requeue_policy,
    )
    with manager:
        records = [manager.submit("chaos", cluster) for cluster in clusters]
        for record in records:
            manager.wait(record.job_id, timeout=timeout_s)
    results: dict[str, dict[str, Any]] = {}
    for record in records:
        content: bytes | None = None
        if record.state is JobState.COMPLETED:
            content = manager.result_bytes(record.job_id)
        results[record.spec.cluster] = {
            "state": record.state.value,
            "attempts": record.attempts,
            "content": content,
            "error": record.error,
        }
    return results


def run_chaos_campaign(
    profile: str = "recoverable",
    clusters: Sequence[str] | None = None,
    seed: int = 2003,
    max_workers: int = 2,
    requeue_attempts: int = 3,
    timeout_s: float = 600.0,
    plan: FaultPlan | None = None,
) -> ChaosReport:
    """Run baseline + chaos and check the profile's claim.

    ``plan`` overrides the named ``profile`` (tests hand-craft plans);
    the report still records the profile name it was asked for.
    """
    from repro.portal.demo import build_demo_environment
    from repro.sky.registry_data import demonstration_cluster

    if plan is None:
        plan = get_profile(profile, seed)
    names = tuple(clusters) if clusters else DEFAULT_CHAOS_CLUSTERS
    models = [demonstration_cluster(name) for name in names]

    # Baseline: fault-free reference bytes.
    baseline_env = build_demo_environment(clusters=models, seed=seed)
    baseline = _run_workload(
        baseline_env, names, requeue_policy=None, max_workers=max_workers,
        timeout_s=timeout_s,
    )
    for name, result in baseline.items():
        if result["content"] is None:
            raise RuntimeError(
                f"baseline run failed for {name!r}: {result['error'] or result['state']}"
            )

    # Chaos: same clusters, same seed, faults injected + resilience armed.
    chaos_env = build_demo_environment(
        clusters=models,
        seed=seed,
        fault_plan=plan,
        archive_quorum=1,
        cutout_quorum=1.0 if plan.recoverable else 0.5,
    )
    stale = _make_stale_replicas(chaos_env, plan)
    requeue = RetryPolicy(
        max_attempts=max(1, requeue_attempts),
        base_delay_s=0.05,
        max_delay_s=0.2,
        seed=seed,
    )
    chaos = _run_workload(
        chaos_env, names, requeue_policy=requeue, max_workers=max_workers,
        timeout_s=timeout_s,
    )

    outcomes: list[ClusterOutcome] = []
    for name in names:
        base_bytes = baseline[name]["content"]
        chaos_result = chaos[name]
        chaos_bytes = chaos_result["content"]
        degraded = bool(
            chaos_bytes is not None
            and any(marker in chaos_bytes for marker in _DEGRADATION_MARKERS)
        )
        outcomes.append(
            ClusterOutcome(
                cluster=name,
                baseline_sha256=_sha256(base_bytes),
                chaos_sha256=_sha256(chaos_bytes) if chaos_bytes is not None else None,
                state=chaos_result["state"],
                attempts=chaos_result["attempts"],
                requeues=max(0, chaos_result["attempts"] - 1),
                error=chaos_result["error"],
                degraded=degraded,
            )
        )

    injector = chaos_env.fault_injector
    health = chaos_env.health
    return ChaosReport(
        profile=profile,
        seed=seed,
        recoverable=plan.recoverable,
        outcomes=outcomes,
        injected=injector.injected() if injector is not None else {},
        stale_replicas_created=stale,
        breaker_states=health.states() if health is not None else {},
    )


# -- sharded campaigns ----------------------------------------------------------
@dataclass
class ShardChaosReport:
    """What a sharded campaign proved (baseline fleet vs chaos fleet)."""

    profile: str
    seed: int
    recoverable: bool
    shards: int
    outcomes: list[ClusterOutcome]
    killed_shard: str = ""
    relocated_jobs: int = 0
    cross_shard_hits: int = 0
    leaked_workers: int = 0
    fingerprint_stable: bool = True

    @property
    def recovered(self) -> bool:
        return (
            all(o.state == "completed" and o.identical for o in self.outcomes)
            and self.leaked_workers == 0
            and self.fingerprint_stable
        )

    @property
    def graceful(self) -> bool:
        for outcome in self.outcomes:
            if outcome.state not in ("completed", "failed", "cancelled"):
                return False
            if outcome.state == "failed" and not outcome.error:
                return False
        return self.leaked_workers == 0 and self.fingerprint_stable

    @property
    def passed(self) -> bool:
        return self.recovered if self.recoverable else self.graceful

    def exit_code(self) -> int:
        if self.recoverable:
            return 0 if self.recovered else 1
        return 1  # same contract as ChaosReport: degraded is never silent

    def as_dict(self) -> dict[str, Any]:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "recoverable": self.recoverable,
            "sharded": True,
            "shards": self.shards,
            "killed_shard": self.killed_shard,
            "relocated_jobs": self.relocated_jobs,
            "cross_shard_hits": self.cross_shard_hits,
            "leaked_workers": self.leaked_workers,
            "fingerprint_stable": self.fingerprint_stable,
            "recovered": self.recovered,
            "graceful": self.graceful,
            "passed": self.passed,
            "clusters": [o.as_dict() for o in self.outcomes],
        }

    def summary(self) -> str:
        lines = [
            f"sharded chaos profile {self.profile!r} (seed {self.seed}, "
            f"{self.shards} shards, "
            f"{'recoverable' if self.recoverable else 'unrecoverable'})",
            "",
            f"{'cluster':<10s} {'user':<8s} {'state':<10s} {'identical':>9s}",
        ]
        for o in self.outcomes:
            user = o.cluster.partition("|")[2] or "-"
            name = o.cluster.partition("|")[0]
            lines.append(
                f"{name:<10s} {user:<8s} {o.state:<10s} "
                f"{'yes' if o.identical else 'NO':>9s}"
            )
            if o.error:
                lines.append(f"           error: {o.error}")
        if self.killed_shard:
            lines.append("")
            lines.append(
                f"killed shard {self.killed_shard!r} mid-flight; "
                f"{self.relocated_jobs} job(s) relocated by journal replay"
            )
        lines.append(f"cross-shard cache hits: {self.cross_shard_hits}")
        lines.append(f"leaked worker processes: {self.leaked_workers}")
        lines.append(
            "global fingerprint: "
            + ("stable across replays" if self.fingerprint_stable else "UNSTABLE")
        )
        lines.append("")
        if self.recoverable:
            lines.append(
                "recovery invariant: "
                + ("HELD (outputs byte-identical)" if self.recovered else "VIOLATED")
            )
        else:
            lines.append(
                "degradation hygiene: "
                + ("graceful (no wedged jobs, no leaks)" if self.graceful else "NOT graceful")
            )
        return "\n".join(lines)


def _drain_fleet(
    fleet: Any,
    workload: Sequence[tuple[str, str]],
    timeout_s: float,
    kill_after_submit: bool = False,
) -> tuple[dict[tuple[str, str], dict[str, Any]], str]:
    """Submit a workload, optionally SIGKILL the busiest shard, drain."""
    records = [
        (user, cluster, fleet.submit(user, cluster)) for user, cluster in workload
    ]
    killed = ""
    if kill_after_submit:
        by_shard: dict[str, int] = {}
        for _, _, record in records:
            by_shard[record.shard] = by_shard.get(record.shard, 0) + 1
        if by_shard:
            killed = max(sorted(by_shard), key=lambda s: by_shard[s])
            fleet.kill_worker(killed)
    results: dict[tuple[str, str], dict[str, Any]] = {}
    for user, cluster, record in records:
        done = fleet.wait(record.job_id, timeout=timeout_s)
        content: bytes | None = None
        if done.state is JobState.COMPLETED:
            content = fleet.result_bytes(record.job_id)
        results[(user, cluster)] = {
            "state": done.state.value,
            "content": content,
            "error": done.error,
        }
    return results, killed


def run_sharded_chaos_campaign(
    profile: str = "worker-crash",
    shards: int = 4,
    jobs: int = 20,
    users: int = 4,
    seed: int = 2003,
    timeout_s: float = 600.0,
    data_dir: str | None = None,
) -> ShardChaosReport:
    """Baseline (single shard, fault-free) vs a sharded chaos fleet.

    ``worker-crash`` runs the cheap deterministic synthetic runner and
    manufactures the fault itself: one worker is SIGKILLed with jobs in
    flight, and the coordinator's journal-replay rebalance must finish the
    campaign byte-identical to the single-shard baseline.  Any other
    profile runs the portal runner with that fault plan installed inside
    *every* worker — ``grid-down`` over a sharded topology asserts the
    same hygiene as unsharded: terminal states everywhere, errors carried,
    and (new here) zero leaked worker processes.
    """
    import tempfile

    from repro.faults.profiles import get_profile as _get_profile
    from repro.shard.fleet import ShardFleet
    from repro.sky.registry_data import demonstration_cluster

    plan = _get_profile(profile, seed)
    crash_mode = profile == "worker-crash"
    if crash_mode:
        clusters = [f"CH{i:02d}" for i in range(jobs)]
        runner, fault_profile = "synthetic", ""
    else:
        # Portal profiles: the demonstration clusters, cycled over `jobs`.
        names = [demonstration_cluster(n).name for n in DEFAULT_CHAOS_CLUSTERS]
        clusters = [names[i % len(names)] for i in range(min(jobs, 2 * len(names)))]
        runner, fault_profile = "portal", profile
    workload = [
        (f"user{i % max(1, users)}", cluster) for i, cluster in enumerate(clusters)
    ]

    def _fleet_kwargs(n: int, faults: str) -> dict[str, Any]:
        kwargs: dict[str, Any] = {
            "shards": n,
            "runner": runner,
            "seed": seed,
            "fault_profile": faults,
        }
        if crash_mode:
            kwargs.update(base_seconds=0.05, spread_seconds=0.05, max_workers=1)
        return kwargs

    with tempfile.TemporaryDirectory() as scratch:
        root = data_dir if data_dir is not None else scratch

        # Baseline: one shard, fault-free — the single-shard reference bytes.
        base_fleet = ShardFleet(f"{root}/baseline", **_fleet_kwargs(1, ""))
        with base_fleet:
            baseline, _ = _drain_fleet(base_fleet, workload, timeout_s)
        leaked = len(base_fleet.leaked_processes())
        for (user, cluster), result in baseline.items():
            if result["content"] is None:
                raise RuntimeError(
                    f"baseline run failed for {cluster!r}/{user}: "
                    f"{result['error'] or result['state']}"
                )

        # Chaos: the sharded topology with the fault armed.
        chaos_fleet = ShardFleet(f"{root}/chaos", **_fleet_kwargs(shards, fault_profile))
        with chaos_fleet:
            chaos, killed = _drain_fleet(
                chaos_fleet, workload, timeout_s, kill_after_submit=crash_mode
            )
            relocated = len(chaos_fleet._aliases)  # noqa: SLF001 - harness introspection
            cross_hits = chaos_fleet.cross_shard_hits()
            fingerprint = chaos_fleet.global_fingerprint()
            stable = fingerprint == chaos_fleet.global_fingerprint()
        leaked += len(chaos_fleet.leaked_processes())

    outcomes = [
        ClusterOutcome(
            cluster=f"{cluster}|{user}",
            baseline_sha256=_sha256(baseline[(user, cluster)]["content"]),
            chaos_sha256=(
                _sha256(chaos[(user, cluster)]["content"])
                if chaos[(user, cluster)]["content"] is not None
                else None
            ),
            state=chaos[(user, cluster)]["state"],
            attempts=0,
            requeues=0,
            error=chaos[(user, cluster)]["error"],
        )
        for user, cluster in workload
    ]
    return ShardChaosReport(
        profile=profile,
        seed=seed,
        recoverable=plan.recoverable,
        shards=shards,
        outcomes=outcomes,
        killed_shard=killed,
        relocated_jobs=relocated,
        cross_shard_hits=cross_hits,
        leaked_workers=leaked,
        fingerprint_stable=stable,
    )
