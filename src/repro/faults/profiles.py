"""Named fault profiles for the chaos CLI, CI and the test suite.

A profile is a :class:`~repro.faults.plan.FaultPlan` factory keyed by a
short name.  The three curated profiles cover the failure landscape the
paper's production ancestors reported:

``recoverable`` (the *canonical* profile — CI's recovery invariant)
    Transient service timeouts on every query stream (bounded so the
    3-attempt retry ladder always wins), a hard outage of the UWisc pool
    (absorbed by per-node retries, the circuit breaker and a
    health-aware replan), RLS lookup hiccups, and one stale RLS entry
    (the pre-seeded Fermilab cutout replica loses its bytes; absorbed by
    replica verification + re-download).  A campaign under this profile
    must produce a merged VOTable byte-identical to the fault-free run.

``degraded-archives``
    Both X-ray archives are permanently down and the photometry cone
    search returns partial responses.  Unrecoverable by design: the
    portal must degrade gracefully — quorum-annotated partial catalog,
    per-archive error annotations in the output VOTable, nonzero exit —
    instead of failing the whole session.

``grid-down``
    Every galMorph pool is hard-down.  Nothing can recover this; the
    assertion is purely about failure hygiene: jobs reach a terminal
    FAILED state with a failure summary, nothing wedges, and the
    scheduler's queue accounting stays consistent.

All profiles take the run seed so their fault schedules ride the same
``derive_rng`` label tree as everything else.
"""

from __future__ import annotations

from typing import Callable

from repro.faults.plan import (
    FaultPlan,
    RlsFaultSpec,
    ServiceFaultSpec,
    SiteFaultSpec,
)

#: The profile name CI's recovery invariant is asserted against.
CANONICAL_RECOVERABLE_PROFILE = "recoverable"

#: A large attempt bound: with executor ``max_retries`` in the single
#: digits this means "down for the whole run".
HARD_OUTAGE = 99


def _recoverable(seed: int) -> FaultPlan:
    # max_faults=2 per stream with a 3-attempt retry policy makes the
    # profile recoverable *by construction*: even if both injected faults
    # land on the same logical call, the third attempt runs fault-free.
    transient_timeouts = ServiceFaultSpec(timeout_rate=0.35, max_faults=2)
    return FaultPlan(
        seed=seed,
        services={
            "cone-query": transient_timeouts,
            "sia-query": transient_timeouts,
            "xray-query": ServiceFaultSpec(error_rate=0.35, max_faults=2),
            "cutout-query": transient_timeouts,
            "cutout-fetch": ServiceFaultSpec(malformed_rate=0.35, max_faults=2),
        },
        sites={"uwisc": SiteFaultSpec(outage_attempts=HARD_OUTAGE)},
        rls=RlsFaultSpec(
            lookup_timeout_rate=0.25, max_timeouts=2, stale_lfns=(".fit",)
        ),
        recoverable=True,
    )


def _degraded_archives(seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        services={
            "xray-query": ServiceFaultSpec(error_rate=1.0, permanent=True),
            "cone-query": ServiceFaultSpec(partial_rate=0.5),
        },
        recoverable=False,
    )


def _grid_down(seed: int) -> FaultPlan:
    outage = SiteFaultSpec(outage_attempts=HARD_OUTAGE)
    return FaultPlan(
        seed=seed,
        sites={"isi": outage, "uwisc": outage, "fnal": outage},
        recoverable=False,
    )


def _slow_site(seed: int) -> FaultPlan:
    # The adversary the speculation layer must beat: UWisc stays alive
    # (nothing ever *fails*, so circuit breakers never trip) but every
    # compute attempt there is slowed by a deterministic lognormal tail —
    # median 4x, p95 in the tens.  Latency never changes bytes, so the
    # profile is recoverable by construction; the interesting assertions
    # are the makespan gates in benchmarks/run_scale_bench.py.  The small
    # wall unit gives local (thread-pool) runs a felt-but-bounded stall
    # so `repro chaos --profile slow-site` exercises the real executor's
    # straggler path in CI time.
    return FaultPlan(
        seed=seed,
        sites={
            "uwisc": SiteFaultSpec(
                slow_factor=4.0,
                slow_sigma=1.0,
                slow_max_factor=40.0,
                slow_wall_unit_s=0.02,
                slow_wall_cap_s=0.4,
            )
        },
        recoverable=True,
    )


def _worker_crash(seed: int) -> FaultPlan:
    # The fault is process death, not a service fault: the sharded chaos
    # harness manufactures it (SIGKILL of one shard worker mid-flight, the
    # way _make_stale_replicas manufactures the stale-RLS lie).  The plan
    # itself is clean; recoverable=True states the claim — the fleet's
    # journal-replay rebalance must land byte-identical outputs.
    return FaultPlan(seed=seed, recoverable=True)


_PROFILES: dict[str, Callable[[int], FaultPlan]] = {
    "recoverable": _recoverable,
    "degraded-archives": _degraded_archives,
    "grid-down": _grid_down,
    "slow-site": _slow_site,
    "worker-crash": _worker_crash,
}


def available_profiles() -> tuple[str, ...]:
    """Profile names, sorted, for CLI help and validation."""
    return tuple(sorted(_PROFILES))


def get_profile(name: str, seed: int = 2003) -> FaultPlan:
    """Instantiate the named profile at ``seed``.

    Raises ``ValueError`` (listing valid names) for unknown profiles so
    the CLI can surface a helpful message.
    """
    try:
        factory = _PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {name!r}; available: {', '.join(available_profiles())}"
        ) from None
    return factory(seed)
