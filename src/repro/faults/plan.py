"""Fault plans and the injector they compile to.

A :class:`FaultPlan` is a frozen, declarative answer to three questions:

* **which service calls fail, and how** — per-stream
  :class:`ServiceFaultSpec` (timeouts, transient 5xx-style errors,
  malformed/truncated payloads, partial responses);
* **which Grid sites misbehave** — per-site :class:`SiteFaultSpec`
  (outage windows on the sim clock, attempt-count outages, per-attempt
  flakiness, stage-in transfer failures);
* **how the replica catalog lies** — :class:`RlsFaultSpec` (lookup
  timeouts, LFNs whose registered PFNs have vanished).

Determinism contract
--------------------
Every stochastic decision is drawn from a :func:`~repro.utils.rng.derive_rng`
stream keyed by stable labels:

* single-threaded call sites (service clients, RLS) use a per-stream
  *counter*: the n-th cone query of a run sees the same fate in every run;
* concurrent call sites (executor worker pools) use *identity keys*
  ``(site, node_id, attempt)``: thread scheduling cannot reorder the
  draws, so the same node attempt fails in every run regardless of pool
  interleaving — the same trick the engines' ``forced_failures`` uses.

Zero-cost contract
------------------
``FaultPlan`` is only consulted at construction time: components receive a
compiled :class:`FaultInjector` (or ``None``, the default).  When no plan
is configured the fault branches are either absent entirely (hooks not
installed) or one ``is None`` test — the disabled-layer overhead gate in
``benchmarks/run_chaos_bench.py`` holds this below 1%.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.utils.rng import derive_rng

#: Service-fault streams the injector understands.  Keys of
#: :attr:`FaultPlan.services` must come from this set.  Optical SIA and
#: X-ray SIA are distinct streams so a profile can take the X-ray
#: archives down while the optical survey stays up (the quorum story).
SERVICE_STREAMS = (
    "cone-query",
    "sia-query",
    "sia-fetch",
    "xray-query",
    "xray-fetch",
    "cutout-query",
    "cutout-fetch",
)

#: Possible outcomes of :meth:`FaultInjector.service_action`.
SERVICE_ACTIONS = ("ok", "timeout", "error", "malformed", "partial")


@dataclass(frozen=True)
class ServiceFaultSpec:
    """How one VO-service stream misbehaves.

    Rates are per-call probabilities, checked in the order
    timeout → error → malformed → partial with a single uniform draw
    (so ``timeout_rate + error_rate + ... <= 1`` must hold).

    ``max_faults`` bounds the *total* number of injected faults on the
    stream — the knob that makes a profile recoverable by construction:
    with ``max_faults`` smaller than the retry budget, every call
    eventually succeeds.  ``None`` means unbounded (degradation
    profiles).  ``permanent=True`` turns every fault into a
    :class:`~repro.core.errors.PermanentServiceError`-style failure the
    retry layer must *not* absorb.
    """

    timeout_rate: float = 0.0
    error_rate: float = 0.0
    malformed_rate: float = 0.0
    partial_rate: float = 0.0
    max_faults: int | None = None
    permanent: bool = False

    def __post_init__(self) -> None:
        total = (
            self.timeout_rate + self.error_rate + self.malformed_rate + self.partial_rate
        )
        if not 0.0 <= total <= 1.0:
            raise ValueError("service fault rates must sum to within [0, 1]")
        for rate in (
            self.timeout_rate,
            self.error_rate,
            self.malformed_rate,
            self.partial_rate,
        ):
            if rate < 0.0:
                raise ValueError("fault rates must be non-negative")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults must be non-negative")


@dataclass(frozen=True)
class SiteFaultSpec:
    """How one Grid site misbehaves.

    ``outage_attempts``
        Every node attempt numbered ``<= outage_attempts`` (1-based,
        per node) on this site fails outright.  A large value models a
        hard outage: since per-node attempts are bounded by the
        executor's ``max_retries``, the site is effectively down for the
        whole run and recovery must come from a replan that routes
        around it.  Identity-keyed on ``(node_id, attempt)``, so the
        schedule is deterministic under any pool interleaving.
    ``outages``
        Sim-clock windows ``(start_s, end_s)`` during which every attempt
        fails; only the simulator consults these.
    ``flakiness``
        Per-attempt failure probability (identity-keyed draw).
    ``stage_in_failure_rate``
        Per-transfer probability that a stage-in/out copy from/to this
        site raises a transient transport error (identity-keyed).
    ``slow_factor`` / ``slow_sigma`` / ``slow_max_factor``
        Heavy-tail service latency: every compute attempt on this site is
        slowed by ``slow_factor × lognormal(0, slow_sigma)``, clipped to
        ``[1, slow_max_factor]`` and identity-keyed on ``(node_id,
        attempt)``.  ``slow_factor=1.0`` with ``slow_sigma=0`` (the
        default) disables the model.  The site stays *alive* — nothing
        fails — which is exactly the adversary circuit breakers cannot
        see and the speculation layer exists to beat.
    ``slow_wall_unit_s`` / ``slow_wall_cap_s``
        How the thread-pool executor realises a slowdown factor as real
        wall time: ``min(cap, (factor - 1) × unit)`` seconds of sleep
        before the node body.  ``unit=0`` (default) keeps local runs at
        full speed while the simulator still sees the virtual tail.
    """

    outage_attempts: int = 0
    outages: tuple[tuple[float, float], ...] = ()
    flakiness: float = 0.0
    stage_in_failure_rate: float = 0.0
    slow_factor: float = 1.0
    slow_sigma: float = 0.0
    slow_max_factor: float = 50.0
    slow_wall_unit_s: float = 0.0
    slow_wall_cap_s: float = 1.0

    def __post_init__(self) -> None:
        if self.outage_attempts < 0:
            raise ValueError("outage_attempts must be non-negative")
        if not 0.0 <= self.flakiness <= 1.0:
            raise ValueError("flakiness must be in [0, 1]")
        if not 0.0 <= self.stage_in_failure_rate <= 1.0:
            raise ValueError("stage_in_failure_rate must be in [0, 1]")
        for start, end in self.outages:
            if end < start:
                raise ValueError(f"outage window ({start}, {end}) ends before it starts")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1.0 (it multiplies service time)")
        if self.slow_sigma < 0.0:
            raise ValueError("slow_sigma must be non-negative")
        if self.slow_max_factor < self.slow_factor:
            raise ValueError("slow_max_factor must be >= slow_factor")
        if self.slow_wall_unit_s < 0.0 or self.slow_wall_cap_s < 0.0:
            raise ValueError("slow wall-time knobs must be non-negative")

    @property
    def slow_enabled(self) -> bool:
        return self.slow_factor > 1.0 or self.slow_sigma > 0.0


@dataclass(frozen=True)
class RlsFaultSpec:
    """How the Replica Location Service misbehaves.

    ``lookup_timeout_rate`` / ``max_timeouts``
        Probability that a lookup/exists call times out transiently, and
        a cap on the total number of injected timeouts (``None`` =
        unbounded).
    ``stale_lfns``
        LFN substrings whose *first registered replica* should be turned
        stale by the chaos harness before the run: the mapping stays in
        the catalog but the bytes at the PFN are deleted, exercising the
        verify-unregister-failover path.
    """

    lookup_timeout_rate: float = 0.0
    max_timeouts: int | None = None
    stale_lfns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.lookup_timeout_rate <= 1.0:
            raise ValueError("lookup_timeout_rate must be in [0, 1]")
        if self.max_timeouts is not None and self.max_timeouts < 0:
            raise ValueError("max_timeouts must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """The full declarative chaos configuration for one run.

    ``recoverable`` is the plan author's *claim* about the profile: the
    chaos harness asserts byte-identical output when it is ``True`` and
    asserts graceful degradation when it is ``False``.
    """

    seed: int = 2003
    services: dict[str, ServiceFaultSpec] = field(default_factory=dict)
    sites: dict[str, SiteFaultSpec] = field(default_factory=dict)
    rls: RlsFaultSpec = field(default_factory=RlsFaultSpec)
    recoverable: bool = True

    def __post_init__(self) -> None:
        unknown = set(self.services) - set(SERVICE_STREAMS)
        if unknown:
            raise ValueError(
                f"unknown service fault streams: {sorted(unknown)}; "
                f"valid streams: {SERVICE_STREAMS}"
            )

    def injector(self) -> FaultInjector:
        """Compile this plan into a thread-safe runtime injector."""
        return FaultInjector(self)


class FaultInjector:
    """Runtime fault oracle compiled from a :class:`FaultPlan`.

    Thread-safe: the per-stream counters are guarded by one lock (the
    counter streams are only used from single-threaded call sites, but a
    shared injector may be consulted from the executor pool for
    identity-keyed draws, which are lock-free and stateless).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._service_calls: dict[str, int] = {}
        self._service_faults: dict[str, int] = {}
        self._rls_calls = 0
        self._rls_timeouts = 0
        self._injected: dict[tuple[str, str], int] = {}

    # -- bookkeeping -------------------------------------------------------

    def _record(self, stream: str, action: str) -> None:
        key = (stream, action)
        self._injected[key] = self._injected.get(key, 0) + 1

    def injected(self) -> dict[str, int]:
        """Snapshot ``{"stream/action": count}`` of every injected fault."""
        with self._lock:
            return {
                f"{stream}/{action}": count
                for (stream, action), count in sorted(self._injected.items())
            }

    def total_injected(self) -> int:
        with self._lock:
            return sum(self._injected.values())

    # -- VO service faults -------------------------------------------------

    def service_action(self, stream: str) -> str:
        """Fate of the next call on ``stream``: one of SERVICE_ACTIONS.

        Counter-based: the n-th call of a stream draws from
        ``derive_rng(seed, "fault", stream, n)`` — independent of wall
        time, thread identity and everything else.
        """
        spec = self.plan.services.get(stream)
        if spec is None:
            return "ok"
        with self._lock:
            n = self._service_calls.get(stream, 0)
            self._service_calls[stream] = n + 1
            faults = self._service_faults.get(stream, 0)
            if spec.max_faults is not None and faults >= spec.max_faults:
                return "ok"
            draw = float(derive_rng(self.plan.seed, "fault", stream, n).random())
            action = "ok"
            threshold = spec.timeout_rate
            if draw < threshold:
                action = "timeout"
            elif draw < (threshold := threshold + spec.error_rate):
                action = "error"
            elif draw < (threshold := threshold + spec.malformed_rate):
                action = "malformed"
            elif draw < threshold + spec.partial_rate:
                action = "partial"
            if action != "ok":
                self._service_faults[stream] = faults + 1
                self._record(stream, action)
            return action

    def service_fault_is_permanent(self, stream: str) -> bool:
        spec = self.plan.services.get(stream)
        return bool(spec is not None and spec.permanent)

    # -- Grid site faults --------------------------------------------------

    def site_attempt_fails(
        self, site: str, node_id: str, attempt: int, now: float | None = None
    ) -> bool:
        """Should this node attempt on ``site`` fail?

        Identity-keyed: the draw depends only on ``(site, node_id,
        attempt)`` so concurrent executors get the same schedule in every
        run.  ``now`` (sim-clock seconds) activates outage windows; the
        thread-pool executor passes ``None`` and only sees
        ``outage_attempts`` + ``flakiness``.
        """
        spec = self.plan.sites.get(site)
        if spec is None:
            return False
        if 0 < attempt <= spec.outage_attempts:
            with self._lock:
                self._record(f"site:{site}", "outage")
            return True
        if now is not None:
            for start, end in spec.outages:
                if start <= now <= end:
                    with self._lock:
                        self._record(f"site:{site}", "outage-window")
                    return True
        if spec.flakiness > 0.0:
            draw = float(
                derive_rng(
                    self.plan.seed, "site-flake", site, node_id, attempt
                ).random()
            )
            if draw < spec.flakiness:
                with self._lock:
                    self._record(f"site:{site}", "flake")
                return True
        return False

    def site_slowdown(self, site: str, node_id: str, attempt: int) -> float:
        """Service-time multiplier (>= 1.0) for this attempt on ``site``.

        Deterministic heavy tail: ``slow_factor × lognormal(0,
        slow_sigma)`` clipped to ``[1, slow_max_factor]``, drawn from an
        identity-keyed stream so a given attempt is equally slow in every
        run and under any executor interleaving.  Sites without a slow
        spec — and the ``faults is None`` fast path in the executors —
        cost nothing.
        """
        spec = self.plan.sites.get(site)
        if spec is None or not spec.slow_enabled:
            return 1.0
        rng = derive_rng(self.plan.seed, "site-slow", site, node_id, attempt)
        factor = spec.slow_factor * float(rng.lognormal(0.0, spec.slow_sigma)) if spec.slow_sigma > 0 else spec.slow_factor
        factor = min(max(1.0, factor), spec.slow_max_factor)
        if factor > 1.0:
            with self._lock:
                self._record(f"site:{site}", "slow")
        return factor

    def site_wall_delay(self, site: str, node_id: str, attempt: int) -> float:
        """Real seconds the thread-pool executor should stall this attempt.

        ``min(slow_wall_cap_s, (slowdown - 1) × slow_wall_unit_s)`` —
        the local engine feels the same deterministic tail shape as the
        simulator, scaled down to test-friendly wall time.
        """
        spec = self.plan.sites.get(site)
        if spec is None or not spec.slow_enabled or spec.slow_wall_unit_s <= 0.0:
            return 0.0
        factor = self.site_slowdown(site, node_id, attempt)
        return min(spec.slow_wall_cap_s, (factor - 1.0) * spec.slow_wall_unit_s)

    def transfer_fails(self, site: str, node_id: str, attempt: int) -> bool:
        """Should this stage-in/out transfer touching ``site`` fail?"""
        spec = self.plan.sites.get(site)
        if spec is None or spec.stage_in_failure_rate == 0.0:
            return False
        draw = float(
            derive_rng(self.plan.seed, "xfer-flake", site, node_id, attempt).random()
        )
        if draw < spec.stage_in_failure_rate:
            with self._lock:
                self._record(f"site:{site}", "transfer")
            return True
        return False

    # -- RLS faults --------------------------------------------------------

    def rls_lookup_times_out(self) -> bool:
        """Should the next RLS lookup/exists call time out transiently?"""
        spec = self.plan.rls
        if spec.lookup_timeout_rate == 0.0:
            return False
        with self._lock:
            n = self._rls_calls
            self._rls_calls += 1
            if spec.max_timeouts is not None and self._rls_timeouts >= spec.max_timeouts:
                return False
            draw = float(derive_rng(self.plan.seed, "fault", "rls-lookup", n).random())
            if draw < spec.lookup_timeout_rate:
                self._rls_timeouts += 1
                self._record("rls", "lookup-timeout")
                return True
            return False
