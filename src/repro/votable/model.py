"""In-memory VOTable model: typed fields and row storage.

Values are stored row-major as Python scalars (``float``, ``int``, ``bool``,
``str`` or ``None`` for nulls); columns are extractable as numpy arrays for
vectorised work.  The supported VOTable datatypes are the ones astronomical
services actually emit: ``boolean``, ``short``/``int``/``long``,
``float``/``double`` and variable-length ``char``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

#: datatype name -> (python caster, numpy dtype for column extraction)
DATATYPES: dict[str, tuple[Callable[[Any], Any], Any]] = {
    "boolean": (lambda v: bool(v), np.bool_),
    "short": (lambda v: int(v), np.int16),
    "int": (lambda v: int(v), np.int32),
    "long": (lambda v: int(v), np.int64),
    "float": (lambda v: float(v), np.float32),
    "double": (lambda v: float(v), np.float64),
    "char": (lambda v: str(v), object),
}


@dataclass(frozen=True)
class Field:
    """A VOTable FIELD declaration.

    ``ucd`` (Unified Content Descriptor) carries the astronomical semantics
    of the column — e.g. ``pos.eq.ra`` — and is what NVO tools key on.
    """

    name: str
    datatype: str
    unit: str = ""
    ucd: str = ""
    description: str = ""
    arraysize: str | None = None

    def __post_init__(self) -> None:
        if self.datatype not in DATATYPES:
            raise ValueError(
                f"unsupported VOTable datatype {self.datatype!r}; "
                f"expected one of {sorted(DATATYPES)}"
            )
        if not self.name:
            raise ValueError("FIELD requires a non-empty name")
        if self.datatype == "char" and self.arraysize is None:
            # char fields are variable-length strings by default; normalising
            # here keeps serialise/parse round-trips structurally equal.
            object.__setattr__(self, "arraysize", "*")

    def cast(self, value: Any) -> Any:
        """Coerce ``value`` to this field's python type (``None`` passes)."""
        if value is None:
            return None
        return DATATYPES[self.datatype][0](value)


class VOTable:
    """A single-TABLE VOTable document.

    The prototype only ever ships one TABLE per document, so the model
    collapses RESOURCE/TABLE into one object with ``name``/``description``
    metadata and PARAM key-values.
    """

    def __init__(
        self,
        fields: Sequence[Field],
        name: str = "",
        description: str = "",
        params: dict[str, str] | None = None,
    ) -> None:
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names: {names}")
        self.fields: tuple[Field, ...] = tuple(fields)
        self.name = name
        self.description = description
        self.params: dict[str, str] = dict(params or {})
        self._rows: list[tuple[Any, ...]] = []
        self._index: dict[str, int] = {f.name: i for i, f in enumerate(self.fields)}

    # -- construction --------------------------------------------------------
    def append(self, row: Sequence[Any] | dict[str, Any]) -> None:
        """Append one row, given positionally or by field name.

        Values are cast to the declared field types; missing dict keys
        become nulls.
        """
        if isinstance(row, dict):
            unknown = set(row) - set(self._index)
            if unknown:
                raise KeyError(f"row has unknown fields: {sorted(unknown)}")
            values: Iterable[Any] = (row.get(f.name) for f in self.fields)
        else:
            if len(row) != len(self.fields):
                raise ValueError(
                    f"row has {len(row)} values, table has {len(self.fields)} fields"
                )
            values = row
        self._rows.append(tuple(f.cast(v) for f, v in zip(self.fields, values)))

    def extend(self, rows: Iterable[Sequence[Any] | dict[str, Any]]) -> None:
        for row in rows:
            self.append(row)

    # -- access ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        for row in self._rows:
            yield {f.name: v for f, v in zip(self.fields, row)}

    def rows(self) -> list[tuple[Any, ...]]:
        """Raw row tuples (shared list copy; tuples are immutable)."""
        return list(self._rows)

    def row(self, i: int) -> dict[str, Any]:
        return {f.name: v for f, v in zip(self.fields, self._rows[i])}

    def field(self, name: str) -> Field:
        return self.fields[self._index[name]]

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def column(self, name: str) -> np.ndarray:
        """Extract a column as a numpy array (floats get NaN for nulls)."""
        idx = self._index[name]
        f = self.fields[idx]
        dtype = DATATYPES[f.datatype][1]
        raw = [r[idx] for r in self._rows]
        if f.datatype in ("float", "double"):
            return np.array([np.nan if v is None else v for v in raw], dtype=dtype)
        if any(v is None for v in raw):
            raise ValueError(
                f"column {name!r} has nulls and dtype {f.datatype}; "
                "use rows()/iteration for null-aware access"
            )
        return np.array(raw, dtype=dtype)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    # -- structure ---------------------------------------------------------------
    def copy_structure(self, name: str | None = None) -> "VOTable":
        """An empty table with the same fields/params (for derived tables)."""
        return VOTable(
            self.fields,
            name=self.name if name is None else name,
            description=self.description,
            params=dict(self.params),
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, VOTable)
            and self.fields == other.fields
            and self._rows == other._rows
            and self.params == other.params
            and self.name == other.name
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VOTable(name={self.name!r}, fields={len(self.fields)}, rows={len(self)})"
