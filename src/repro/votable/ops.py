"""General-purpose VOTable manipulations.

§4.2 of the paper: "Joining is one of a few general-purpose VOTable
manipulations that should be implemented as a generic, external service ...
In lieu of such a service, our portal combines data from different VOTables
in a simple way using a local software library it calls internally."  This
module *is* that library, made general: keyed joins, row selection, column
addition, and vertical stacking.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.votable.model import Field, VOTable


def _merged_fields(left: VOTable, right: VOTable, on: str, suffix: str) -> list[Field]:
    fields = list(left.fields)
    left_names = set(left.field_names())
    for f in right.fields:
        if f.name == on:
            continue
        if f.name in left_names:
            fields.append(Field(f.name + suffix, f.datatype, f.unit, f.ucd, f.description, f.arraysize))
        else:
            fields.append(f)
    return fields


def inner_join(left: VOTable, right: VOTable, on: str, suffix: str = "_2") -> VOTable:
    """Join two tables on equality of column ``on``; keep matching rows only.

    Name collisions from the right table are suffixed.  When a key occurs
    multiple times on either side the join is a full cross-product for that
    key, matching SQL semantics.
    """
    return _join(left, right, on, suffix, keep_unmatched=False)


def left_join(left: VOTable, right: VOTable, on: str, suffix: str = "_2") -> VOTable:
    """Join keeping all left rows; unmatched right columns become nulls."""
    return _join(left, right, on, suffix, keep_unmatched=True)


def _join(left: VOTable, right: VOTable, on: str, suffix: str, keep_unmatched: bool) -> VOTable:
    if on not in left.field_names():
        raise KeyError(f"join column {on!r} missing from left table")
    if on not in right.field_names():
        raise KeyError(f"join column {on!r} missing from right table")
    fields = _merged_fields(left, right, on, suffix)
    out = VOTable(fields, name=left.name, description=left.description, params={**right.params, **left.params})

    right_on_idx = right.field_names().index(on)
    buckets: dict[Any, list[tuple[Any, ...]]] = {}
    for row in right.rows():
        buckets.setdefault(row[right_on_idx], []).append(row)

    left_on_idx = left.field_names().index(on)
    n_right_extra = len(right.fields) - 1
    for lrow in left.rows():
        matches = buckets.get(lrow[left_on_idx], [])
        if matches:
            for rrow in matches:
                extra = tuple(v for i, v in enumerate(rrow) if i != right_on_idx)
                out.append(lrow + extra)
        elif keep_unmatched:
            out.append(lrow + (None,) * n_right_extra)
    return out


def select_rows(table: VOTable, predicate: Callable[[dict[str, Any]], bool]) -> VOTable:
    """Rows of ``table`` for which ``predicate(row_dict)`` is true."""
    out = table.copy_structure()
    for row_dict, raw in zip(table, table.rows()):
        if predicate(row_dict):
            out.append(raw)
    return out


def add_column(table: VOTable, field: Field, values: Sequence[Any]) -> VOTable:
    """Return a new table with ``field`` appended, populated from ``values``."""
    if len(values) != len(table):
        raise ValueError(f"got {len(values)} values for {len(table)} rows")
    out = VOTable(
        list(table.fields) + [field],
        name=table.name,
        description=table.description,
        params=dict(table.params),
    )
    for raw, value in zip(table.rows(), values):
        out.append(raw + (field.cast(value),))
    return out


def vstack(tables: Iterable[VOTable]) -> VOTable:
    """Concatenate tables with identical field structure vertically."""
    tables = list(tables)
    if not tables:
        raise ValueError("vstack requires at least one table")
    first = tables[0]
    for t in tables[1:]:
        if t.fields != first.fields:
            raise ValueError(
                f"field mismatch: {t.field_names()} != {first.field_names()}"
            )
    out = first.copy_structure()
    for t in tables:
        for raw in t.rows():
            out.append(raw)
    return out
