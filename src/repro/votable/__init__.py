"""VOTable: the XML tabular interchange format of the Virtual Observatory.

The paper transports every catalog — cone-search results, cutout references,
computed morphology parameters — as VOTables, and leans on their XML-ness to
transform them ("XSLT ... proved useful for integrating with the Chimera and
Pegasus software").  This package implements:

* a typed in-memory model (:class:`Field`, :class:`VOTable`),
* parsing and serialisation of the ``VOTABLE/RESOURCE/TABLE/FIELD/DATA/
  TABLEDATA`` document shape via :mod:`xml.etree.ElementTree`,
* the table *operations* the paper identifies as missing general services —
  column joins, selection, column merge (§4.2: "the ability to join VOTables
  in a general way"),
* the Mirage-native export the authors produced with an XSL stylesheet.
"""

from repro.votable.binary import parse_votable_binary, write_votable_binary
from repro.votable.model import Field, VOTable
from repro.votable.ops import (
    add_column,
    inner_join,
    left_join,
    select_rows,
    vstack,
)
from repro.votable.parser import parse_votable
from repro.votable.writer import iter_votable, to_mirage_format, write_votable

__all__ = [
    "Field",
    "VOTable",
    "add_column",
    "inner_join",
    "left_join",
    "select_rows",
    "vstack",
    "parse_votable",
    "parse_votable_binary",
    "write_votable_binary",
    "iter_votable",
    "write_votable",
    "to_mirage_format",
]
