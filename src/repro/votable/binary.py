"""VOTable BINARY serialisation: the spec's bulk-data encoding.

TABLEDATA (one XML element per cell) is convenient but bloated; the VOTable
standard's BINARY serialisation streams rows as packed big-endian values,
base64-encoded inside a ``<STREAM>`` element.  For the campaign's
561-galaxy catalogs this roughly halves the document size and removes the
per-cell XML parse cost — the kind of efficiency §3.1 anticipates from
"successors to these interfaces".

Encoding rules implemented (VOTable 1.x):

* ``boolean`` — one ASCII byte, ``T``/``F`` (``?`` for null);
* ``short``/``int``/``long`` — big-endian 2/4/8-byte integers;
* ``float``/``double`` — big-endian IEEE-754, NaN encodes null;
* variable-length ``char`` — a 4-byte length prefix then the ASCII bytes.

Integer nulls follow the spec's FIELD ``null`` convention: the writer
declares a sentinel value (INT_MIN of the width) and the parser maps it
back to ``None``.
"""

from __future__ import annotations

import base64
import struct
import xml.etree.ElementTree as ET

from repro.votable.model import Field, VOTable
from repro.votable.parser import NS, _find_children, _find_descendants, _localname

_INT_FORMATS = {"short": (">h", -(2**15)), "int": (">i", -(2**31)), "long": (">q", -(2**63))}
_FLOAT_FORMATS = {"float": ">f", "double": ">d"}


def _encode_cell(value, field: Field) -> bytes:
    dt = field.datatype
    if dt == "boolean":
        if value is None:
            return b"?"
        return b"T" if value else b"F"
    if dt in _INT_FORMATS:
        fmt, null = _INT_FORMATS[dt]
        return struct.pack(fmt, null if value is None else int(value))
    if dt in _FLOAT_FORMATS:
        return struct.pack(_FLOAT_FORMATS[dt], float("nan") if value is None else float(value))
    # variable-length char
    data = ("" if value is None else str(value)).encode("utf-8")
    return struct.pack(">I", len(data)) + data


def _decode_cell(buffer: bytes, offset: int, field: Field):
    dt = field.datatype
    if dt == "boolean":
        ch = buffer[offset : offset + 1]
        if ch == b"?":
            return None, offset + 1
        return ch == b"T", offset + 1
    if dt in _INT_FORMATS:
        fmt, null = _INT_FORMATS[dt]
        size = struct.calcsize(fmt)
        (value,) = struct.unpack_from(fmt, buffer, offset)
        return (None if value == null else value), offset + size
    if dt in _FLOAT_FORMATS:
        fmt = _FLOAT_FORMATS[dt]
        size = struct.calcsize(fmt)
        (value,) = struct.unpack_from(fmt, buffer, offset)
        return (None if value != value else value), offset + size  # NaN -> null
    (length,) = struct.unpack_from(">I", buffer, offset)
    offset += 4
    text = buffer[offset : offset + length].decode("utf-8")
    if len(text.encode("utf-8")) != length:
        raise ValueError("truncated char cell in BINARY stream")
    return (text if length else None), offset + length


def write_votable_binary(table: VOTable) -> str:
    """Serialise ``table`` with the BINARY stream encoding."""
    root = ET.Element("VOTABLE", {"version": "1.1", "xmlns": NS})
    resource = ET.SubElement(root, "RESOURCE")
    for key, value in table.params.items():
        ET.SubElement(
            resource, "PARAM", {"name": key, "value": value, "datatype": "char", "arraysize": "*"}
        )
    telem = ET.SubElement(resource, "TABLE", {"name": table.name} if table.name else {})
    if table.description:
        ET.SubElement(telem, "DESCRIPTION").text = table.description
    for f in table.fields:
        attrs = {"name": f.name, "datatype": f.datatype}
        if f.unit:
            attrs["unit"] = f.unit
        if f.ucd:
            attrs["ucd"] = f.ucd
        if f.arraysize is not None:
            attrs["arraysize"] = f.arraysize
        if f.datatype in _INT_FORMATS:
            attrs["null"] = str(_INT_FORMATS[f.datatype][1])
        ET.SubElement(telem, "FIELD", attrs)

    payload = bytearray()
    for row in table.rows():
        for value, f in zip(row, table.fields):
            payload += _encode_cell(value, f)
    data = ET.SubElement(telem, "DATA")
    binary = ET.SubElement(data, "BINARY")
    stream = ET.SubElement(binary, "STREAM", {"encoding": "base64"})
    stream.text = base64.b64encode(bytes(payload)).decode("ascii")
    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def parse_votable_binary(source: str | bytes) -> VOTable:
    """Parse a BINARY-serialised VOTable document."""
    if isinstance(source, bytes):
        source = source.decode("utf-8")
    root = ET.fromstring(source)
    if _localname(root.tag) != "VOTABLE":
        raise ValueError(f"not a VOTable document: root {root.tag!r}")
    tables = _find_descendants(root, "TABLE")
    if not tables:
        raise ValueError("document contains no TABLE")
    telem = tables[0]

    fields = []
    for felem in _find_children(telem, "FIELD"):
        fields.append(
            Field(
                name=felem.get("name", ""),
                datatype=felem.get("datatype", "char"),
                unit=felem.get("unit", ""),
                ucd=felem.get("ucd", ""),
                arraysize=felem.get("arraysize"),
            )
        )
    params = {
        p.get("name", ""): p.get("value", "")
        for p in _find_descendants(root, "PARAM")
        if p.get("name")
    }
    desc_elems = _find_children(telem, "DESCRIPTION")
    table = VOTable(
        fields,
        name=telem.get("name", ""),
        description=(desc_elems[0].text or "").strip() if desc_elems else "",
        params=params,
    )

    streams = _find_descendants(telem, "STREAM")
    if not streams:
        raise ValueError("BINARY serialisation requires a STREAM element")
    raw = base64.b64decode(streams[0].text or "")
    offset = 0
    while offset < len(raw):
        row = []
        for f in fields:
            value, offset = _decode_cell(raw, offset, f)
            row.append(value)
        table.append(row)
    return table
