"""VOTable XML serialisation and the Mirage-format export.

The paper supported the IBM Mirage visualisation tool "by creating an XSL
stylesheet that transformed the VOTable into the tool's native format";
:func:`to_mirage_format` is that transform.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any

from repro.votable.model import VOTable
from repro.votable.parser import NS


def _format_cell(value: Any, datatype: str) -> str:
    if value is None:
        return ""
    if datatype == "boolean":
        return "T" if value else "F"
    if datatype in ("float", "double"):
        return repr(float(value))
    return str(value)


def write_votable(table: VOTable, namespaced: bool = True) -> str:
    """Serialise ``table`` to a VOTable XML string.

    ``namespaced=False`` emits the bare-element dialect many 2003-era
    services produced; :func:`repro.votable.parser.parse_votable` accepts
    both.
    """
    attrs = {"version": "1.1"}
    if namespaced:
        attrs["xmlns"] = NS
    root = ET.Element("VOTABLE", attrs)
    resource = ET.SubElement(root, "RESOURCE")
    for key, value in table.params.items():
        ET.SubElement(resource, "PARAM", {"name": key, "value": value, "datatype": "char", "arraysize": "*"})
    telem = ET.SubElement(resource, "TABLE", {"name": table.name} if table.name else {})
    if table.description:
        ET.SubElement(telem, "DESCRIPTION").text = table.description
    for f in table.fields:
        fattrs = {"name": f.name, "datatype": f.datatype}
        if f.unit:
            fattrs["unit"] = f.unit
        if f.ucd:
            fattrs["ucd"] = f.ucd
        if f.arraysize is not None:
            fattrs["arraysize"] = f.arraysize
        elif f.datatype == "char":
            fattrs["arraysize"] = "*"
        felem = ET.SubElement(telem, "FIELD", fattrs)
        if f.description:
            ET.SubElement(felem, "DESCRIPTION").text = f.description
    data = ET.SubElement(telem, "DATA")
    tabledata = ET.SubElement(data, "TABLEDATA")
    for row in table.rows():
        tr = ET.SubElement(tabledata, "TR")
        for value, f in zip(row, table.fields):
            ET.SubElement(tr, "TD").text = _format_cell(value, f.datatype)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def to_mirage_format(table: VOTable) -> str:
    """Render ``table`` in Mirage's native whitespace-delimited format.

    Mirage expects a ``format`` header line naming the variables followed by
    one whitespace-separated record per row; string cells are quoted and
    nulls written as ``-``.
    """
    lines = ["format " + " ".join(f.name for f in table.fields)]
    for row in table.rows():
        cells = []
        for value, f in zip(row, table.fields):
            if value is None:
                cells.append("-")
            elif f.datatype == "char":
                cells.append(f'"{value}"')
            elif f.datatype == "boolean":
                cells.append("1" if value else "0")
            else:
                cells.append(str(value))
        lines.append(" ".join(cells))
    return "\n".join(lines) + "\n"
