"""VOTable XML serialisation and the Mirage-format export.

The paper supported the IBM Mirage visualisation tool "by creating an XSL
stylesheet that transformed the VOTable into the tool's native format";
:func:`to_mirage_format` is that transform.

Serialisation is **incremental**: :func:`iter_votable` yields the document
as a sequence of string chunks — header, one chunk per block of rows, and
the closing tags — so the portal's streaming HTTP tier can ship a large
result table without ever materialising the whole document, and
:func:`write_votable` is simply the joined stream.  The chunks concatenate
to *byte-identical* output with the historical
:mod:`xml.etree.ElementTree`-based writer (pretty-printed with
``ET.indent``, ``<?xml version='1.0' encoding='utf-8'?>`` declaration, ET's
escaping rules), which the test suite pins against an ET reference
implementation.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.votable.model import VOTable
from repro.votable.parser import NS

#: Rows serialised per streamed chunk; small enough to start the response
#: immediately, large enough that per-chunk overhead is negligible.
DEFAULT_ROWS_PER_CHUNK = 256


def _format_cell(value: Any, datatype: str) -> str:
    if value is None:
        return ""
    if datatype == "boolean":
        return "T" if value else "F"
    if datatype in ("float", "double"):
        return repr(float(value))
    return str(value)


def _escape_cdata(text: str) -> str:
    """Element-text escaping, mirroring ElementTree's ``_escape_cdata``."""
    if "&" in text:
        text = text.replace("&", "&amp;")
    if "<" in text:
        text = text.replace("<", "&lt;")
    if ">" in text:
        text = text.replace(">", "&gt;")
    return text


def _escape_attrib(text: str) -> str:
    """Attribute-value escaping, mirroring ElementTree's ``_escape_attrib``."""
    if "&" in text:
        text = text.replace("&", "&amp;")
    if "<" in text:
        text = text.replace("<", "&lt;")
    if ">" in text:
        text = text.replace(">", "&gt;")
    if '"' in text:
        text = text.replace('"', "&quot;")
    if "\r" in text:
        text = text.replace("\r", "&#13;")
    if "\n" in text:
        text = text.replace("\n", "&#10;")
    if "\t" in text:
        text = text.replace("\t", "&#09;")
    return text


def _attrs(pairs: list[tuple[str, str]]) -> str:
    return "".join(f' {k}="{_escape_attrib(v)}"' for k, v in pairs)


def _field_attrs(f: Any) -> list[tuple[str, str]]:
    pairs = [("name", f.name), ("datatype", f.datatype)]
    if f.unit:
        pairs.append(("unit", f.unit))
    if f.ucd:
        pairs.append(("ucd", f.ucd))
    if f.arraysize is not None:
        pairs.append(("arraysize", f.arraysize))
    elif f.datatype == "char":
        pairs.append(("arraysize", "*"))
    return pairs


def _header(table: VOTable, namespaced: bool) -> str:
    """Everything up to (and including) the opening ``<TABLEDATA>`` line."""
    out: list[str] = ["<?xml version='1.0' encoding='utf-8'?>\n"]
    root_attrs = [("version", "1.1")]
    if namespaced:
        root_attrs.append(("xmlns", NS))
    out.append(f"<VOTABLE{_attrs(root_attrs)}>\n")
    out.append("  <RESOURCE>\n")
    for key, value in table.params.items():
        pairs = [
            ("name", key),
            ("value", value),
            ("datatype", "char"),
            ("arraysize", "*"),
        ]
        out.append(f"    <PARAM{_attrs(pairs)} />\n")
    table_attrs = [("name", table.name)] if table.name else []
    out.append(f"    <TABLE{_attrs(table_attrs)}>\n")
    if table.description:
        out.append(f"      <DESCRIPTION>{_escape_cdata(table.description)}</DESCRIPTION>\n")
    for f in table.fields:
        pairs = _field_attrs(f)
        if f.description:
            out.append(f"      <FIELD{_attrs(pairs)}>\n")
            out.append(f"        <DESCRIPTION>{_escape_cdata(f.description)}</DESCRIPTION>\n")
            out.append("      </FIELD>\n")
        else:
            out.append(f"      <FIELD{_attrs(pairs)} />\n")
    out.append("      <DATA>\n")
    if len(table):
        out.append("        <TABLEDATA>\n")
    else:
        # ET serialises a childless element self-closed.
        out.append("        <TABLEDATA />\n")
    return "".join(out)


def _footer(table: VOTable) -> str:
    out: list[str] = []
    if len(table):
        out.append("        </TABLEDATA>\n")
    out.append("      </DATA>\n")
    out.append("    </TABLE>\n")
    out.append("  </RESOURCE>\n")
    out.append("</VOTABLE>")  # ET emits no trailing newline
    return "".join(out)


def _render_rows(rows: list[tuple[Any, ...]], datatypes: list[str]) -> str:
    out: list[str] = []
    for row in rows:
        out.append("          <TR>\n")
        for value, datatype in zip(row, datatypes):
            cell = _format_cell(value, datatype)
            if cell:
                out.append(f"            <TD>{_escape_cdata(cell)}</TD>\n")
            else:
                # ET serialises empty text as a self-closed element.
                out.append("            <TD />\n")
        out.append("          </TR>\n")
    return "".join(out)


def iter_votable(
    table: VOTable,
    namespaced: bool = True,
    rows_per_chunk: int = DEFAULT_ROWS_PER_CHUNK,
) -> Iterator[str]:
    """Yield ``table`` as VOTable XML chunks (header, row blocks, footer).

    The concatenation of the chunks is exactly :func:`write_votable`'s
    output; no chunk boundary ever splits an element.  ``rows_per_chunk``
    bounds peak memory: only one block of serialised rows exists at a time.
    """
    if rows_per_chunk < 1:
        raise ValueError(f"rows_per_chunk must be positive, got {rows_per_chunk}")
    yield _header(table, namespaced)
    rows = table.rows()
    datatypes = [f.datatype for f in table.fields]
    for start in range(0, len(rows), rows_per_chunk):
        yield _render_rows(rows[start : start + rows_per_chunk], datatypes)
    yield _footer(table)


def write_votable(table: VOTable, namespaced: bool = True) -> str:
    """Serialise ``table`` to a VOTable XML string.

    ``namespaced=False`` emits the bare-element dialect many 2003-era
    services produced; :func:`repro.votable.parser.parse_votable` accepts
    both.
    """
    return "".join(iter_votable(table, namespaced=namespaced))


def to_mirage_format(table: VOTable) -> str:
    """Render ``table`` in Mirage's native whitespace-delimited format.

    Mirage expects a ``format`` header line naming the variables followed by
    one whitespace-separated record per row; string cells are quoted and
    nulls written as ``-``.
    """
    lines = ["format " + " ".join(f.name for f in table.fields)]
    for row in table.rows():
        cells = []
        for value, f in zip(row, table.fields):
            if value is None:
                cells.append("-")
            elif f.datatype == "char":
                cells.append(f'"{value}"')
            elif f.datatype == "boolean":
                cells.append("1" if value else "0")
            else:
                cells.append(str(value))
        lines.append(" ".join(cells))
    return "\n".join(lines) + "\n"
