"""VOTable XML parsing."""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any

from repro.votable.model import Field, VOTable

#: VOTable 1.1 namespace; we accept namespaced and bare documents alike.
NS = "http://www.ivoa.net/xml/VOTable/v1.1"


def _localname(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def _find_children(elem: ET.Element, name: str) -> list[ET.Element]:
    return [child for child in elem if _localname(child.tag) == name]


def _find_descendants(elem: ET.Element, name: str) -> list[ET.Element]:
    return [node for node in elem.iter() if _localname(node.tag) == name]


def _parse_cell(text: str | None, datatype: str) -> Any:
    if text is None:
        return None
    text = text.strip()
    if text == "":
        return None
    if datatype == "boolean":
        lowered = text.lower()
        if lowered in ("t", "true", "1"):
            return True
        if lowered in ("f", "false", "0"):
            return False
        raise ValueError(f"invalid boolean cell: {text!r}")
    if datatype == "char":
        return text
    if datatype in ("short", "int", "long"):
        return int(text)
    return float(text)


def parse_votable(source: str | bytes) -> VOTable:
    """Parse a VOTable document (string or UTF-8 bytes) into a :class:`VOTable`.

    Only the first TABLE of the first RESOURCE is read, matching the
    prototype's single-table payloads.  ``PARAM`` elements at RESOURCE or
    TABLE level become entries of :attr:`VOTable.params`.
    """
    if isinstance(source, bytes):
        source = source.decode("utf-8")
    root = ET.fromstring(source)
    if _localname(root.tag) != "VOTABLE":
        raise ValueError(f"not a VOTable document: root element {root.tag!r}")

    tables = _find_descendants(root, "TABLE")
    if not tables:
        raise ValueError("VOTable document contains no TABLE")
    table_elem = tables[0]

    fields = []
    for felem in _find_children(table_elem, "FIELD"):
        desc_elems = _find_children(felem, "DESCRIPTION")
        fields.append(
            Field(
                name=felem.get("name", ""),
                datatype=felem.get("datatype", "char"),
                unit=felem.get("unit", ""),
                ucd=felem.get("ucd", ""),
                arraysize=felem.get("arraysize"),
                description=(desc_elems[0].text or "").strip() if desc_elems else "",
            )
        )

    params: dict[str, str] = {}
    for pelem in _find_descendants(root, "PARAM"):
        name = pelem.get("name")
        if name:
            params[name] = pelem.get("value", "")

    name = table_elem.get("name", "")
    desc_elems = _find_children(table_elem, "DESCRIPTION")
    description = (desc_elems[0].text or "").strip() if desc_elems else ""

    table = VOTable(fields, name=name, description=description, params=params)

    for tr in _find_descendants(table_elem, "TR"):
        cells = [_parse_cell(td.text, f.datatype) for td, f in zip(_find_children(tr, "TD"), fields)]
        if len(cells) != len(fields):
            raise ValueError(
                f"row has {len(cells)} cells but table declares {len(fields)} fields"
            )
        table.append(cells)
    return table
