"""repro — a complete reproduction of the SC'03 NVO Galaxy Morphology paper.

The package mirrors the system the paper describes, layer by layer:

* formats: :mod:`repro.fits` (FITS images, binary tables, TAN WCS) and
  :mod:`repro.votable` (TABLEDATA + BINARY serialisations, table ops);
* astronomy: :mod:`repro.catalog` (sky geometry, cosmology, cross-match,
  DS9 regions), :mod:`repro.sky` (synthetic clusters + imagery),
  :mod:`repro.morphology` (the Conselice parameters);
* NVO services: :mod:`repro.services` (Cone Search, SIA, cutouts,
  registries, transport model);
* Grid middleware: :mod:`repro.vdl` (Chimera), :mod:`repro.workflow`,
  :mod:`repro.rls`, :mod:`repro.tc`, :mod:`repro.pegasus`,
  :mod:`repro.condor` (DAGMan, simulator, real executor, MDS, MyProxy,
  ClassAds);
* integration: :mod:`repro.core` (the Virtual Data System facade) and
  :mod:`repro.portal` (the end-to-end prototype: portal, compute web
  service, campaign driver, science analysis).

Quick start::

    from repro.portal import build_demo_environment
    from repro.portal.campaign import run_campaign

    env = build_demo_environment()
    report = run_campaign(env)
    print(report.totals_table())

or from a shell: ``python -m repro campaign``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
