"""The two-tier Replica Location Service.

Local Replica Catalogs (one per site) hold lfn -> pfn mappings; the Replica
Location Index records which sites know a given lfn.  The facade resolves a
logical name to all its physical replicas across the Grid — the query both
Pegasus reduction ("if data products described within the AW already
exist") and the feasibility check depend on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import telemetry
from repro.core.errors import ServiceTimeoutError
from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy, retry_call
from repro.utils.events import EventLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultInjector


@dataclass(frozen=True)
class Replica:
    """One physical copy of a logical file."""

    lfn: str
    pfn: str
    site: str


class LocalReplicaCatalog:
    """Per-site lfn -> {pfn} catalog."""

    def __init__(self, site: str) -> None:
        self.site = site
        self._mappings: dict[str, set[str]] = {}
        self._lock = threading.Lock()

    def register(self, lfn: str, pfn: str) -> None:
        with self._lock:
            self._mappings.setdefault(lfn, set()).add(pfn)

    def unregister(self, lfn: str, pfn: str | None = None) -> None:
        with self._lock:
            if lfn not in self._mappings:
                raise KeyError(f"{self.site}: no mapping for {lfn!r}")
            if pfn is None:
                del self._mappings[lfn]
            else:
                self._mappings[lfn].discard(pfn)
                if not self._mappings[lfn]:
                    del self._mappings[lfn]

    def lookup(self, lfn: str) -> list[str]:
        with self._lock:
            return sorted(self._mappings.get(lfn, ()))

    def lfns(self) -> list[str]:
        with self._lock:
            return list(self._mappings)

    def __len__(self) -> int:
        with self._lock:
            return len(self._mappings)


class ReplicaLocationService:
    """Facade over the LRCs + index: the service Pegasus queries.

    Query statistics are tracked so the Figure 2 benchmark can show the
    planner's (3) "Logical File Names" -> (4) "Physical File Names"
    exchange actually happening.
    """

    def __init__(
        self,
        event_log: EventLog | None = None,
        faults: "FaultInjector | None" = None,
        retry_policy: RetryPolicy | None = DEFAULT_RETRY_POLICY,
    ) -> None:
        self._catalogs: dict[str, LocalReplicaCatalog] = {}
        self._index: dict[str, set[str]] = {}  # lfn -> site names (the RLI)
        self._lock = threading.Lock()
        self.events = event_log if event_log is not None else EventLog()
        self.query_count = 0
        self.faults = faults
        self.retry_policy = retry_policy

    # -- fault plumbing ------------------------------------------------------
    def _guard(self) -> None:
        """Raise an injected lookup timeout (fault plans only)."""
        if self.faults.rls_lookup_times_out():
            raise ServiceTimeoutError("RLS: injected lookup timeout")

    def _with_retry(self, fn, label: str):
        """Run an index query under the shared retry policy.

        Only reached when a fault plan is installed — the fault-free path
        never pays for the wrapper.  Injected timeouts consume retry
        attempts; bounded profiles therefore always recover, unbounded
        ones propagate :class:`ServiceTimeoutError` to the planner.
        """

        def attempt():
            self._guard()
            return fn()

        def on_backoff(n: int, delay: float, exc: BaseException) -> None:
            telemetry.count("resilience_retries_total", target="rls")

        return retry_call(
            attempt, self.retry_policy, label=label, on_backoff=on_backoff
        )

    # -- site management -------------------------------------------------------
    def add_site(self, site: str) -> LocalReplicaCatalog:
        with self._lock:
            if site in self._catalogs:
                raise ValueError(f"site {site!r} already registered in the RLS")
            catalog = LocalReplicaCatalog(site)
            self._catalogs[site] = catalog
            return catalog

    def sites(self) -> list[str]:
        with self._lock:
            return list(self._catalogs)

    # -- mapping operations -------------------------------------------------------
    def register(self, lfn: str, pfn: str, site: str) -> None:
        """Publish a replica: update the site LRC and the index."""
        with self._lock:
            if site not in self._catalogs:
                raise KeyError(f"unknown site {site!r}; add_site it first")
            catalog = self._catalogs[site]
        catalog.register(lfn, pfn)
        with self._lock:
            self._index.setdefault(lfn, set()).add(site)
        telemetry.count("rls_registrations_total")

    def unregister(self, lfn: str, site: str, pfn: str | None = None) -> None:
        with self._lock:
            if site not in self._catalogs:
                raise KeyError(f"unknown site {site!r}")
            catalog = self._catalogs[site]
        catalog.unregister(lfn, pfn)
        if not catalog.lookup(lfn):
            with self._lock:
                sites = self._index.get(lfn)
                if sites:
                    sites.discard(site)
                    if not sites:
                        del self._index[lfn]

    def lookup(self, lfn: str) -> list[Replica]:
        """All replicas of ``lfn``, across all sites (index-directed)."""
        if self.faults is not None:
            return self._with_retry(lambda: self._lookup_impl(lfn), f"rls/{lfn}")
        return self._lookup_impl(lfn)

    def _lookup_impl(self, lfn: str) -> list[Replica]:
        with self._lock:
            self.query_count += 1
            sites = sorted(self._index.get(lfn, ()))
            catalogs = [self._catalogs[s] for s in sites]
        replicas = [
            Replica(lfn=lfn, pfn=pfn, site=catalog.site)
            for catalog in catalogs
            for pfn in catalog.lookup(lfn)
        ]
        telemetry.count("rls_lookup_hits_total" if replicas else "rls_lookup_misses_total")
        return replicas

    def exists(self, lfn: str) -> bool:
        if self.faults is not None:
            return self._with_retry(lambda: self._exists_impl(lfn), f"rls-exists/{lfn}")
        return self._exists_impl(lfn)

    def _exists_impl(self, lfn: str) -> bool:
        with self._lock:
            self.query_count += 1
            found = lfn in self._index
        telemetry.count("rls_lookup_hits_total" if found else "rls_lookup_misses_total")
        return found

    def lookup_many(self, lfns: list[str]) -> dict[str, list[Replica]]:
        """Bulk query, as the planner issues for a whole workflow at once."""
        return {lfn: self.lookup(lfn) for lfn in lfns}

    def invalidate_stale(self, replica: Replica) -> None:
        """Drop a mapping whose PFN turned out not to exist.

        The replica-failover paths (portal image collection, executor
        stage-in) call this when verification of a catalog entry fails:
        the stale mapping is removed so no later plan trips over it, and
        the invalidation is counted for the chaos report.
        """
        try:
            self.unregister(replica.lfn, replica.site, replica.pfn)
        except KeyError:
            return  # already gone — another worker invalidated it first
        telemetry.count("rls_stale_invalidations_total", site=replica.site)
        self.events.emit(
            0.0,
            "rls",
            "stale-replica-invalidated",
            lfn=replica.lfn,
            site=replica.site,
            pfn=replica.pfn,
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)


class ShardedReplicaLocationService:
    """A Giggle-style *distributed* replica index: one RLS per partition.

    The single-process :class:`ReplicaLocationService` is the two-tier
    LRC/RLI design collapsed into one index; this facade is the scale-out
    form the paper actually describes: logical names hash to a partition
    (via the fleet's consistent ring), each partition runs a full RLS of
    its own, and a thin **directory** — lfn -> partitions that registered
    it — spans them so a lookup is two cheap steps (directory, then only
    the partitions that matter) instead of a broadcast.

    The directory deliberately outlives ring changes: an lfn registered
    when its tile lived on partition A is still found after the tile
    remaps to partition B, because resolution trusts the directory first
    and only uses the ring for *new* registrations.  That is the same
    contract the fleet's signature store provides for result reuse.
    """

    def __init__(self, partitions: dict[str, ReplicaLocationService], ring: "object") -> None:
        if not partitions:
            raise ValueError("a sharded RLS needs at least one partition")
        self.partitions = dict(partitions)
        self.ring = ring  # anything with node_for(key) -> partition name
        self._directory: dict[str, set[str]] = {}
        self._lock = threading.Lock()
        self.query_count = 0

    def partition_for(self, lfn: str) -> str:
        name = self.ring.node_for(lfn)
        if name not in self.partitions:
            raise KeyError(f"ring placed {lfn!r} on unknown partition {name!r}")
        return name

    def register(self, lfn: str, pfn: str, site: str) -> None:
        name = self.partition_for(lfn)
        partition = self.partitions[name]
        if site not in partition.sites():
            partition.add_site(site)
        partition.register(lfn, pfn, site)
        with self._lock:
            self._directory.setdefault(lfn, set()).add(name)

    def _partitions_knowing(self, lfn: str) -> list[str]:
        with self._lock:
            self.query_count += 1
            known = sorted(self._directory.get(lfn, ()))
        if known:
            return known
        # Not in the directory: the ring's current owner is the only
        # candidate (covers partitions pre-seeded outside this facade).
        return [self.partition_for(lfn)]

    def lookup(self, lfn: str) -> list[Replica]:
        replicas: list[Replica] = []
        for name in self._partitions_knowing(lfn):
            replicas.extend(self.partitions[name].lookup(lfn))
        return replicas

    def exists(self, lfn: str) -> bool:
        return any(
            self.partitions[name].exists(lfn)
            for name in self._partitions_knowing(lfn)
        )

    def unregister(self, lfn: str, site: str, pfn: str | None = None) -> None:
        for name in self._partitions_knowing(lfn):
            partition = self.partitions[name]
            try:
                partition.unregister(lfn, site, pfn)
            except KeyError:
                continue
            if not partition.exists(lfn):
                with self._lock:
                    known = self._directory.get(lfn)
                    if known:
                        known.discard(name)
                        if not known:
                            del self._directory[lfn]

    def directory_snapshot(self) -> dict[str, list[str]]:
        """lfn -> partitions, for introspection and the shard map CLI."""
        with self._lock:
            return {lfn: sorted(names) for lfn, names in self._directory.items()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._directory)
