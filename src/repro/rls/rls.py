"""The two-tier Replica Location Service.

Local Replica Catalogs (one per site) hold lfn -> pfn mappings; the Replica
Location Index records which sites know a given lfn.  The facade resolves a
logical name to all its physical replicas across the Grid — the query both
Pegasus reduction ("if data products described within the AW already
exist") and the feasibility check depend on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro import telemetry
from repro.utils.events import EventLog


@dataclass(frozen=True)
class Replica:
    """One physical copy of a logical file."""

    lfn: str
    pfn: str
    site: str


class LocalReplicaCatalog:
    """Per-site lfn -> {pfn} catalog."""

    def __init__(self, site: str) -> None:
        self.site = site
        self._mappings: dict[str, set[str]] = {}
        self._lock = threading.Lock()

    def register(self, lfn: str, pfn: str) -> None:
        with self._lock:
            self._mappings.setdefault(lfn, set()).add(pfn)

    def unregister(self, lfn: str, pfn: str | None = None) -> None:
        with self._lock:
            if lfn not in self._mappings:
                raise KeyError(f"{self.site}: no mapping for {lfn!r}")
            if pfn is None:
                del self._mappings[lfn]
            else:
                self._mappings[lfn].discard(pfn)
                if not self._mappings[lfn]:
                    del self._mappings[lfn]

    def lookup(self, lfn: str) -> list[str]:
        with self._lock:
            return sorted(self._mappings.get(lfn, ()))

    def lfns(self) -> list[str]:
        with self._lock:
            return list(self._mappings)

    def __len__(self) -> int:
        with self._lock:
            return len(self._mappings)


class ReplicaLocationService:
    """Facade over the LRCs + index: the service Pegasus queries.

    Query statistics are tracked so the Figure 2 benchmark can show the
    planner's (3) "Logical File Names" -> (4) "Physical File Names"
    exchange actually happening.
    """

    def __init__(self, event_log: EventLog | None = None) -> None:
        self._catalogs: dict[str, LocalReplicaCatalog] = {}
        self._index: dict[str, set[str]] = {}  # lfn -> site names (the RLI)
        self._lock = threading.Lock()
        self.events = event_log if event_log is not None else EventLog()
        self.query_count = 0

    # -- site management -------------------------------------------------------
    def add_site(self, site: str) -> LocalReplicaCatalog:
        with self._lock:
            if site in self._catalogs:
                raise ValueError(f"site {site!r} already registered in the RLS")
            catalog = LocalReplicaCatalog(site)
            self._catalogs[site] = catalog
            return catalog

    def sites(self) -> list[str]:
        with self._lock:
            return list(self._catalogs)

    # -- mapping operations -------------------------------------------------------
    def register(self, lfn: str, pfn: str, site: str) -> None:
        """Publish a replica: update the site LRC and the index."""
        with self._lock:
            if site not in self._catalogs:
                raise KeyError(f"unknown site {site!r}; add_site it first")
            catalog = self._catalogs[site]
        catalog.register(lfn, pfn)
        with self._lock:
            self._index.setdefault(lfn, set()).add(site)
        telemetry.count("rls_registrations_total")

    def unregister(self, lfn: str, site: str, pfn: str | None = None) -> None:
        with self._lock:
            if site not in self._catalogs:
                raise KeyError(f"unknown site {site!r}")
            catalog = self._catalogs[site]
        catalog.unregister(lfn, pfn)
        if not catalog.lookup(lfn):
            with self._lock:
                sites = self._index.get(lfn)
                if sites:
                    sites.discard(site)
                    if not sites:
                        del self._index[lfn]

    def lookup(self, lfn: str) -> list[Replica]:
        """All replicas of ``lfn``, across all sites (index-directed)."""
        with self._lock:
            self.query_count += 1
            sites = sorted(self._index.get(lfn, ()))
            catalogs = [self._catalogs[s] for s in sites]
        replicas = [
            Replica(lfn=lfn, pfn=pfn, site=catalog.site)
            for catalog in catalogs
            for pfn in catalog.lookup(lfn)
        ]
        telemetry.count("rls_lookup_hits_total" if replicas else "rls_lookup_misses_total")
        return replicas

    def exists(self, lfn: str) -> bool:
        with self._lock:
            self.query_count += 1
            found = lfn in self._index
        telemetry.count("rls_lookup_hits_total" if found else "rls_lookup_misses_total")
        return found

    def lookup_many(self, lfns: list[str]) -> dict[str, list[Replica]]:
        """Bulk query, as the planner issues for a whole workflow at once."""
        return {lfn: self.lookup(lfn) for lfn in lfns}

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)
