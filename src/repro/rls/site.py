"""Storage sites: named byte stores with GridFTP-style URLs."""

from __future__ import annotations

import threading

from repro.core.errors import TransportError


class StorageSite:
    """A storage system at one Grid site.

    Files are addressed by physical file name (PFN).  The site tracks byte
    content (for real execution) or declared sizes (for simulation); both
    modes share the same bookkeeping so the §5 transfer accounting is
    identical either way.
    """

    def __init__(self, name: str, base_url: str | None = None) -> None:
        if not name:
            raise ValueError("storage site requires a name")
        self.name = name
        self.base_url = base_url if base_url is not None else f"gsiftp://{name}.grid"
        self._content: dict[str, bytes] = {}
        self._sizes: dict[str, int] = {}
        self._lock = threading.Lock()

    def pfn_for(self, lfn: str) -> str:
        """The canonical PFN this site would assign to a logical file."""
        return f"{self.base_url}/data/{lfn}"

    # -- writes ---------------------------------------------------------------
    def put(self, pfn: str, content: bytes) -> None:
        """Store real bytes under ``pfn``."""
        with self._lock:
            self._content[pfn] = content
            self._sizes[pfn] = len(content)

    def put_size(self, pfn: str, size: int) -> None:
        """Declare a file of ``size`` bytes without content (simulation)."""
        if size < 0:
            raise ValueError(f"negative file size: {size}")
        with self._lock:
            self._sizes[pfn] = size
            self._content.pop(pfn, None)

    def delete(self, pfn: str) -> None:
        with self._lock:
            if pfn not in self._sizes:
                raise TransportError(f"{self.name}: no such file {pfn!r}")
            self._sizes.pop(pfn)
            self._content.pop(pfn, None)

    # -- reads ------------------------------------------------------------------
    def exists(self, pfn: str) -> bool:
        with self._lock:
            return pfn in self._sizes

    def get(self, pfn: str) -> bytes:
        """Fetch real bytes; raises for size-only (simulated) files."""
        with self._lock:
            if pfn not in self._sizes:
                raise TransportError(f"{self.name}: no such file {pfn!r}")
            if pfn not in self._content:
                raise TransportError(
                    f"{self.name}: file {pfn!r} is simulation-only (size declared, no content)"
                )
            return self._content[pfn]

    def size(self, pfn: str) -> int:
        with self._lock:
            if pfn not in self._sizes:
                raise TransportError(f"{self.name}: no such file {pfn!r}")
            return self._sizes[pfn]

    def files(self) -> list[str]:
        with self._lock:
            return list(self._sizes)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(self._sizes.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StorageSite({self.name!r}, files={len(self._sizes)})"
