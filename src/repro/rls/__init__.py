"""Replica Location Service (Globus RLS / "Giggle") and storage sites.

Pegasus "uses services such as the Globus Replica Location Service" to map
logical file names to physical locations (§3.2).  The two-tier Giggle
design is reproduced: per-site Local Replica Catalogs (LRC) plus a Replica
Location Index (RLI) that knows *which site* holds a mapping, with the
combined facade :class:`ReplicaLocationService` the planner queries.

:class:`StorageSite` doubles as the actual byte store for the real
execution mode — transfer nodes move bytes between sites, and registered
PFNs resolve to real content.
"""

from repro.rls.rls import (
    LocalReplicaCatalog,
    Replica,
    ReplicaLocationService,
    ShardedReplicaLocationService,
)
from repro.rls.site import StorageSite

__all__ = [
    "Replica",
    "LocalReplicaCatalog",
    "ReplicaLocationService",
    "ShardedReplicaLocationService",
    "StorageSite",
]
