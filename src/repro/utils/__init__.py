"""Shared low-level utilities: identifiers, seeded RNG, event logging, units.

Everything in :mod:`repro` that needs randomness derives it from
:func:`repro.utils.rng.derive_rng` so that whole campaign runs are
reproducible from a single integer seed.
"""

from repro.utils.events import Event, EventLog
from repro.utils.ids import RequestId, new_request_id, sequential_namer
from repro.utils.rng import derive_rng, derive_seed
from repro.utils.timing import SimClock, WallTimer
from repro.utils.units import (
    MB,
    GB,
    KB,
    format_bytes,
    format_duration,
)

__all__ = [
    "Event",
    "EventLog",
    "RequestId",
    "new_request_id",
    "sequential_namer",
    "derive_rng",
    "derive_seed",
    "SimClock",
    "WallTimer",
    "KB",
    "MB",
    "GB",
    "format_bytes",
    "format_duration",
]
