"""Structured event log.

The planning pipeline of Figure 2 and the portal flow of Figure 5 are
specified as *numbered message sequences*.  To reproduce those figures we
record every significant action as an :class:`Event` in an :class:`EventLog`
and assert on the resulting trace in tests and benchmarks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class Event:
    """A single timestamped, categorised log record.

    Attributes
    ----------
    time:
        Simulation or wall-clock time at which the event occurred.
    source:
        Component that emitted the event (``"pegasus"``, ``"portal"``, ...).
    kind:
        Machine-readable event type (``"abstract-dag"``, ``"stage-in"``, ...).
    detail:
        Free-form payload for humans and assertions.
    """

    time: float
    source: str
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        payload = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.3f}] {self.source:>10s} {self.kind}: {payload}"


class EventLog:
    """Append-only, thread-safe sequence of :class:`Event` records."""

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._lock = threading.Lock()

    def emit(self, time: float, source: str, kind: str, **detail: Any) -> Event:
        """Record and return a new event."""
        event = Event(time=time, source=source, kind=kind, detail=dict(detail))
        with self._lock:
            self._events.append(event)
        return event

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        with self._lock:
            return iter(list(self._events))

    def of_kind(self, *kinds: str) -> list[Event]:
        """Events whose ``kind`` is one of ``kinds``, in emission order."""
        wanted = set(kinds)
        return [e for e in self if e.kind in wanted]

    def from_source(self, source: str) -> list[Event]:
        """Events emitted by ``source``, in emission order."""
        return [e for e in self if e.source == source]

    def kinds(self) -> list[str]:
        """The sequence of event kinds, useful for golden-trace assertions."""
        return [e.kind for e in self]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
