"""Identifier helpers.

The web service of the paper assigns "a unique identifier for each request
which is included as a part of the returned URL" (§4.3 step 1).  We model
request identifiers as short opaque strings minted from a counter plus a
random suffix so they are unique within a process and stable under seeding.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable

import numpy as np

#: Alias used throughout the portal/service layer.
RequestId = str

_counter = itertools.count(1)
_lock = threading.Lock()

_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"


def new_request_id(rng: np.random.Generator | None = None, prefix: str = "req") -> RequestId:
    """Mint a unique request identifier such as ``req-000042-k3xw9p``.

    Parameters
    ----------
    rng:
        Optional generator used for the random suffix; when omitted the
        suffix is deterministic from the counter (useful in tests).
    prefix:
        Leading tag identifying the identifier family.
    """
    with _lock:
        n = next(_counter)
    if rng is None:
        suffix = format(n * 2654435761 % 36**6, "06x")[:6]
    else:
        suffix = "".join(_ALPHABET[int(i)] for i in rng.integers(0, len(_ALPHABET), 6))
    return f"{prefix}-{n:06d}-{suffix}"


def sequential_namer(prefix: str, start: int = 1, width: int = 4) -> Callable[[], str]:
    """Return a callable producing ``prefix-0001``, ``prefix-0002``, ...

    Used for job and transfer-node names inside a single workflow, where
    stable, human-readable names matter more than global uniqueness.
    """
    counter = itertools.count(start)
    lock = threading.Lock()

    def _next() -> str:
        with lock:
            return f"{prefix}-{next(counter):0{width}d}"

    return _next
