"""Byte and duration units plus human-readable formatting.

The §5 campaign report is expressed in files, jobs, and megabytes; these
helpers keep the arithmetic honest (binary prefixes, as the 2003 paper's
"30MB of data" would have been measured).
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB


def format_bytes(n: float) -> str:
    """Render a byte count with a binary prefix: ``format_bytes(31457280)
    == '30.0 MB'``."""
    n = float(n)
    for unit, factor in (("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= factor:
            return f"{n / factor:.1f} {unit}"
    return f"{n:.0f} B"


def format_duration(seconds: float) -> str:
    """Render a duration as ``1h02m03s`` / ``4m05s`` / ``6.7s``."""
    seconds = float(seconds)
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes:d}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours:d}h{minutes:02d}m{secs:02d}s"
