"""Clocks: a virtual simulation clock and a wall-clock timer.

The Condor/DAGMan substrate runs in two modes (see :mod:`repro.condor`):
a discrete-event simulation, which advances a :class:`SimClock`, and a real
local executor, which uses wall time.  Both expose ``now()`` so downstream
components (event log, status board) are mode-agnostic.
"""

from __future__ import annotations

import time


class SimClock:
    """A manually advanced clock for discrete-event simulation.

    Time is a float in seconds.  The clock never goes backwards; attempting
    to do so raises ``ValueError`` — regressions here are always simulator
    bugs and should fail loudly.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        if t < self._now:
            raise ValueError(f"clock cannot go backwards: {t} < {self._now}")
        self._now = float(t)

    def advance_by(self, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"negative time step: {dt}")
        self._now += float(dt)


class WallTimer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with WallTimer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "WallTimer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self.start

    def now(self) -> float:
        return time.perf_counter()
