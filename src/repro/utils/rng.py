"""Deterministic random-number plumbing.

Every stochastic component of the reproduction (sky synthesis, replica
selection, site selection, failure injection, transport jitter) derives its
generator from a *root seed* and a *stream label*.  This makes campaign runs
bit-reproducible while keeping the streams statistically independent —
NumPy's ``SeedSequence.spawn`` machinery underneath.
"""

from __future__ import annotations

import zlib

import numpy as np


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a 32-bit child seed from ``root_seed`` and a label path.

    The label path is hashed with CRC-32 (stable across processes and Python
    versions, unlike :func:`hash`), then mixed into a ``SeedSequence``.
    """
    text = "/".join(str(label) for label in labels)
    mixed = zlib.crc32(text.encode("utf-8"))
    seq = np.random.SeedSequence([root_seed & 0xFFFFFFFF, mixed])
    return int(seq.generate_state(1, dtype=np.uint32)[0])


def derive_rng(root_seed: int, *labels: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given label path.

    Examples
    --------
    >>> a = derive_rng(7, "sky", "abell-1656")
    >>> b = derive_rng(7, "sky", "abell-1656")
    >>> float(a.random()) == float(b.random())
    True
    """
    return np.random.default_rng(derive_seed(root_seed, *labels))
