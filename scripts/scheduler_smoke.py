#!/usr/bin/env python
"""CI smoke test: concurrent submissions + journal replay determinism.

Fires N concurrent ``submit`` calls from three users at one journaled
workload manager, then replays the journal twice and asserts the
replayed queue state is identical both times and matches what was
submitted — no job lost, none duplicated, ordering stable.  This is the
cross-process story of ``repro submit`` / ``repro serve`` compressed
into one process: the journal is the only shared state, so replay
determinism is what makes a mid-queue crash recoverable.

Usage::

    PYTHONPATH=src python scripts/scheduler_smoke.py [--jobs 24] [--journal PATH]

Exits nonzero (with a diagnostic) on any mismatch.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
from pathlib import Path

from repro.scheduler import AdmissionPolicy, JobJournal, JobState, WorkloadManager

USERS = ("alice", "bob", "carol")
CLUSTERS = ("A3526", "MS0451", "A2029", "A1656")


def fail(message: str) -> "None":
    print(f"scheduler smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def run(jobs: int, journal_path: Path) -> None:
    journal = JobJournal(journal_path)
    manager = WorkloadManager(
        runner=None,
        journal=journal,
        admission=AdmissionPolicy(
            max_queue_depth=jobs + 8, max_active_per_user=jobs + 8
        ),
    )

    # -- concurrent submissions -------------------------------------------------
    errors: list[BaseException] = []
    barrier = threading.Barrier(len(USERS))

    def submit_for(user: str, indices: range) -> None:
        barrier.wait()  # maximize overlap between the three submitters
        for i in indices:
            try:
                manager.submit(user, CLUSTERS[i % len(CLUSTERS)], {"salt": i})
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

    per_user = jobs // len(USERS)
    threads = [
        threading.Thread(
            target=submit_for,
            args=(user, range(k * per_user, (k + 1) * per_user)),
            name=f"submitter-{user}",
        )
        for k, user in enumerate(USERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        fail(f"{len(errors)} submit(s) raised; first: {errors[0]!r}")

    submitted = jobs - jobs % len(USERS)

    # -- replay twice: identical fingerprints, nothing lost or duplicated -------
    first = JobJournal(journal_path).replay()
    second = JobJournal(journal_path).replay()
    if first.fingerprint() != second.fingerprint():
        fail("two replays of the same journal produced different fingerprints")
    if len(first.jobs) != submitted:
        fail(f"replay recovered {len(first.jobs)} jobs, expected {submitted}")
    seqs = sorted(record.seq for record in first.jobs.values())
    if seqs != list(range(submitted)):
        fail(f"sequence numbers not contiguous/unique: {seqs}")
    job_ids = {record.job_id for record in first.jobs.values()}
    if len(job_ids) != submitted:
        fail("duplicate job ids in the replayed queue")
    if any(record.state is not JobState.QUEUED for record in first.jobs.values()):
        fail("a never-started job replayed in a non-QUEUED state")
    per_user_counts = {user: 0 for user in USERS}
    for record in first.jobs.values():
        per_user_counts[record.spec.user] += 1
    if len(set(per_user_counts.values())) != 1:
        fail(f"uneven per-user recovery: {per_user_counts}")

    # -- a restarted manager sees the same queue --------------------------------
    restarted = WorkloadManager(
        runner=None,
        journal=JobJournal(journal_path),
        admission=AdmissionPolicy(
            max_queue_depth=jobs + 8, max_active_per_user=jobs + 8
        ),
    )
    if restarted.queue_depth() != submitted:
        fail(
            f"restarted manager queue depth {restarted.queue_depth()}, "
            f"expected {submitted}"
        )
    if first.fingerprint() != restarted.journal.replay().fingerprint():
        fail("restarted manager's journal diverged from the original replay")

    print(
        f"scheduler smoke OK: {submitted} concurrent submits from "
        f"{len(USERS)} users; replay fingerprint stable "
        f"({len(first.fingerprint())} entries)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=24, help="total submissions")
    parser.add_argument("--journal", default=None, help="journal path (default: temp)")
    args = parser.parse_args(argv)
    if args.journal is not None:
        run(args.jobs, Path(args.journal))
    else:
        with tempfile.TemporaryDirectory() as tmp:
            run(args.jobs, Path(tmp) / "smoke-journal.jsonl")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
