#!/usr/bin/env python
"""CI smoke test for the asyncio serving tier.

Boots a complete journaled serving stack on an ephemeral port, fires a
mixed-tenant 200-request open-loop burst at it, and asserts the SLO
surface end to end:

* zero 5xx / transport failures (shed 429/503 responses are fine — that
  is the designed overload behaviour, and every shed response must carry
  ``Retry-After``);
* p99 of well-behaved completed requests under a generous CI ceiling;
* submitted jobs drain, and ``repro queue --json`` (run as a real
  subprocess against the same journal) agrees the queue is drained;
* shutdown is leak-free: no surviving asyncio tasks, no open handler
  connections, and the listening socket actually closed.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--requests 200] [--rate 150]

Exits nonzero (with a diagnostic) on any violation.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.harness import build_serving_stack  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    Scenario,
    demo_cluster_targets,
    http_request,
    run_scenario,
)

#: Generous for shared CI runners; local p99 is ~20 ms.
P99_CEILING_MS = 750.0
DRAIN_TIMEOUT_S = 60.0


def fail(message: str) -> None:
    print(f"serve smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


async def run_smoke(requests: int, rate: float, journal_path: Path) -> None:
    stack = build_serving_stack(
        runner="synthetic", journal_path=str(journal_path), port=0
    )
    clusters = demo_cluster_targets()
    scenario = Scenario(
        name="smoke-burst",
        requests=requests,
        rate=rate,
        slow_every=10,  # a sprinkling of slow readers, as production would see
        slow_read_delay=0.05,
    )

    async with stack:
        host, port = stack.server.host, stack.server.port

        # -- liveness + a probe of the shed path's Retry-After contract ------
        status, _, body = await http_request(host, port, "GET", "/health")
        if status != 200:
            fail(f"/health returned {status}, expected 200")
        status, headers, _ = await http_request(
            host, port, "POST", "/jobs", body=b"{not json",
            headers=[("Content-Type", "application/json")],
        )
        if status != 400:
            fail(f"malformed submit returned {status}, expected 400")

        # -- the burst --------------------------------------------------------
        report = await run_scenario(host, port, scenario, clusters)
        d = report.as_dict()
        print(report.summary())
        if d["failures"]:
            worst = [o for o in report.failures][:3]
            fail(
                f"{d['failures']} failed request(s); first: "
                + "; ".join(f"{o.kind} status={o.status} {o.error}" for o in worst)
            )
        if d["completed"] == 0:
            fail("no request completed")
        if d["p99_ms"] > P99_CEILING_MS:
            fail(f"p99 {d['p99_ms']:.1f} ms exceeds ceiling {P99_CEILING_MS:.0f} ms")

        # every shed response must have carried Retry-After — probe the gate
        # directly by flooding one tenant past its quota
        sheds = await asyncio.gather(
            *(
                http_request(
                    host, port, "GET", "/cone?RA=201.0&DEC=-11.0&SR=0.2",
                    headers=[("X-Tenant", "hog")],
                )
                for _ in range(64)
            ),
            return_exceptions=True,
        )
        for item in sheds:
            if isinstance(item, Exception):
                continue
            status, headers, _ = item
            if status in (429, 503) and "retry-after" not in headers:
                fail(f"shed response {status} missing Retry-After header")

        # -- jobs drain, then the CLI agrees ----------------------------------
        deadline = time.monotonic() + DRAIN_TIMEOUT_S
        while stack.manager.queue_depth() or stack.manager.running_jobs():
            if time.monotonic() > deadline:
                fail(
                    f"queue failed to drain in {DRAIN_TIMEOUT_S:.0f}s: "
                    f"{stack.manager.queue_depth()} queued, "
                    f"{stack.manager.running_jobs()} running"
                )
            await asyncio.sleep(0.1)
        submitted = len(stack.manager.jobs())

    # -- post-shutdown: leak-free ---------------------------------------------
    current = asyncio.current_task()
    stray = [t for t in asyncio.all_tasks() if t is not current and not t.done()]
    if stray:
        fail(f"{len(stray)} asyncio task(s) survived shutdown: {stray[:5]}")
    if stack.server.connections():
        fail(f"{stack.server.connections()} handler connection(s) survived shutdown")
    try:
        _, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=2.0
        )
    except (ConnectionError, OSError, asyncio.TimeoutError):
        pass  # listener is down, as it must be
    else:
        writer.close()
        fail(f"port {port} still accepting connections after shutdown")

    # -- repro queue --json from a second process ------------------------------
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "queue", "--json", "--journal", str(journal_path)],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )
    if proc.returncode != 0:
        fail(f"repro queue --json exited {proc.returncode}: {proc.stderr[-500:]}")
    payload = json.loads(proc.stdout)
    if not payload["drained"]:
        fail(f"queue --json reports drained=false: counts={payload['counts']}")
    if len(payload["jobs"]) != submitted:
        fail(
            f"queue --json replayed {len(payload['jobs'])} job(s), "
            f"manager saw {submitted}"
        )

    print(
        f"serve smoke OK: {d['requests']} requests "
        f"({d['completed']} completed, {d['shed']} shed, 0 failed), "
        f"p99 {d['p99_ms']:.1f} ms, {submitted} job(s) journaled and drained, "
        "shutdown leak-free"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200, help="burst size")
    parser.add_argument("--rate", type=float, default=150.0, help="arrival rate (rps)")
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory() as tmp:
        asyncio.run(
            run_smoke(args.requests, args.rate, Path(tmp) / "serve-journal.jsonl")
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
