#!/usr/bin/env python
"""CI smoke test for the live observability plane.

Boots an observability-enabled serving stack on an ephemeral port, drives
an open-loop burst through it, and asserts the plane's contracts end to
end:

* every request the tier parsed produced exactly one JSONL access-log
  line (file line count == requests issued == plane counter);
* a job submission's ``X-Trace-Id`` resolves live via
  ``/debug/trace/{id}`` and covers the whole chain (HTTP request →
  admission → journal → executor job), and the exported trace replays
  through ``repro telemetry report --trace-id`` in a second process;
* ``/debug/flight/dump`` writes parseable JSONL with one entry per
  retained trace;
* ``/debug/requests`` and ``/debug/slo`` agree with the burst (request
  totals, zero errors, healthy SLO state).

The companion overhead gate (disabled plane <2% of steady rps) lives in
``benchmarks/run_serve_bench.py --check``; CI runs both.

Usage::

    PYTHONPATH=src python scripts/observability_smoke.py [--requests 150]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import telemetry  # noqa: E402
from repro.serve.harness import build_serving_stack  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    Scenario,
    demo_cluster_targets,
    http_request,
    run_scenario,
)

DRAIN_TIMEOUT_S = 60.0


def fail(message: str) -> None:
    print(f"observability smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


async def run_smoke(requests: int, rate: float, workdir: Path) -> dict:
    access_log = workdir / "access.jsonl"
    flight_dump = workdir / "flight.jsonl"
    trace_export = workdir / "trace.jsonl"
    stack = build_serving_stack(
        runner="synthetic",
        port=0,
        observability=True,
        access_log_path=str(access_log),
    )
    clusters = demo_cluster_targets()
    # No slow readers: an aborted reader can die mid-response and make the
    # issued-vs-logged accounting ambiguous; this smoke is about the plane.
    scenario = Scenario(name="observability-burst", requests=requests, rate=rate)
    issued = 0

    async def request(method: str, target: str, **kwargs):
        nonlocal issued
        issued += 1
        return await http_request(
            stack.server.host, stack.server.port, method, target, **kwargs
        )

    async with stack:
        # -- the burst ----------------------------------------------------------
        report = await run_scenario(
            stack.server.host, stack.server.port, scenario, clusters
        )
        issued += requests
        d = report.as_dict()
        print(report.summary())
        if d["failures"]:
            fail(f"{d['failures']} request(s) failed (incl. id echo) in the burst")

        # -- one traced job submission, end to end ------------------------------
        # After the burst, so the healthy churn cannot evict it from the
        # flight recorder's completed ring before the dump below.
        status, headers, body = await request(
            "POST",
            "/jobs",
            body=json.dumps(
                {"user": "smoke", "cluster": clusters[0][0], "options": {}}
            ).encode(),
            headers=[("Content-Type", "application/json")],
        )
        if status != 202:
            fail(f"job submit returned {status}, expected 202")
        trace_id = headers.get("x-trace-id", "")
        if not trace_id:
            fail("submit response carried no X-Trace-Id header")
        job_id = json.loads(body)["job_id"]
        status, _, body = await request("GET", f"/jobs/{job_id}?wait=20")
        if status != 200 or json.loads(body)["state"] != "completed":
            fail(f"traced job did not complete: status={status} body={body[:200]!r}")

        # -- the sampled trace resolves live ------------------------------------
        status, _, body = await request("GET", f"/debug/trace/{trace_id}")
        if status != 200:
            fail(f"/debug/trace/{trace_id} returned {status}")
        entry = json.loads(body)
        names = {span["name"] for span in entry["spans"]}
        needed = {"serve.request", "scheduler.admission", "scheduler.journal", "scheduler.job"}
        if not needed <= names:
            fail(f"trace {trace_id} is missing spans: {sorted(needed - names)}")
        if any(span["trace"] != trace_id for span in entry["spans"]):
            fail(f"trace {trace_id} contains foreign spans")

        # -- flight dump --------------------------------------------------------
        status, _, body = await request(
            "POST",
            "/debug/flight/dump",
            body=json.dumps({"path": str(flight_dump)}).encode(),
        )
        if status != 200:
            fail(f"/debug/flight/dump returned {status}")
        dumped = json.loads(body)["traces"]

        # -- debug + slo sanity --------------------------------------------------
        status, _, body = await request("GET", "/debug/requests")
        snapshot = json.loads(body)
        status, _, body = await request("GET", "/debug/slo")
        slo = json.loads(body)
        if slo["state"] != "ok":
            fail(f"SLO state {slo['state']!r} after a clean burst, expected ok")

        # -- drain, then export the tracer for offline replay --------------------
        deadline = time.monotonic() + DRAIN_TIMEOUT_S
        while stack.manager.queue_depth() or stack.manager.running_jobs():
            if time.monotonic() > deadline:
                fail("queue failed to drain")
            await asyncio.sleep(0.1)
        telemetry.get_tracer().export_jsonl(trace_export)

    # -- access log: one line per parsed request -------------------------------
    lines = [
        json.loads(line)
        for line in access_log.read_text().splitlines()
        if line.strip()
    ]
    if len(lines) != issued:
        fail(f"access log has {len(lines)} line(s), {issued} request(s) were issued")
    if snapshot["access_log_count"] > issued:
        fail(
            f"plane counted {snapshot['access_log_count']} accesses, "
            f"only {issued} were issued"
        )
    for line in lines:
        for key in ("ts", "method", "path", "status", "trace", "request_id", "dur_ms"):
            if key not in line:
                fail(f"access-log line missing {key!r}: {line}")

    # -- flight dump parses as one JSON object per retained trace ----------------
    dump_lines = [
        json.loads(line)
        for line in flight_dump.read_text().splitlines()
        if line.strip()
    ]
    if len(dump_lines) != dumped:
        fail(f"flight dump has {len(dump_lines)} line(s), endpoint said {dumped}")
    if not any(line["trace"] == trace_id for line in dump_lines):
        fail(f"flight dump does not retain the sampled trace {trace_id}")

    # -- the same trace replays offline in a second process ----------------------
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "telemetry", "report",
            str(trace_export), "--trace-id", trace_id,
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )
    if proc.returncode != 0:
        fail(
            f"repro telemetry report --trace-id exited {proc.returncode}: "
            f"{proc.stderr[-500:]}"
        )
    if "serve.request" not in proc.stdout:
        fail("offline report does not mention the serve.request span")

    return {
        "issued": issued,
        "access_lines": len(lines),
        "dumped_traces": dumped,
        "trace_id": trace_id,
        "burst": d,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=150, help="burst size")
    parser.add_argument("--rate", type=float, default=120.0, help="arrival rate (rps)")
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory() as tmp:
        summary = asyncio.run(run_smoke(args.requests, args.rate, Path(tmp)))
    print(
        f"observability smoke OK: {summary['issued']} request(s) issued, "
        f"{summary['access_lines']} access-log line(s), trace "
        f"{summary['trace_id']} resolved live and replayed offline, "
        f"{summary['dumped_traces']} trace(s) in the flight dump"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
