#!/usr/bin/env python
"""CI smoke test: SIGKILL a shard worker mid-campaign, recover byte-identical.

Boots a 4-shard worker fleet, drives a 20-job / 4-user campaign at it,
SIGKILLs the busiest worker while its jobs are in flight, and asserts
the full recovery contract:

* every job — including the relocated ones, polled by their *original*
  ids — reaches COMPLETED with output byte-identical to a single-shard
  fault-free baseline;
* the post-replay global fingerprint (the sorted union of every shard
  journal, dead one included) is stable across recomputations;
* at least one job was actually relocated (the kill landed mid-flight,
  not on an idle shard);
* teardown leaks zero worker processes.

This is `repro chaos --profile worker-crash` reduced to its CI
essentials, driven through the fleet API so a failure points at the
layer that broke.

Usage::

    PYTHONPATH=src python scripts/shard_smoke.py [--jobs 20] [--users 4] [--shards 4]

Exits nonzero (with a diagnostic) on any violation.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.scheduler.job import JobSpec, JobState
from repro.serve.harness import SyntheticJobRunner
from repro.shard.fleet import ShardFleet


def fail(message: str) -> None:
    print(f"shard smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def run(root: Path, jobs: int, users: int, shards: int) -> None:
    clusters = [f"SM{i:02d}" for i in range(jobs)]
    tenants = [f"user{i % users}" for i in range(jobs)]

    # the fault-free truth: the synthetic runner is a pure function of the
    # spec, so the baseline needs no fleet at all
    baseline = {
        cluster: SyntheticJobRunner(0.0, 0.0)
        .run(JobSpec.create("baseline", cluster), None)
        .result_bytes
        for cluster in clusters
    }

    fleet = ShardFleet(
        root / "fleet",
        shards=shards,
        base_seconds=0.05,
        spread_seconds=0.05,
        max_workers=1,
    )
    with fleet:
        records = [
            fleet.submit(tenant, cluster)
            for tenant, cluster in zip(tenants, clusters)
        ]

        by_shard: dict[str, int] = {}
        for record in records:
            by_shard[record.shard] = by_shard.get(record.shard, 0) + 1
        victim = max(sorted(by_shard), key=lambda s: by_shard[s])
        fleet.kill_worker(victim)
        print(f"killed {victim} with {by_shard[victim]} jobs placed on it")

        for record in records:
            done = fleet.wait(record.job_id, timeout=120.0)
            if done.state is not JobState.COMPLETED:
                fail(f"{record.job_id} ended {done.state.value}: {done.error}")
            content = fleet.result_bytes(record.job_id)
            if content != baseline[record.spec.cluster]:
                fail(f"{record.job_id} output differs from the baseline")

        health = fleet.shard_health()
        if health["dead"] != [victim]:
            fail(f"expected dead == [{victim!r}], got {health['dead']}")
        relocated = health["relocated_jobs"]
        if relocated < 1:
            fail("the kill relocated nothing — it did not land mid-flight")

        first = fleet.global_fingerprint()
        second = fleet.global_fingerprint()
        if first != second:
            fail("global fingerprint changed between two replays")
        if not first:
            fail("global fingerprint is empty")

    leaked = fleet.leaked_processes()
    if leaked:
        fail(f"leaked worker processes after close: {leaked}")

    print(
        f"shard smoke OK: {len(records)} jobs byte-identical across "
        f"{shards} shards ({users} users), {victim} killed mid-flight, "
        f"{relocated} relocated, fingerprint stable over "
        f"{len(first)} journal entries, zero leaks"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=20)
    parser.add_argument("--users", type=int, default=4)
    parser.add_argument("--shards", type=int, default=4)
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="shard-smoke-") as tmp:
        run(Path(tmp), jobs=args.jobs, users=args.users, shards=args.shards)
    return 0


if __name__ == "__main__":
    sys.exit(main())
