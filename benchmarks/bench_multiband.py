"""Extension (§4.2): "galaxy images from different frequency bands could
yield different results".

Measures the three morphology parameters for the same cluster in the
synthetic g, r and i filters.  Star-forming structure is brighter in the
blue, so the asymmetry of late types rises toward g, while early types stay
symmetric in every band — multi-band morphology separates star formation
from dynamics, which is why the paper wants the registry to offer a choice
of bands.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.coords import SkyPosition
from repro.morphology.pipeline import galmorph
from repro.sky.cluster import ClusterModel, MorphType
from repro.sky.imaging import CutoutFactory

CLUSTER = ClusterModel(
    name="BANDS",
    center=SkyPosition(55.0, 10.0),
    redshift=0.05,
    n_galaxies=120,
    seed=17,
)
BANDS = ("g", "r", "i")


def measure_band(band: str) -> dict[str, float]:
    factory = CutoutFactory(CLUSTER, band=band)
    late_asym, early_asym, late_conc, early_conc = [], [], [], []
    for member in factory.members():
        result = galmorph(
            factory.render_cutout(member.galaxy_id),
            redshift=member.redshift,
            pix_scale=0.4 / 3600.0,
        )
        if not result.valid:
            continue
        if member.morph in (MorphType.SPIRAL, MorphType.IRREGULAR):
            late_asym.append(result.asymmetry)
            late_conc.append(result.concentration)
        else:
            early_asym.append(result.asymmetry)
            early_conc.append(result.concentration)
    return {
        "late_A": float(np.mean(late_asym)),
        "early_A": float(np.mean(early_asym)),
        "late_C": float(np.mean(late_conc)),
        "early_C": float(np.mean(early_conc)),
    }


def test_multiband_morphology(benchmark, record_table):
    results = benchmark.pedantic(
        lambda: {band: measure_band(band) for band in BANDS}, rounds=1, iterations=1
    )

    # star formation brightens blue: late-type asymmetry ordered g > r > i
    assert results["g"]["late_A"] > results["r"]["late_A"] > results["i"]["late_A"]
    # early types stay symmetric everywhere
    for band in BANDS:
        assert results[band]["early_A"] < 0.06
    # concentration still separates the classes in every band
    for band in BANDS:
        assert results[band]["early_C"] > results[band]["late_C"]

    lines = [f"{'band':<5s} {'A(late)':>8s} {'A(early)':>9s} {'C(late)':>8s} {'C(early)':>9s}"]
    for band in BANDS:
        r = results[band]
        lines.append(
            f"{band:<5s} {r['late_A']:>8.3f} {r['early_A']:>9.3f} "
            f"{r['late_C']:>8.2f} {r['early_C']:>9.2f}"
        )
    lines.append("")
    lines.append(
        "shape: late-type asymmetry rises toward the blue (star-forming knots); "
        "early types are symmetric in all bands; concentration is band-stable."
    )
    record_table("multiband_morphology", "\n".join(lines))
