"""Figure 5: the portal information flow, end to end on one cluster.

Asserts the stage order (select -> image search -> catalog -> cutouts ->
compute -> merge) and the artifact counts at each stage, and times a full
portal session on the smallest demonstration cluster (37 galaxies).
"""

from __future__ import annotations

from repro.portal.demo import build_demo_environment
from repro.sky.registry_data import demonstration_cluster

FIG5_STAGES = [
    "cluster-selected",
    "context-images-found",
    "catalog-built",
    "cutouts-resolved",
    "compute-submitted",
    "results-received",
    "results-merged",
]


def test_fig5_portal_flow(benchmark, record_table):
    cluster = demonstration_cluster("A3526")
    env = build_demo_environment(clusters=[cluster], seed_virtual_data_reuse=False)

    session = benchmark.pedantic(
        lambda: env.portal.run_analysis("A3526"), rounds=1, iterations=1
    )

    kinds = [k for k in env.events.kinds() if k in FIG5_STAGES]
    assert kinds == FIG5_STAGES, f"portal stages out of order: {kinds}"
    assert session.n_context_images == cluster.context_image_count
    assert len(session.catalog) == cluster.n_galaxies
    assert len(session.merged) == cluster.n_galaxies

    lines = ["Figure 5 portal flow trace:"]
    for event in env.events:
        if event.kind in FIG5_STAGES:
            detail = ", ".join(f"{k}={v}" for k, v in event.detail.items())
            lines.append(f"  {event.kind:<24s} {detail}")
    lines.append("")
    lines.append(
        f"meter: {env.meter.count('sia-query')} SIA queries, "
        f"{env.meter.count('sia-download')} image downloads, "
        f"{env.meter.count('cone-query')} cone searches, "
        f"{env.meter.count('status-poll')} status polls"
    )
    record_table("fig5_portal_flow", "\n".join(lines))
