"""Headless seed-vs-fast morphology kernel benchmark.

Runs the hot kernels of the §5 campaign both ways — the preserved seed
implementations in :mod:`repro.morphology.reference` and the
geometry-cached fast path — and appends the speedups to
``BENCH_morphology.json`` at the repo root, so later PRs can gate on
performance regressions without the pytest-benchmark harness.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py --quick   # smoke (~5 s)
    PYTHONPATH=src python benchmarks/run_bench.py           # full repeats

The trajectory file is ``{"history": [entry, ...]}``; each entry carries a
UTC timestamp, the mode, the environment (numpy version, CPU count), the
per-benchmark ``{seed_ms, fast_ms, speedup}`` medians, and the stacked-batch
parity drift vs the reference.  ``--check`` asserts the speedup floors
(galMorph 64x64 >= 2x, asymmetry 128 >= 3x, galmorph_batch_8 >= 4x) and the
1e-9 batch parity tolerance.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np
from scipy import ndimage

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fits.hdu import ImageHDU  # noqa: E402
from repro.fits.io import read_fits_bytes, write_fits_bytes  # noqa: E402
from repro.morphology.geometry import CutoutGeometry  # noqa: E402
from repro.morphology.measures import asymmetry_index, concentration_index  # noqa: E402
from repro.morphology.petrosian import petrosian_radius  # noqa: E402
from repro.morphology.pipeline import GalmorphTask, galmorph, galmorph_batch  # noqa: E402
from repro.morphology.reference import (  # noqa: E402
    asymmetry_index_reference,
    concentration_index_reference,
    galmorph_reference,
    petrosian_radius_reference,
)
from repro.sky.cluster import GalaxyRecord, MorphType  # noqa: E402
from repro.sky.galaxy import render_galaxy_image  # noqa: E402
from repro.sky.profiles import pixel_integrated_sersic  # noqa: E402

TRAJECTORY = REPO_ROOT / "BENCH_morphology.json"

#: Acceptance floors from the fast-path PRs; ``--check`` enforces them.
FLOORS = {"galmorph_64": 2.0, "asymmetry_128": 3.0, "galmorph_batch_8": 4.0}

#: Max tolerated |stacked - reference| drift on any measured parameter;
#: ``--check`` fails the run when the batch parity probe exceeds it.
PARITY_TOL = 1e-9

#: Fields the batch parity probe compares against the scalar reference.
PARITY_FIELDS = (
    "surface_brightness",
    "concentration",
    "asymmetry",
    "petrosian_radius_arcsec",
)

#: Max disabled-telemetry instrumentation cost per galmorph call, relative
#: to the measured fast-path kernel time (the observability PR's 2% gate).
OVERHEAD_BUDGET = 0.02

#: Guarded telemetry calls on the per-galaxy hot path (one galmorph.galaxy
#: span + kernel counters + the geometry-cache hit/miss counters a typical
#: measurement drives).  Deliberately generous.
GUARDED_CALLS_PER_GALMORPH = 64


def _time(fn, repeats: int) -> float:
    """Median-of-``repeats`` wall time of ``fn()`` in milliseconds.

    One untimed warmup iteration runs first so geometry caches, the
    allocator, and import-time lazies settle before measurement — the
    campaign steady state is what we want.  The median (not the best or
    the mean) is reported: it ignores one-off scheduler stalls on both
    sides of a seed/fast pair without rewarding a single lucky run.
    """
    fn()  # warmup: populate caches, settle the allocator
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples) * 1e3


def _sersic(size: int, n: float) -> np.ndarray:
    img = pixel_integrated_sersic(
        (size, size), ((size - 1) / 2, (size - 1) / 2), size / 10, n, 1e4
    )
    return ndimage.gaussian_filter(img, 1.2)


def _galmorph_payload() -> bytes:
    galaxy = GalaxyRecord(
        "bench-g2", 150.0, 2.0, 0.05, 17.0, MorphType.ELLIPTICAL, 4.0, 0.2, 0.0, 0.01, 0.05
    )
    return write_fits_bytes(ImageHDU(render_galaxy_image(galaxy, rng=np.random.default_rng(1))))


def _batch_tasks(count: int) -> list[GalmorphTask]:
    types = [MorphType.ELLIPTICAL, MorphType.SPIRAL, MorphType.IRREGULAR, MorphType.LENTICULAR]
    tasks = []
    for i in range(count):
        galaxy = GalaxyRecord(
            f"batch-{i}", 150.0, 2.0, 0.05, 17.0, types[i % 4], 2.5, 0.25, 30.0, 0.2, 0.1
        )
        hdu = ImageHDU(render_galaxy_image(galaxy, rng=np.random.default_rng(100 + i)))
        tasks.append(
            GalmorphTask(image=hdu, redshift=0.05, pix_scale=0.4 / 3600.0, galaxy_id=f"batch-{i}")
        )
    return tasks


def _batch_parity() -> dict[str, float | bool]:
    """Worst |stacked - reference| drift over a probe batch.

    Runs the stacked pipeline and the per-galaxy seed reference over the
    same mixed-morphology batch and reports the largest absolute
    difference across :data:`PARITY_FIELDS` (NaN on both sides counts as
    agreement, a valid-flag mismatch as infinite drift).
    """
    tasks = _batch_tasks(8)
    batch = galmorph_batch(tasks)
    worst = 0.0
    for task, got in zip(tasks, batch):
        ref = galmorph_reference(
            task.image, redshift=task.redshift, pix_scale=task.pix_scale,
            galaxy_id=task.galaxy_id,
        )
        if got.valid != ref.valid:
            worst = float("inf")
            continue
        for field in PARITY_FIELDS:
            a, b = getattr(got, field), getattr(ref, field)
            if np.isnan(a) and np.isnan(b):
                continue
            worst = max(worst, abs(a - b))
    return {"max_abs_drift": worst, "within_tol": worst <= PARITY_TOL}


def run(repeats: int) -> dict[str, dict[str, float]]:
    results: dict[str, dict[str, float]] = {}

    def pair(name: str, seed_fn, fast_fn, repeats_override: int | None = None) -> None:
        reps = repeats if repeats_override is None else repeats_override
        seed_ms = _time(seed_fn, reps)
        fast_ms = _time(fast_fn, reps)
        results[name] = {
            "seed_ms": round(seed_ms, 4),
            "fast_ms": round(fast_ms, 4),
            "speedup": round(seed_ms / fast_ms, 2),
        }
        print(f"{name:<24} seed {seed_ms:8.3f} ms   fast {fast_ms:8.3f} ms   "
              f"{seed_ms / fast_ms:5.2f}x")

    # -- asymmetry: the dominant kernel (9-point centre search) ----------------
    for size in (32, 64, 128):
        img = _sersic(size, 1.0)
        center = ((size - 1) / 2, (size - 1) / 2)
        radius = size / 2 - 2
        geom = CutoutGeometry((size, size))
        pair(
            f"asymmetry_{size}",
            lambda img=img, c=center, r=radius: asymmetry_index_reference(img, c, r),
            lambda img=img, c=center, r=radius, g=geom: asymmetry_index(img, c, r, geometry=g),
        )

    # -- concentration + petrosian on the campaign's common 64x64 shape --------
    img64 = _sersic(64, 4.0)
    c64 = (31.5, 31.5)
    geom64 = CutoutGeometry((64, 64))
    pair(
        "concentration_64",
        lambda: concentration_index_reference(img64, c64, 30.0),
        lambda: concentration_index(img64, c64, 30.0, geometry=geom64),
    )
    pair(
        "petrosian_64",
        lambda: petrosian_radius_reference(img64, c64),
        lambda: petrosian_radius(img64, c64, geometry=geom64),
    )

    # -- the full §5 unit of work: FITS parse -> parameters --------------------
    payload = _galmorph_payload()
    pair(
        "galmorph_64",
        lambda: galmorph_reference(
            read_fits_bytes(payload), redshift=0.05, pix_scale=0.4 / 3600.0, galaxy_id="g"
        ),
        lambda: galmorph(
            read_fits_bytes(payload), redshift=0.05, pix_scale=0.4 / 3600.0, galaxy_id="g"
        ),
    )

    # -- clustered-node bundle: per-member seed loop vs stacked batch ----------
    # Larger batches amortise the per-batch fixed costs (cosmology, stack
    # assembly, group bookkeeping), so the matrix tracks the scaling curve,
    # not just the 8-galaxy point.  The seed side costs ~2.5 ms per galaxy,
    # so the big batches run fewer (but never fewer than 3) repeats.
    for count, divisor in ((8, 1), (64, 5), (256, 15)):
        tasks = _batch_tasks(count)
        pair(
            f"galmorph_batch_{count}",
            lambda tasks=tasks: [
                galmorph_reference(
                    t.image, redshift=t.redshift, pix_scale=t.pix_scale, galaxy_id=t.galaxy_id
                )
                for t in tasks
            ],
            lambda tasks=tasks: galmorph_batch(tasks),
            repeats_override=max(3, repeats // divisor) if divisor > 1 else None,
        )
    return results


def measure_disabled_overhead() -> dict[str, float]:
    """Per-call cost of *disabled* telemetry helpers, in nanoseconds.

    Times a tight loop over the exact guarded helpers the hot paths call
    (``trace_span`` + ``count``) with telemetry off; the gate scales this
    by :data:`GUARDED_CALLS_PER_GALMORPH` and compares against the
    measured ``galmorph_64`` fast time.
    """
    from repro import telemetry

    telemetry.disable()
    n = 200_000

    def loop() -> None:
        span = telemetry.trace_span
        count = telemetry.count
        for _ in range(n):
            with span("bench.overhead", k=1):
                pass
            count("bench_overhead_total", kind="x")

    loop()  # warm
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        loop()
        best = min(best, time.perf_counter() - t0)
    # each iteration = 1 span + 1 counter = 2 guarded calls
    return {"per_call_ns": best / (2 * n) * 1e9}


def telemetry_snapshot() -> dict[str, object]:
    """Run a small traced batch and snapshot its metrics for the history.

    Also proves the exporters stay parseable on every bench run: the
    Prometheus text is fed back through the strict parser.
    """
    from repro import telemetry
    from repro.telemetry.exporters import parse_prometheus_text

    telemetry.enable()
    try:
        galmorph_batch(_batch_tasks(4))
        spans = telemetry.get_tracer().spans()
        prom = telemetry.prometheus_text()
        parsed = parse_prometheus_text(prom)  # raises if the format regresses
        rows = telemetry.get_registry().get("galmorph_rows_total")
        return {
            "spans": len(spans),
            "metric_families": len(parsed),
            "galmorph_rows": rows.total() if rows is not None else 0.0,
        }
    finally:
        telemetry.disable()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: 3 repeats per kernel instead of 15")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) if a speedup floor is missed")
    parser.add_argument("--out", type=Path, default=TRAJECTORY,
                        help=f"trajectory file (default {TRAJECTORY})")
    parser.add_argument("--overhead-check", action="store_true",
                        help="fail (exit 1) if disabled-telemetry overhead "
                             f"exceeds {OVERHEAD_BUDGET:.0%} of galmorph_64 fast time")
    args = parser.parse_args(argv)

    repeats = 3 if args.quick else 15
    results = run(repeats)

    parity = _batch_parity()
    print(f"\nbatch parity vs reference: max drift {parity['max_abs_drift']:.3e} "
          f"(tolerance {PARITY_TOL:.0e})")

    overhead = measure_disabled_overhead()
    per_galmorph_ms = overhead["per_call_ns"] * GUARDED_CALLS_PER_GALMORPH / 1e6
    fast_ms = results["galmorph_64"]["fast_ms"]
    overhead_frac = per_galmorph_ms / fast_ms
    print(f"\ndisabled-telemetry overhead: {overhead['per_call_ns']:.0f} ns/call, "
          f"~{per_galmorph_ms:.4f} ms per galmorph "
          f"({overhead_frac:.2%} of fast path, budget {OVERHEAD_BUDGET:.0%})")

    snapshot = telemetry_snapshot()
    print(f"telemetry snapshot: {snapshot['spans']} spans, "
          f"{snapshot['metric_families']} metric families, "
          f"{snapshot['galmorph_rows']:.0f} galmorph rows")

    history = {"history": []}
    if args.out.exists():
        history = json.loads(args.out.read_text())
    history["history"].append(
        {
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "mode": "quick" if args.quick else "full",
            "repeats": repeats,
            "env": {
                "numpy": np.__version__,
                "cpu_count": os.cpu_count(),
            },
            "results": results,
            "parity": {
                "max_abs_drift": parity["max_abs_drift"],
                "tolerance": PARITY_TOL,
            },
            "telemetry": {
                "disabled_overhead_ns_per_call": round(overhead["per_call_ns"], 1),
                "disabled_overhead_frac_of_galmorph": round(overhead_frac, 5),
                **snapshot,
            },
        }
    )
    args.out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"\nwrote {args.out} ({len(history['history'])} entries)")

    if overhead_frac > OVERHEAD_BUDGET:
        print(f"OVERHEAD BUDGET MISSED: {overhead_frac:.2%} > {OVERHEAD_BUDGET:.0%}")
        if args.overhead_check:
            return 1

    failed = {
        name: (results[name]["speedup"], floor)
        for name, floor in FLOORS.items()
        if name in results and results[name]["speedup"] < floor
    }
    if failed:
        for name, (got, floor) in failed.items():
            print(f"FLOOR MISSED: {name} {got:.2f}x < {floor:.1f}x")
        return 1 if args.check else 0
    if not parity["within_tol"]:
        print(f"PARITY DRIFT: {parity['max_abs_drift']:.3e} > {PARITY_TOL:.0e}")
        return 1 if args.check else 0
    print("all speedup floors met:",
          ", ".join(f"{n} >= {f:.0f}x" for n, f in FLOORS.items()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
