"""Ablation: horizontal job clustering vs per-job submission.

The §2 jobs are "fairly light": Condor-G scheduling latency dominated the
2003 runs.  Clustering bundles same-site galMorph jobs into sequential
units, paying the submission overhead once per bundle.  Sweeps bundle size
on a 120-job workflow with a 30-second per-submission overhead.
"""

from __future__ import annotations

from repro.condor.pool import GridTopology
from repro.condor.simulator import GridSimulator, SimulationOptions
from repro.pegasus.clustering import cluster_workflow
from repro.pegasus.options import PlannerOptions
from repro.pegasus.planner import PegasusPlanner
from repro.rls.rls import ReplicaLocationService
from repro.tc.catalog import TransformationCatalog
from repro.workflow.abstract import AbstractJob, AbstractWorkflow

N_JOBS = 120
OVERHEAD_S = 30.0
BUNDLE_SIZES = (1, 2, 4, 8, 16, 32)


def make_plan():
    rls = ReplicaLocationService()
    for site in ("isi", "uwisc", "fnal", "store"):
        rls.add_site(site)
    tc = TransformationCatalog()
    for site in ("isi", "uwisc", "fnal"):
        tc.install("galMorph", site, "/bin/galmorph")
    tc.install("concatVOTable", "store", "/bin/concat")
    jobs = []
    for i in range(N_JOBS):
        rls.register(f"g{i}.fit", f"gsiftp://store.grid/data/g{i}.fit", "store")
        jobs.append(AbstractJob(f"d{i}", "galMorph", (f"g{i}.fit",), (f"g{i}.txt",)))
    jobs.append(
        AbstractJob("cat", "concatVOTable", tuple(f"g{i}.txt" for i in range(N_JOBS)), ("all.vot",))
    )
    planner = PegasusPlanner(
        rls, tc, PlannerOptions(output_site="store", site_selection="round-robin")
    )
    return planner.plan(AbstractWorkflow(jobs))


def test_clustering_sweep(benchmark, record_table):
    plan = make_plan()
    topo = GridTopology.default_demo()
    opts = SimulationOptions(runtime_jitter=0.0, job_overhead_s=OVERHEAD_S)

    def sweep():
        rows = []
        for size in BUNDLE_SIZES:
            cw = plan.concrete if size == 1 else cluster_workflow(plan.concrete, size)
            assert cw.total_compute_jobs() == N_JOBS + 1
            report = GridSimulator(topo, opts).execute(cw)
            assert report.succeeded
            submitted = len(cw.compute_nodes()) + len(cw.clustered_nodes())
            rows.append((size, submitted, report.makespan))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"{'bundle':>7s} {'submitted units':>16s} {'makespan':>9s}"]
    for size, submitted, makespan in rows:
        lines.append(f"{size:>7d} {submitted:>16d} {makespan:>8.1f}s")
    baseline = rows[0][2]
    best = min(r[2] for r in rows)
    # clustering must help substantially under heavy scheduling overhead...
    assert best < baseline * 0.7
    # ...but over-clustering serialises the work and costs parallelism:
    assert rows[-1][2] > best
    lines.append("")
    lines.append(
        f"shape: with {OVERHEAD_S:.0f}s submission overhead, moderate bundles cut "
        "the makespan by >30%; the largest bundles lose parallelism again "
        "(classic clustering sweet spot)."
    )
    record_table("ablation_clustering", "\n".join(lines))
