"""Scale benchmark for the SLO-driven adaptive execution layer.

A time-compressed 200-cluster campaign (simulated Grid, virtual clock)
run twice over a ``slow-site`` chaos plan — UWisc alive but lognormally
slow — and gated into ``BENCH_scale.json`` at the repo root:

1. **Static arm** — round-robin placement, provisioned slots, no
   speculation: the pre-adaptive system.
2. **Adaptive arm** — predictive placement over the shared latency
   estimator (history persists across waves), speculative straggler
   duplicates, and per-site autoscaling.

Gates (``--check``):

* adaptive makespan improvement ≥ ``1.4×`` over static (the CI
  ``scale-smoke`` phrasing: speculative makespan ≤ 0.7× static);
* the ``slow-site`` chaos campaign stays **byte-identical** to its
  fault-free twin (latency must never change bytes);
* the disabled adaptive layer costs **< 1%** of run wall time (per-run
  bookkeeping unit cost × a generous over-count of crossings).

Usage::

    PYTHONPATH=src python benchmarks/run_scale_bench.py --quick
    PYTHONPATH=src python benchmarks/run_scale_bench.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.adaptive import (  # noqa: E402
    AdaptiveController,
    AutoscaleConfig,
    PredictiveSiteSelector,
    SpeculationPolicy,
)
from repro.condor.pool import GridTopology  # noqa: E402
from repro.condor.simulator import GridSimulator, SimulationOptions  # noqa: E402
from repro.faults.chaos import run_chaos_campaign  # noqa: E402
from repro.faults.profiles import get_profile  # noqa: E402
from repro.pegasus.site_selector import RoundRobinSiteSelector, SiteSelector  # noqa: E402
from repro.workflow.abstract import AbstractJob  # noqa: E402
from repro.workflow.concrete import ComputeNode, ConcreteWorkflow  # noqa: E402

TRAJECTORY = REPO_ROOT / "BENCH_scale.json"

#: Required static/adaptive makespan ratio (≥ 1.4× ⇔ adaptive ≤ 0.71×).
MAKESPAN_GATE = 1.4

#: Maximum tolerated disabled-layer cost relative to simulator wall time.
OVERHEAD_BUDGET = 0.01

#: Campaign shape: clusters per wave × waves, galMorph jobs per cluster.
FULL_WAVES = 10
QUICK_WAVES = 4
CLUSTERS_PER_WAVE = 20
JOBS_PER_CLUSTER = 10

CACHE_SITE = "nvo-storage"
SEED = 2003


def build_wave(wave: int, selector: SiteSelector, pools: list[str]) -> ConcreteWorkflow:
    """One wave's workflow: per cluster, a fan of galMorph jobs placed by
    ``selector`` feeding a concatVOTable fan-in at the cache site."""
    wf = ConcreteWorkflow()
    for c in range(CLUSTERS_PER_WAVE):
        cluster = f"w{wave}c{c}"
        members = []
        for g in range(JOBS_PER_CLUSTER):
            gid = f"{cluster}g{g}"
            site = selector.choose(gid, pools)
            node_id = wf.add(
                ComputeNode(
                    f"gm-{gid}",
                    AbstractJob(gid, "galMorph", (f"{gid}.fit",), (f"{gid}.xml",)),
                    site,
                    "/usr/local/vds/bin/galmorph",
                )
            )
            members.append((node_id, f"{gid}.xml"))
        concat = wf.add(
            ComputeNode(
                f"concat-{cluster}",
                AbstractJob(
                    f"concat-{cluster}",
                    "concatVOTable",
                    tuple(lfn for _, lfn in members),
                    (f"{cluster}.votable",),
                ),
                CACHE_SITE,
                "/usr/local/vds/bin/concat-votable",
            )
        )
        for node_id, _ in members:
            wf.link(node_id, concat)
    return wf


def run_arm(adaptive: bool, waves: int, slow: bool = True) -> dict:
    """One campaign arm: ``waves`` waves on a fresh topology; the adaptive
    arm's estimator (and hence placement + speculation budgets) persists
    across waves the way a long-running service's would."""
    topology = GridTopology.default_demo()
    pools = sorted(topology.pools)
    controller = None
    selector: SiteSelector = RoundRobinSiteSelector()
    if adaptive:
        controller = AdaptiveController(
            speculation=SpeculationPolicy(),
            autoscale=AutoscaleConfig(cooldown_s=20.0),
            predictive=True,
        )
        selector = PredictiveSiteSelector(
            RoundRobinSiteSelector(),
            controller.estimator,
            capacities=topology.capacities(),
        )
    makespans: list[float] = []
    speculated = won = wasted = 0
    t0 = time.perf_counter()
    for wave in range(waves):
        workflow = build_wave(wave, selector, pools)
        simulator = GridSimulator(
            topology,
            SimulationOptions(seed=SEED + wave),
            faults=get_profile("slow-site", seed=SEED).injector() if slow else None,
            adaptive=controller,
        )
        report = simulator.execute(workflow)
        assert report.succeeded, f"wave {wave} failed: {report.failed_nodes}"
        makespans.append(report.makespan)
        speculated += report.speculated
        won += report.spec_won
        wasted += report.spec_wasted
    wall_s = time.perf_counter() - t0
    out = {
        "waves": waves,
        "clusters": waves * CLUSTERS_PER_WAVE,
        "jobs": waves * CLUSTERS_PER_WAVE * (JOBS_PER_CLUSTER + 1),
        "makespan_s": round(sum(makespans), 2),
        "wave_makespans_s": [round(m, 2) for m in makespans],
        "wall_s": round(wall_s, 4),
        "speculated": speculated,
        "spec_won": won,
        "spec_wasted": wasted,
    }
    if controller is not None:
        out["estimator"] = controller.snapshot()["sites"]
        if controller.last_autoscaler is not None:
            out["autoscale"] = controller.last_autoscaler.snapshot()
    return out


def slo_attainment(arm: dict, deadline_s: float) -> float:
    """Fraction of waves that met the per-wave campaign deadline."""
    waves = arm["wave_makespans_s"]
    return round(sum(1 for m in waves if m <= deadline_s) / len(waves), 4)


def _measure_bookkeeping_unit_cost_s(iterations: int) -> float:
    """Per-run cost of the adaptive bookkeeping the disabled path still
    executes: the run-table inserts/pops and membership probes added to
    the simulator's event loop.  A deliberate over-count — the real
    disabled path skips several of these."""
    run_payload: dict[int, object] = {}
    run_site: dict[int, str] = {}
    run_start: dict[int, float] = {}
    run_slot_site: dict[int, str] = {}
    node_runs: dict[str, set[int]] = {}
    finished: set[int] = set()
    cancelled: set[int] = set()
    duplicates: set[int] = set()
    t0 = time.perf_counter()
    for i in range(iterations):
        run_payload[i] = None
        run_site[i] = "site"
        run_start[i] = 0.0
        run_slot_site[i] = "site"
        node_runs.setdefault("node", set()).add(i)
        _ = i in cancelled
        _ = i in duplicates
        finished.add(i)
        run_slot_site.pop(i, None)
        _ = run_payload[i]
    return (time.perf_counter() - t0) / iterations


def bench_disabled_overhead(static_arm: dict, quick: bool) -> dict:
    """Scaled bookkeeping cost vs the measured static-arm wall time."""
    unit_cost_s = _measure_bookkeeping_unit_cost_s(20_000 if quick else 200_000)
    # One microbench iteration performs a full run lifecycle (start-side
    # inserts + finish-side probes and pops), so one crossing per job,
    # with 25% headroom for the heap-guard None-tests the loop also hits.
    crossings = round(1.25 * static_arm["jobs"])
    overhead_s = unit_cost_s * crossings
    wall_s = static_arm["wall_s"]
    fraction = overhead_s / wall_s if wall_s > 0 else 0.0
    return {
        "unit_cost_ns": round(unit_cost_s * 1e9, 1),
        "crossings": crossings,
        "overhead_s": round(overhead_s, 6),
        "overhead_fraction": round(fraction, 6),
        "budget": OVERHEAD_BUDGET,
        "within_budget": fraction < OVERHEAD_BUDGET,
    }


def bench_byte_identity() -> dict:
    """The slow-site chaos campaign on the *real* executor: latency (wall
    stalls + speculation) must never change output bytes."""
    t0 = time.perf_counter()
    report = run_chaos_campaign(profile="slow-site")
    wall_s = time.perf_counter() - t0
    return {
        "profile": report.profile,
        "recovered": report.recovered,
        "wall_s": round(wall_s, 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer waves/iterations")
    parser.add_argument(
        "--check", action="store_true",
        help="fail unless the makespan, byte-identity and overhead gates hold",
    )
    args = parser.parse_args(argv)

    waves = QUICK_WAVES if args.quick else FULL_WAVES

    # fault-free static reference: the per-wave SLO deadline is 1.5× the
    # time the campaign takes when nothing is slow
    reference = run_arm(adaptive=False, waves=1, slow=False)
    deadline_s = 1.5 * reference["wave_makespans_s"][0]

    static = run_arm(adaptive=False, waves=waves)
    adaptive = run_arm(adaptive=True, waves=waves)
    ratio = (
        static["makespan_s"] / adaptive["makespan_s"]
        if adaptive["makespan_s"] > 0
        else float("inf")
    )
    overhead = bench_disabled_overhead(static, quick=args.quick)
    identity = bench_byte_identity()

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "mode": "quick" if args.quick else "full",
        "deadline_s": round(deadline_s, 2),
        "static": static,
        "adaptive": adaptive,
        "makespan_ratio": round(ratio, 4),
        "makespan_gate": MAKESPAN_GATE,
        "slo_attainment": {
            "static": slo_attainment(static, deadline_s),
            "adaptive": slo_attainment(adaptive, deadline_s),
        },
        "disabled_overhead": overhead,
        "byte_identity": identity,
    }

    history = {"history": []}
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history["history"].append(entry)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")

    print(
        f"static   {static['makespan_s']:9.1f}s over {waves} waves "
        f"({static['jobs']} jobs)"
    )
    print(
        f"adaptive {adaptive['makespan_s']:9.1f}s  "
        f"speculated={adaptive['speculated']} won={adaptive['spec_won']} "
        f"wasted={adaptive['spec_wasted']}"
    )
    print(
        f"makespan ratio {ratio:.2f}x (gate {MAKESPAN_GATE}x): "
        f"{'OK' if ratio >= MAKESPAN_GATE else 'MISSED'}"
    )
    print(
        f"SLO attainment (deadline {deadline_s:.0f}s/wave): "
        f"static {entry['slo_attainment']['static']:.0%} -> "
        f"adaptive {entry['slo_attainment']['adaptive']:.0%}"
    )
    print(
        f"byte identity under slow-site: "
        f"{'byte-identical' if identity['recovered'] else 'MISMATCH'} "
        f"({identity['wall_s']:.1f}s wall)"
    )
    print(
        f"disabled-layer overhead: {overhead['overhead_fraction']:.4%} of "
        f"{static['wall_s']:.2f}s wall -> budget {OVERHEAD_BUDGET:.0%}: "
        f"{'OK' if overhead['within_budget'] else 'EXCEEDED'}"
    )
    print(f"trajectory -> {TRAJECTORY}")

    if args.check:
        failed = False
        if ratio < MAKESPAN_GATE:
            print(
                f"FAIL: makespan ratio {ratio:.2f}x below {MAKESPAN_GATE}x",
                file=sys.stderr,
            )
            failed = True
        if entry["slo_attainment"]["adaptive"] < entry["slo_attainment"]["static"]:
            print("FAIL: adaptive SLO attainment regressed vs static", file=sys.stderr)
            failed = True
        if not identity["recovered"]:
            print("FAIL: slow-site campaign was not byte-identical", file=sys.stderr)
            failed = True
        if not overhead["within_budget"]:
            print("FAIL: disabled-layer overhead exceeds budget", file=sys.stderr)
            failed = True
        if failed:
            return 1
        print("checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
