"""Ablation (§3.2): workflow reduction benefit vs fraction of cached results.

"If data products described within the AW already exist, Pegasus reuses
them and thus reduces the complexity of the CW."  Sweeps the fraction of
per-galaxy results pre-registered in the RLS from 0% to 100% and measures
jobs executed and simulated makespan, with reduction on vs off.
"""

from __future__ import annotations

from repro.condor.pool import GridTopology
from repro.condor.simulator import GridSimulator, SimulationOptions
from repro.pegasus.options import PlannerOptions
from repro.pegasus.planner import PegasusPlanner
from repro.rls.rls import ReplicaLocationService
from repro.tc.catalog import TransformationCatalog
from repro.workflow.abstract import AbstractJob, AbstractWorkflow

N_GALAXIES = 120
FRACTIONS = [0.0, 0.25, 0.5, 0.75, 1.0]


def build(fraction_cached: float, enable_reduction: bool):
    rls = ReplicaLocationService()
    for site in ("isi", "uwisc", "fnal", "store"):
        rls.add_site(site)
    tc = TransformationCatalog()
    for site in ("isi", "uwisc", "fnal"):
        tc.install("galMorph", site, "/bin/galmorph")
    tc.install("concatVOTable", "store", "/bin/concat")
    jobs = []
    n_cached = int(round(fraction_cached * N_GALAXIES))
    for i in range(N_GALAXIES):
        rls.register(f"g{i}.fit", f"gsiftp://store.grid/data/g{i}.fit", "store")
        if i < n_cached:
            rls.register(f"g{i}.txt", f"gsiftp://store.grid/data/g{i}.txt", "store")
        jobs.append(AbstractJob(f"d{i}", "galMorph", (f"g{i}.fit",), (f"g{i}.txt",)))
    jobs.append(
        AbstractJob(
            "cat", "concatVOTable", tuple(f"g{i}.txt" for i in range(N_GALAXIES)), ("all.vot",)
        )
    )
    planner = PegasusPlanner(
        rls,
        tc,
        PlannerOptions(
            output_site="store",
            site_selection="round-robin",
            enable_reduction=enable_reduction,
        ),
    )
    return planner, AbstractWorkflow(jobs)


def run_case(fraction: float, enable_reduction: bool):
    planner, workflow = build(fraction, enable_reduction)
    plan = planner.plan(workflow)
    sim = GridSimulator(GridTopology.default_demo(), SimulationOptions(runtime_jitter=0.0))
    report = sim.execute(plan.concrete)
    assert report.succeeded
    return plan.concrete.stats()["compute"], report.makespan


def test_reduction_sweep(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: [(f, *run_case(f, True), *run_case(f, False)) for f in FRACTIONS],
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{'cached':>7s} {'jobs(red)':>10s} {'makespan(red)':>14s} "
        f"{'jobs(no-red)':>13s} {'makespan(no-red)':>17s}"
    ]
    prev_jobs = None
    for fraction, jobs_red, mk_red, jobs_off, mk_off in rows:
        lines.append(
            f"{fraction:>6.0%} {jobs_red:>10d} {mk_red:>13.1f}s {jobs_off:>13d} {mk_off:>16.1f}s"
        )
        expected = N_GALAXIES - int(round(fraction * N_GALAXIES)) + 1
        assert jobs_red == expected  # reduction prunes exactly the cached jobs
        assert jobs_off == N_GALAXIES + 1  # baseline recomputes everything
        if prev_jobs is not None:
            assert jobs_red <= prev_jobs  # monotone in cache fraction
        prev_jobs = jobs_red
    # 100% cached: only the concat runs, makespan collapses
    full = rows[-1]
    assert full[1] == 1
    assert full[2] < rows[0][2] / 3
    lines.append("")
    lines.append(
        "shape: executed jobs fall linearly with the cached fraction under "
        "reduction and stay flat without it; makespan follows."
    )
    record_table("ablation_reduction", "\n".join(lines))
