"""Shard-fleet benchmark: scaling and cross-shard reuse, with gates.

Two measurements, appended to ``BENCH_shard.json`` at the repo root:

* **scaling** — one campaign of distinct-signature synthetic jobs driven
  through a 1-shard fleet and a 4-shard fleet (both one executor thread
  per worker, so the only difference is process parallelism).  Process
  startup is excluded: the clock covers submit -> drain.  Gated
  (``--check``): the 4-shard fleet must deliver >= 2x the single-shard
  jobs/s.  Perfect scaling would be ~4x minus the consistent-hash skew
  (64 tiles over 4 shards places ~1.25x the mean on the busiest shard);
  2x is the floor below which the fleet is coordination-bound.

* **reuse** — a repeated-signature workload across *topologies*: the
  same clusters are first derived by an ``a*``-named fleet, then
  resubmitted to a fresh ``s*``-named fleet sharing the same data
  directory.  Every second-wave job should short-circuit on the shared
  signature store, and — because the recorded owners are foreign — count
  as a cross-shard hit.  Gated: cross-shard hit rate > 0.

Usage::

    PYTHONPATH=src python benchmarks/run_shard_bench.py --quick
    PYTHONPATH=src python benchmarks/run_shard_bench.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.shard.fleet import ShardFleet  # noqa: E402

TRAJECTORY = REPO_ROOT / "BENCH_shard.json"

#: --check gates.
SPEEDUP_FLOOR = 2.0
CROSS_HIT_RATE_FLOOR = 0.0  # strictly greater than


def _campaign(fleet: ShardFleet, clusters: list[str], users: int = 4) -> dict:
    """Submit every cluster, drain, return timing + cache counters."""
    started = time.monotonic()
    records = [
        fleet.submit(f"user{i % users}", cluster)
        for i, cluster in enumerate(clusters)
    ]
    for record in records:
        fleet.wait(record.job_id, timeout=600.0)
    elapsed = time.monotonic() - started
    terminal = [fleet.job(r.job_id) for r in records]
    return {
        "jobs": len(records),
        "elapsed_s": round(elapsed, 3),
        "jobs_per_s": round(len(records) / elapsed, 2),
        "cache_hits": sum(1 for r in terminal if r.cache_hit),
        "cross_shard_hits": fleet.cross_shard_hits(),
    }


def measure_scaling(root: Path, quick: bool) -> dict:
    n_jobs = 32 if quick else 64
    base_seconds = 0.04 if quick else 0.06
    clusters = [f"B{i:02d}" for i in range(n_jobs)]
    runs: dict[str, dict] = {}
    for label, shards in (("single", 1), ("fleet4", 4)):
        fleet = ShardFleet(
            root / f"scaling-{label}",
            shards=shards,
            base_seconds=base_seconds,
            spread_seconds=0.0,
            max_workers=1,
        )
        with fleet:
            runs[label] = _campaign(fleet, clusters)
        assert fleet.leaked_processes() == []
    speedup = runs["fleet4"]["jobs_per_s"] / runs["single"]["jobs_per_s"]
    entry = {
        "jobs": n_jobs,
        "base_seconds": base_seconds,
        "single_shard": runs["single"],
        "four_shards": runs["fleet4"],
        "speedup": round(speedup, 2),
    }
    print(
        f"scaling: {n_jobs} jobs @ {base_seconds * 1000:.0f} ms — "
        f"1 shard {runs['single']['jobs_per_s']:.1f} jobs/s, "
        f"4 shards {runs['fleet4']['jobs_per_s']:.1f} jobs/s "
        f"({speedup:.2f}x)"
    )
    return entry


def measure_reuse(root: Path, quick: bool) -> dict:
    n_jobs = 16 if quick else 32
    clusters = [f"R{i:02d}" for i in range(n_jobs)]
    data_dir = root / "reuse"
    first = ShardFleet(
        data_dir, shard_names=("a0", "a1"), base_seconds=0.02, spread_seconds=0.0
    )
    with first:
        warm = _campaign(first, clusters)
    assert first.leaked_processes() == []

    second = ShardFleet(
        data_dir, shards=4, base_seconds=0.02, spread_seconds=0.0
    )
    with second:
        reuse = _campaign(second, clusters)
    assert second.leaked_processes() == []

    cross_rate = reuse["cross_shard_hits"] / reuse["jobs"]
    entry = {
        "jobs": n_jobs,
        "first_topology": warm,
        "second_topology": reuse,
        "cross_shard_hit_rate": round(cross_rate, 3),
    }
    print(
        f"reuse: {n_jobs} repeated signatures across topologies — "
        f"{reuse['cache_hits']} cache hits, "
        f"{reuse['cross_shard_hits']} cross-shard "
        f"(rate {cross_rate:.2f})"
    )
    return entry


def check_gates(scaling: dict, reuse: dict) -> list[str]:
    problems: list[str] = []
    if scaling["speedup"] < SPEEDUP_FLOOR:
        problems.append(
            f"scaling: 4-shard speedup {scaling['speedup']:.2f}x below the "
            f"{SPEEDUP_FLOOR:.1f}x floor — the fleet is coordination-bound"
        )
    if reuse["cross_shard_hit_rate"] <= CROSS_HIT_RATE_FLOOR:
        problems.append(
            "reuse: zero cross-shard cache hits on a repeated-signature "
            "workload — the shared signature directory is not short-circuiting"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller campaigns for CI")
    parser.add_argument(
        "--check", action="store_true",
        help="fail unless scaling and reuse meet their gates",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="shard-bench-") as tmp:
        root = Path(tmp)
        scaling = measure_scaling(root, quick=args.quick)
        reuse = measure_reuse(root, quick=args.quick)

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "mode": "quick" if args.quick else "full",
        "gates": {
            "speedup_floor": SPEEDUP_FLOOR,
            "cross_hit_rate_floor": CROSS_HIT_RATE_FLOOR,
        },
        "scaling": scaling,
        "reuse": reuse,
    }
    history = {"history": []}
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history["history"].append(entry)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")
    print(f"trajectory -> {TRAJECTORY}")

    if args.check:
        problems = check_gates(scaling, reuse)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        print("checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
