"""Kernel throughput: the vectorised morphology measurements.

Not a paper table — the §5 campaign's compute cost is dominated by these
kernels, so their scaling (with cutout size) is tracked here per the HPC
guide's "no optimisation without measuring".

Each hot kernel is benchmarked three ways where it matters:

* ``*_reference`` — the seed implementation (kept verbatim in
  :mod:`repro.morphology.reference`), the "before" number;
* the plain test — the geometry-cached fast path, cold shared cache
  behaviour amortised across benchmark rounds (the campaign steady state);
* ``*_batch`` — whole-batch execution through
  :func:`~repro.morphology.pipeline.galmorph_batch`, the clustered-node
  path.

``benchmarks/run_bench.py --quick`` runs the same seed-vs-fast pairs
headlessly and appends the speedups to ``BENCH_morphology.json`` so later
PRs can gate on regressions.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import ndimage

from repro.fits.hdu import ImageHDU
from repro.fits.io import read_fits_bytes, write_fits_bytes
from repro.morphology.geometry import CutoutGeometry
from repro.morphology.measures import asymmetry_index, concentration_index
from repro.morphology.pipeline import GalmorphTask, galmorph, galmorph_batch
from repro.morphology.reference import (
    asymmetry_index_reference,
    concentration_index_reference,
    galmorph_reference,
)
from repro.sky.cluster import GalaxyRecord, MorphType
from repro.sky.galaxy import render_galaxy_image
from repro.sky.profiles import pixel_integrated_sersic


def test_galaxy_rendering(benchmark):
    galaxy = GalaxyRecord(
        "bench-g", 150.0, 2.0, 0.05, 17.0, MorphType.SPIRAL, 3.5, 0.3, 45.0, 0.25, 0.1
    )
    rng = np.random.default_rng(0)
    image = benchmark(lambda: render_galaxy_image(galaxy, size=64, rng=rng))
    assert image.shape == (64, 64)


def _asymmetry_image(size: int) -> np.ndarray:
    img = pixel_integrated_sersic(
        (size, size), ((size - 1) / 2, (size - 1) / 2), size / 10, 1.0, 1e4
    )
    return ndimage.gaussian_filter(img, 1.2)


@pytest.mark.parametrize("size", [32, 64, 128])
def test_asymmetry_scaling(benchmark, size):
    img = _asymmetry_image(size)
    center = ((size - 1) / 2, (size - 1) / 2)
    a = benchmark(lambda: asymmetry_index(img, center, size / 2 - 2))
    assert a >= 0.0


@pytest.mark.parametrize("size", [32, 64, 128])
def test_asymmetry_scaling_reference(benchmark, size):
    """Seed asymmetry: nine full ``ndimage.shift`` calls per evaluation."""
    img = _asymmetry_image(size)
    center = ((size - 1) / 2, (size - 1) / 2)
    a = benchmark(lambda: asymmetry_index_reference(img, center, size / 2 - 2))
    assert a >= 0.0


@pytest.mark.parametrize("size", [32, 64, 128])
def test_asymmetry_geometry_reuse(benchmark, size):
    """Fast asymmetry with an explicitly shared geometry (clustered-node
    steady state: all shape-level setup amortised away)."""
    img = _asymmetry_image(size)
    center = ((size - 1) / 2, (size - 1) / 2)
    geom = CutoutGeometry((size, size))
    a = benchmark(lambda: asymmetry_index(img, center, size / 2 - 2, geometry=geom))
    assert a >= 0.0


@pytest.mark.parametrize("size", [32, 64, 128])
def test_concentration_scaling(benchmark, size):
    img = pixel_integrated_sersic((size, size), ((size - 1) / 2, (size - 1) / 2), size / 10, 4.0, 1e4)
    img = ndimage.gaussian_filter(img, 1.2)
    center = ((size - 1) / 2, (size - 1) / 2)
    c = benchmark(lambda: concentration_index(img, center, size / 2 - 2))
    assert c > 2.0


@pytest.mark.parametrize("size", [32, 64, 128])
def test_concentration_scaling_reference(benchmark, size):
    """Seed concentration: index grids + argsort rebuilt on every call."""
    img = pixel_integrated_sersic((size, size), ((size - 1) / 2, (size - 1) / 2), size / 10, 4.0, 1e4)
    img = ndimage.gaussian_filter(img, 1.2)
    center = ((size - 1) / 2, (size - 1) / 2)
    c = benchmark(lambda: concentration_index_reference(img, center, size / 2 - 2))
    assert c > 2.0


def test_full_galmorph_job(benchmark):
    """One complete galMorph invocation: FITS parse -> params (the §5 unit
    of work; 1144 of these per campaign)."""
    galaxy = GalaxyRecord(
        "bench-g2", 150.0, 2.0, 0.05, 17.0, MorphType.ELLIPTICAL, 4.0, 0.2, 0.0, 0.01, 0.05
    )
    payload = write_fits_bytes(
        __import__("repro.fits.hdu", fromlist=["ImageHDU"]).ImageHDU(
            render_galaxy_image(galaxy, rng=np.random.default_rng(1))
        )
    )

    def job():
        hdu = read_fits_bytes(payload)
        return galmorph(hdu, redshift=0.05, pix_scale=0.4 / 3600.0, galaxy_id="bench-g2")

    result = benchmark(job)
    assert result.valid


def test_full_galmorph_job_reference(benchmark):
    """The same §5 unit of work through the preserved seed pipeline — the
    "before" number for the geometry-cache speedup."""
    galaxy = GalaxyRecord(
        "bench-g2", 150.0, 2.0, 0.05, 17.0, MorphType.ELLIPTICAL, 4.0, 0.2, 0.0, 0.01, 0.05
    )
    payload = write_fits_bytes(ImageHDU(render_galaxy_image(galaxy, rng=np.random.default_rng(1))))

    def job():
        hdu = read_fits_bytes(payload)
        return galmorph_reference(
            hdu, redshift=0.05, pix_scale=0.4 / 3600.0, galaxy_id="bench-g2"
        )

    result = benchmark(job)
    assert result.valid


def test_galmorph_batch_shared_geometry(benchmark):
    """A 16-galaxy same-shape bundle through ``galmorph_batch`` — the
    clustered compute node's amortised path."""
    types = [MorphType.ELLIPTICAL, MorphType.SPIRAL, MorphType.IRREGULAR, MorphType.LENTICULAR]
    tasks = []
    for i in range(16):
        galaxy = GalaxyRecord(
            f"batch-{i}", 150.0, 2.0, 0.05, 17.0, types[i % 4], 2.5, 0.25, 30.0, 0.2, 0.1
        )
        hdu = ImageHDU(render_galaxy_image(galaxy, rng=np.random.default_rng(100 + i)))
        tasks.append(GalmorphTask(image=hdu, redshift=0.05, pix_scale=0.4 / 3600.0,
                                  galaxy_id=f"batch-{i}"))

    results = benchmark(lambda: galmorph_batch(tasks))
    assert len(results) == 16
    assert all(r.valid for r in results)
