"""Kernel throughput: the vectorised morphology measurements.

Not a paper table — the §5 campaign's compute cost is dominated by these
kernels, so their scaling (with cutout size) is tracked here per the HPC
guide's "no optimisation without measuring".
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import ndimage

from repro.fits.io import read_fits_bytes, write_fits_bytes
from repro.morphology.measures import asymmetry_index, concentration_index
from repro.morphology.pipeline import galmorph
from repro.sky.cluster import GalaxyRecord, MorphType
from repro.sky.galaxy import render_galaxy_image
from repro.sky.profiles import pixel_integrated_sersic


def test_galaxy_rendering(benchmark):
    galaxy = GalaxyRecord(
        "bench-g", 150.0, 2.0, 0.05, 17.0, MorphType.SPIRAL, 3.5, 0.3, 45.0, 0.25, 0.1
    )
    rng = np.random.default_rng(0)
    image = benchmark(lambda: render_galaxy_image(galaxy, size=64, rng=rng))
    assert image.shape == (64, 64)


@pytest.mark.parametrize("size", [32, 64, 128])
def test_asymmetry_scaling(benchmark, size):
    img = pixel_integrated_sersic((size, size), ((size - 1) / 2, (size - 1) / 2), size / 10, 1.0, 1e4)
    img = ndimage.gaussian_filter(img, 1.2)
    center = ((size - 1) / 2, (size - 1) / 2)
    a = benchmark(lambda: asymmetry_index(img, center, size / 2 - 2))
    assert a >= 0.0


@pytest.mark.parametrize("size", [32, 64, 128])
def test_concentration_scaling(benchmark, size):
    img = pixel_integrated_sersic((size, size), ((size - 1) / 2, (size - 1) / 2), size / 10, 4.0, 1e4)
    img = ndimage.gaussian_filter(img, 1.2)
    center = ((size - 1) / 2, (size - 1) / 2)
    c = benchmark(lambda: concentration_index(img, center, size / 2 - 2))
    assert c > 2.0


def test_full_galmorph_job(benchmark):
    """One complete galMorph invocation: FITS parse -> params (the §5 unit
    of work; 1144 of these per campaign)."""
    galaxy = GalaxyRecord(
        "bench-g2", 150.0, 2.0, 0.05, 17.0, MorphType.ELLIPTICAL, 4.0, 0.2, 0.0, 0.01, 0.05
    )
    payload = write_fits_bytes(
        __import__("repro.fits.hdu", fromlist=["ImageHDU"]).ImageHDU(
            render_galaxy_image(galaxy, rng=np.random.default_rng(1))
        )
    )

    def job():
        hdu = read_fits_bytes(payload)
        return galmorph(hdu, redshift=0.05, pix_scale=0.4 / 3600.0, galaxy_id="bench-g2")

    result = benchmark(job)
    assert result.valid
