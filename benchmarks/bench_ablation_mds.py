"""Ablation: dynamic MDS-driven site selection (the paper's stated future
work — "we plan to include dynamic information provided by Globus MDS").

Scenario: another VO's jobs are already occupying most of one pool.  The
static policies don't know; the MDS does.  Compare simulated makespans of a
120-job workflow planned with the paper's static random policy vs the
MDS-driven selector.
"""

from __future__ import annotations

from repro.condor.mds import MdsSiteSelector, MonitoringService, ResourceRecord
from repro.condor.pool import CondorPool, GridTopology
from repro.condor.simulator import GridSimulator, SimulationOptions
from repro.pegasus.options import PlannerOptions
from repro.pegasus.planner import PegasusPlanner
from repro.rls.rls import ReplicaLocationService
from repro.tc.catalog import TransformationCatalog
from repro.workflow.abstract import AbstractJob, AbstractWorkflow

N_JOBS = 120
#: uwisc is mostly busy with someone else's work; the others are idle.
EXTERNAL_LOAD = {"isi": 0, "uwisc": 18, "fnal": 0}


def topology() -> GridTopology:
    topo = GridTopology()
    topo.add_pool(CondorPool("isi", slots=12))
    topo.add_pool(CondorPool("uwisc", slots=20))
    topo.add_pool(CondorPool("fnal", slots=12))
    return topo


def loaded_topology() -> GridTopology:
    """The same pools with the external load consuming slots for real."""
    topo = GridTopology()
    for name, pool in topology().pools.items():
        topo.add_pool(
            CondorPool(name, slots=max(pool.slots - EXTERNAL_LOAD[name], 1), speed=pool.speed)
        )
    return topo


def build(selector_factory):
    rls = ReplicaLocationService()
    for site in ("isi", "uwisc", "fnal", "store"):
        rls.add_site(site)
    tc = TransformationCatalog()
    for site in ("isi", "uwisc", "fnal"):
        tc.install("galMorph", site, "/bin/galmorph")
    jobs = []
    for i in range(N_JOBS):
        rls.register(f"g{i}.fit", f"gsiftp://store.grid/data/g{i}.fit", "store")
        jobs.append(AbstractJob(f"d{i}", "galMorph", (f"g{i}.fit",), (f"g{i}.txt",)))
    planner = PegasusPlanner(
        rls,
        tc,
        PlannerOptions(output_site="store", site_selection="random"),
        site_selector_factory=selector_factory,
    )
    return planner, AbstractWorkflow(jobs)


def run(selector_factory) -> tuple[float, dict[str, int]]:
    planner, workflow = build(selector_factory)
    plan = planner.plan(workflow)
    sim = GridSimulator(loaded_topology(), SimulationOptions(runtime_jitter=0.0))
    report = sim.execute(plan.concrete)
    assert report.succeeded
    return report.makespan, report.jobs_per_site()


def test_mds_vs_static(benchmark, record_table):
    mds = MonitoringService()
    for name, pool in topology().pools.items():
        mds.publish(
            ResourceRecord(name, pool.slots, EXTERNAL_LOAD[name], pool.speed, timestamp=0.0)
        )

    def sweep():
        static_makespan, static_spread = run(None)  # PlannerOptions: random
        mds_makespan, mds_spread = run(lambda: MdsSiteSelector(mds))
        return static_makespan, static_spread, mds_makespan, mds_spread

    static_makespan, static_spread, mds_makespan, mds_spread = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )

    # the MDS selector routes around the loaded pool and wins
    assert mds_makespan < static_makespan
    assert mds_spread.get("uwisc", 0) < static_spread.get("uwisc", 0)

    lines = [
        f"external load: uwisc has {EXTERNAL_LOAD['uwisc']}/20 slots busy; isi/fnal idle",
        "",
        f"{'policy':<16s} {'makespan':>9s} {'isi':>5s} {'uwisc':>6s} {'fnal':>6s}",
        f"{'random (paper)':<16s} {static_makespan:>8.1f}s "
        f"{static_spread.get('isi', 0):>5d} {static_spread.get('uwisc', 0):>6d} {static_spread.get('fnal', 0):>6d}",
        f"{'MDS-driven':<16s} {mds_makespan:>8.1f}s "
        f"{mds_spread.get('isi', 0):>5d} {mds_spread.get('uwisc', 0):>6d} {mds_spread.get('fnal', 0):>6d}",
        "",
        f"speedup: {static_makespan / mds_makespan:.2f}x — dynamic resource "
        "information avoids the pool other users have saturated.",
    ]
    record_table("ablation_mds", "\n".join(lines))
