"""Headless chaos/resilience benchmark.

Two questions, answered into ``BENCH_chaos.json`` at the repo root:

1. **What does the resilience layer cost when it is off?**  Every fault
   hook in the hot paths is a single ``x is not None`` branch (services,
   RLS, both executors); retry wrappers are not even entered when no
   policy is configured.  The bench measures the per-call cost of the
   guarded RLS boundary directly (wrapped vs. raw lookup), scales it by a
   generous over-count of every hook crossing in a real one-cluster
   analysis, and gates the total against the measured run wall time:
   the disabled layer must cost **< 1%** (``--check``).

2. **Does the recovery invariant hold, and what did recovery cost?**
   One canonical-profile chaos campaign per run: recovered yes/no,
   faults injected, scheduler requeues, and the chaos-vs-baseline wall
   ratio are appended to the trajectory.

Usage::

    PYTHONPATH=src python benchmarks/run_chaos_bench.py --quick
    PYTHONPATH=src python benchmarks/run_chaos_bench.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.faults.chaos import run_chaos_campaign  # noqa: E402
from repro.portal.demo import build_demo_environment  # noqa: E402
from repro.sky.registry_data import demonstration_cluster  # noqa: E402

TRAJECTORY = REPO_ROOT / "BENCH_chaos.json"

#: Maximum tolerated disabled-layer cost relative to run wall time.
OVERHEAD_BUDGET = 0.01

#: Cluster small enough for CI, large enough to cross every hook surface.
BENCH_CLUSTER = "A3526"


def _measure_hook_unit_cost_s(env, iterations: int) -> float:
    """Per-call cost of one disabled fault hook, measured at the RLS.

    ``rls.exists`` carries the canonical disabled-path shape — an
    ``is not None`` test before dispatching to the raw implementation —
    so (wrapped - raw) isolates exactly what the resilience layer added.
    Negative timing noise clamps to zero.
    """
    rls = env.vds.rls
    lfn = "bench-probe.fit"

    t0 = time.perf_counter()
    for _ in range(iterations):
        rls.exists(lfn)
    wrapped = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(iterations):
        rls._exists_impl(lfn)  # noqa: SLF001 - the pre-hook code path
    raw = time.perf_counter() - t0

    return max(0.0, (wrapped - raw) / iterations)


def bench_disabled_overhead(quick: bool) -> dict:
    """Fault-free analysis run + scaled hook-cost accounting."""
    cluster = demonstration_cluster(BENCH_CLUSTER)
    env = build_demo_environment(clusters=[cluster])

    t0 = time.perf_counter()
    session = env.portal.run_analysis(BENCH_CLUSTER)
    wall_s = time.perf_counter() - t0
    assert session.merged is not None and len(session.merged) > 0

    unit_cost_s = _measure_hook_unit_cost_s(env, 2_000 if quick else 20_000)

    # Generous over-count of hook crossings in the run: every RLS query,
    # every service call (queries + per-galaxy fetches + polls), and two
    # hooks per DAG node (launch decision + health bookkeeping).
    request = list(env.compute_service.requests.values())[-1]
    report = request.report
    nodes = 0
    if report is not None:
        nodes = len(report.compute_runs) + len(report.transfer_runs)
    galaxies = len(session.merged)
    hook_crossings = (
        env.vds.rls.query_count
        + 6 * galaxies  # cone/SIA/cutout queries + fetches, over-counted
        + 2 * nodes
        + 100  # campaign fixed costs (archive queries, merges, polls)
    )
    overhead_s = unit_cost_s * hook_crossings
    fraction = overhead_s / wall_s if wall_s > 0 else 0.0
    return {
        "wall_s": round(wall_s, 4),
        "hook_unit_cost_ns": round(unit_cost_s * 1e9, 1),
        "hook_crossings": hook_crossings,
        "overhead_s": round(overhead_s, 6),
        "overhead_fraction": round(fraction, 6),
        "budget": OVERHEAD_BUDGET,
        "within_budget": fraction < OVERHEAD_BUDGET,
    }


def bench_chaos_recovery() -> dict:
    """One canonical recoverable campaign; wall cost of recovery."""
    t0 = time.perf_counter()
    report = run_chaos_campaign(profile="recoverable", clusters=[BENCH_CLUSTER])
    wall_s = time.perf_counter() - t0
    return {
        "profile": report.profile,
        "recovered": report.recovered,
        "total_injected": sum(report.injected.values()),
        "requeues": sum(o.requeues for o in report.outcomes),
        "breaker_open_sites": [
            site for site, state in report.breaker_states.items() if state == "open"
        ],
        "wall_s": round(wall_s, 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer micro iterations")
    parser.add_argument(
        "--check", action="store_true",
        help="fail unless overhead < budget and the recovery invariant holds",
    )
    args = parser.parse_args(argv)

    overhead = bench_disabled_overhead(quick=args.quick)
    chaos = bench_chaos_recovery()

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "mode": "quick" if args.quick else "full",
        "disabled_overhead": overhead,
        "chaos_recovery": chaos,
    }

    history = {"history": []}
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history["history"].append(entry)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")

    print(
        f"disabled-layer overhead: {overhead['overhead_fraction']:.4%} of "
        f"{overhead['wall_s']:.2f}s wall "
        f"({overhead['hook_unit_cost_ns']:.0f} ns x {overhead['hook_crossings']} hooks)"
        f" -> budget {OVERHEAD_BUDGET:.0%}: "
        f"{'OK' if overhead['within_budget'] else 'EXCEEDED'}"
    )
    print(
        f"chaos recovery ({chaos['profile']}): "
        f"{'byte-identical' if chaos['recovered'] else 'MISMATCH'}; "
        f"{chaos['total_injected']} faults, {chaos['requeues']} requeue(s), "
        f"breakers open: {chaos['breaker_open_sites'] or 'none'}; "
        f"{chaos['wall_s']:.2f}s wall"
    )
    print(f"trajectory -> {TRAJECTORY}")

    if args.check:
        if not overhead["within_budget"]:
            print("FAIL: disabled-layer overhead exceeds budget", file=sys.stderr)
            return 1
        if not chaos["recovered"]:
            print("FAIL: recovery invariant violated", file=sys.stderr)
            return 1
        print("checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
