"""Figure 3: materialised intermediate `b` reduces the workflow to d2 alone."""

from __future__ import annotations

from repro.pegasus.reduction import reduce_workflow
from repro.rls.rls import ReplicaLocationService
from repro.workflow.abstract import AbstractJob, AbstractWorkflow

FIG1 = AbstractWorkflow(
    [
        AbstractJob("d1", "t1", inputs=("a",), outputs=("b",)),
        AbstractJob("d2", "t2", inputs=("b",), outputs=("c",)),
    ]
)


def make_rls(*lfns: str) -> ReplicaLocationService:
    rls = ReplicaLocationService()
    rls.add_site("A")
    for lfn in lfns:
        rls.register(lfn, f"gsiftp://A.grid/data/{lfn}", "A")
    return rls


def test_fig3_reduction(benchmark, record_table):
    rls = make_rls("a", "b")
    result = benchmark(lambda: reduce_workflow(FIG1, rls))

    assert [j.job_id for j in result.workflow.jobs()] == ["d2"]
    assert result.pruned_jobs == ("d1",)
    assert result.reused_lfns == ("b",)

    lines = [
        "paper Fig 3: with b in the RLS the workflow reduces to  b --d2--> c",
        f"measured: kept jobs = {[j.job_id for j in result.workflow.jobs()]}, "
        f"pruned = {list(result.pruned_jobs)}, reused files = {list(result.reused_lfns)}",
    ]

    # and the degenerate cases around it:
    nothing = reduce_workflow(FIG1, make_rls("a"))
    lines.append(
        f"with only raw a: kept = {[j.job_id for j in nothing.workflow.jobs()]} (nothing pruned)"
    )
    everything = reduce_workflow(FIG1, make_rls("a", "c"))
    assert everything.fully_satisfied
    lines.append("with c materialised: workflow fully satisfied, 0 jobs")
    record_table("fig3_reduction", "\n".join(lines))


def test_fig3_reduction_cluster_scale(benchmark):
    """Reduction cost on a 562-job workflow with half the results cached."""
    n = 561
    jobs = [
        AbstractJob(f"d{i}", "galMorph", (f"g{i}.fit",), (f"g{i}.txt",)) for i in range(n)
    ]
    jobs.append(
        AbstractJob("cat", "concatVOTable", tuple(f"g{i}.txt" for i in range(n)), ("all.vot",))
    )
    workflow = AbstractWorkflow(jobs)
    cached = [f"g{i}.txt" for i in range(0, n, 2)] + [f"g{i}.fit" for i in range(n)]
    rls = make_rls(*cached)
    result = benchmark.pedantic(lambda: reduce_workflow(workflow, rls), rounds=3, iterations=1)
    assert len(result.pruned_jobs) == len(range(0, n, 2))
