"""Ablation: site-selection policies (random / round-robin / least-loaded).

The paper's Concrete Workflow Generator "picks a random location to execute
from among the returned locations"; related systems (Nimrod-G, ASCI Grid)
schedule by load.  Compares simulated makespan on the campaign's largest
workflow across the three policies over heterogeneous pools.
"""

from __future__ import annotations

import numpy as np

from repro.condor.pool import CondorPool, GridTopology
from repro.condor.simulator import GridSimulator, SimulationOptions
from repro.pegasus.options import PlannerOptions
from repro.pegasus.planner import PegasusPlanner
from repro.rls.rls import ReplicaLocationService
from repro.tc.catalog import TransformationCatalog
from repro.workflow.abstract import AbstractJob, AbstractWorkflow

N_GALAXIES = 200
POLICIES = ("random", "round-robin", "least-loaded")


def heterogeneous_topology() -> GridTopology:
    topo = GridTopology()
    topo.add_pool(CondorPool("isi", slots=4, speed=1.0))
    topo.add_pool(CondorPool("uwisc", slots=24, speed=1.1))
    topo.add_pool(CondorPool("fnal", slots=8, speed=0.9))
    return topo


def build_planner(policy: str, topo: GridTopology, seed: int):
    rls = ReplicaLocationService()
    for site in ("isi", "uwisc", "fnal", "store"):
        rls.add_site(site)
    tc = TransformationCatalog()
    for site in ("isi", "uwisc", "fnal"):
        tc.install("galMorph", site, "/bin/galmorph")
    tc.install("concatVOTable", "store", "/bin/concat")
    jobs = []
    for i in range(N_GALAXIES):
        rls.register(f"g{i}.fit", f"gsiftp://store.grid/data/g{i}.fit", "store")
        jobs.append(AbstractJob(f"d{i}", "galMorph", (f"g{i}.fit",), (f"g{i}.txt",)))
    jobs.append(
        AbstractJob(
            "cat", "concatVOTable", tuple(f"g{i}.txt" for i in range(N_GALAXIES)), ("all.vot",)
        )
    )
    planner = PegasusPlanner(
        rls,
        tc,
        PlannerOptions(output_site="store", site_selection=policy, seed=seed),
        site_capacities={**topo.capacities(), "store": 8},
    )
    return planner, AbstractWorkflow(jobs)


def makespan_for(policy: str, topo: GridTopology, seed: int = 2003) -> float:
    planner, workflow = build_planner(policy, topo, seed)
    plan = planner.plan(workflow)
    sim = GridSimulator(topo, SimulationOptions(runtime_jitter=0.0, seed=seed))
    report = sim.execute(plan.concrete)
    assert report.succeeded
    return report.makespan


def test_site_selection_policies(benchmark, record_table):
    topo = heterogeneous_topology()

    def sweep():
        results: dict[str, list[float]] = {}
        for policy in POLICIES:
            seeds = (1, 2, 3) if policy == "random" else (2003,)
            results[policy] = [makespan_for(policy, topo, seed=s) for s in seeds]
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    means = {policy: float(np.mean(times)) for policy, times in results.items()}

    # least-loaded (capacity-aware) beats both blind policies on a
    # heterogeneous grid; random and round-robin are comparable.
    assert means["least-loaded"] < means["random"]
    assert means["least-loaded"] < means["round-robin"]

    lines = [f"{'policy':<14s} {'mean makespan':>14s} {'runs':>5s}   (200 galMorph jobs, pools 4/24/8 slots)"]
    for policy in POLICIES:
        lines.append(f"{policy:<14s} {means[policy]:>13.1f}s {len(results[policy]):>5d}")
    lines.append("")
    lines.append(
        "shape: blind policies overload the 4-slot pool; capacity-aware "
        "selection is the win the paper deferred to future MDS integration."
    )
    record_table("ablation_site_selection", "\n".join(lines))
