"""The §2 science goal: the dynamical state of galaxy clusters.

"Our goal is to investigate the dynamical state of galaxy clusters ...
recent falling of matter into the cluster, be it in the form of single
galaxies or cluster mass groupings, will show the effects of the merging."

From each portal catalog we compute the robust velocity dispersion and the
Dressler-Shectman substructure statistic.  The eight demonstration clusters
are dynamically relaxed; a ninth synthetic cluster with a 30% infalling
subclump is analysed alongside them and must be the only one flagged.
"""

from __future__ import annotations

import dataclasses

from repro.portal.demo import build_demo_environment
from repro.portal.dynamics import analyze_dynamics
from repro.sky.registry_data import DEMONSTRATION_CLUSTERS, demonstration_cluster

#: A merging system alongside the relaxed demonstration sample, on its own
#: patch of sky (otherwise the cone searches would blend the clusters —
#: a projection effect real surveys do fight).
from repro.catalog.coords import SkyPosition

MERGING = dataclasses.replace(
    demonstration_cluster("A0496"),
    name="MERGE1",
    center=SkyPosition(120.0, 35.0),
    n_galaxies=90,
    subcluster_fraction=0.30,
    subcluster_velocity_kms=1800.0,
)


def test_dynamical_state_table(benchmark, record_table):
    sample = [demonstration_cluster("A3526"), demonstration_cluster("A0496"),
              demonstration_cluster("A2029"), MERGING]
    env = build_demo_environment(clusters=sample, seed_virtual_data_reuse=False)

    def run():
        states = {}
        for cluster in sample:
            session = env.portal.run_analysis(cluster.name)
            states[cluster.name] = analyze_dynamics(
                session.merged, cluster, n_shuffles=300
            )
        return states

    states = benchmark.pedantic(run, rounds=1, iterations=1)

    # Relaxed clusters sit well inside the null (p-values are uniform under
    # it, so an occasional ~0.05 is expected — we require p > 0.01); the
    # merger is detected far beyond doubt.
    for name in ("A3526", "A0496", "A2029"):
        assert states[name].ds.p_value > 0.01, name
    merger = states["MERGE1"]
    assert merger.ds.has_substructure
    assert merger.ds.p_value < 0.01
    assert merger.ds.big_delta / merger.ds.n_galaxies > max(
        states[n].ds.big_delta / states[n].ds.n_galaxies for n in ("A3526", "A0496", "A2029")
    )

    # dispersions recover the synthesis input (900 km/s) for relaxed systems
    for name in ("A0496", "A2029"):
        assert 550 < states[name].velocity_dispersion_kms < 1350

    lines = [
        f"{'cluster':<8s} {'N':>4s} {'sigma_v':>8s} {'DS Delta/N':>11s} {'p':>7s} {'state':>14s}"
    ]
    for name, state in states.items():
        p = state.ds.p_value
        verdict = "substructure" if p < 0.01 else ("marginal" if p < 0.1 else "relaxed")
        lines.append(
            f"{name:<8s} {state.n_members:>4d} {state.velocity_dispersion_kms:>7.0f} "
            f"{state.ds.big_delta / state.ds.n_galaxies:>11.2f} {p:>7.3f} "
            f"{verdict:>14s}"
        )
    lines.append("")
    lines.append(
        "shape: the Dressler-Shectman test decisively flags only the cluster "
        "with an infalling subclump (the 37-galaxy system is marginal, as DS "
        "is at that sample size) — 'large scale events in the history of the "
        "galaxy cluster' detected from the portal's own catalogs."
    )
    record_table("dynamics", "\n".join(lines))
