"""Figure 1: Chimera composes the abstract workflow d1 -> d2 for file `c`.

Uses the paper's exact two-derivation example; also times composition at the
scale of the largest demonstration cluster (562 derivations).
"""

from __future__ import annotations

from repro.vdl.catalog import VirtualDataCatalog
from repro.vdl.composer import compose_workflow
from repro.workflow.viz import render_ascii

FIG1_VDL = """
TR t1( in x, out y ) { }
TR t2( in x, out y ) { }
DV d1->t1( x=@{in:"a"}, y=@{out:"b"} );
DV d2->t2( x=@{in:"b"}, y=@{out:"c"} );
"""


def test_fig1_composition(benchmark, record_table):
    catalog = VirtualDataCatalog()
    catalog.define(FIG1_VDL)

    workflow = benchmark(lambda: compose_workflow(catalog, ["c"]))

    assert [j.job_id for j in workflow.jobs()] == ["d1", "d2"]
    assert workflow.dag.edges() == [("d1", "d2")]
    assert workflow.required_inputs() == {"a"}
    lines = [
        "paper: request c  =>  a --d1--> b --d2--> c",
        "measured abstract workflow:",
        render_ascii(workflow.dag),
        f"required inputs: {sorted(workflow.required_inputs())}",
        f"final products:  {sorted(workflow.final_products())}",
    ]
    record_table("fig1_abstract_workflow", "\n".join(lines))


def test_fig1_composition_at_cluster_scale(benchmark):
    """Composition cost for a 561-galaxy cluster's derivation set."""
    catalog = VirtualDataCatalog()
    catalog.define(
        "TR galMorph( in image, out galMorph ) { }\n"
        "TR concatVOTable( in results, out votable ) { }"
    )
    n = 561
    dvs = [
        f'DV d{i}->galMorph( image=@{{in:"g{i}.fit"}}, galMorph=@{{out:"g{i}.txt"}} );'
        for i in range(n)
    ]
    joined = ",".join(f'"g{i}.txt"' for i in range(n))
    dvs.append(f'DV dcat->concatVOTable( results=@{{in:{joined}}}, votable=@{{out:"all.vot"}} );')
    catalog.define("\n".join(dvs))

    workflow = benchmark(lambda: compose_workflow(catalog, ["all.vot"]))
    assert len(workflow) == n + 1
