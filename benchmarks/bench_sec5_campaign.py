"""Section 5: the headline campaign — all eight clusters, full accounting.

Paper: "eight different galaxy clusters.  The number of galaxies processed
for each cluster ranged from 37 to 561 ... a total of 1152 compute jobs ...
1525 images, corresponding to 30MB of data ... the transfer of 2295 files"
on three Condor pools.  This bench runs the complete system (real
computation, real bytes) and reports measured-vs-paper for every quantity.
"""

from __future__ import annotations

from repro.portal.campaign import run_campaign
from repro.sky.registry_data import campaign_expectations
from repro.utils.units import MB, format_bytes

PAPER = {"clusters": 8, "min_gal": 37, "max_gal": 561, "jobs": 1152, "images": 1525, "transfers": 2295}


def test_sec5_full_campaign(benchmark, record_table, demo_env):
    report = benchmark.pedantic(
        lambda: run_campaign(demo_env), rounds=1, iterations=1
    )

    lo, hi = report.galaxy_range
    assert report.clusters == PAPER["clusters"]
    assert (lo, hi) == (PAPER["min_gal"], PAPER["max_gal"])
    assert report.compute_jobs == PAPER["jobs"]
    assert report.images == PAPER["images"]
    assert report.transfers == PAPER["transfers"]
    assert abs(report.image_bytes - 30 * MB) / (30 * MB) < 0.05
    # three Condor pools carried the galMorph load (+ the service host for concat)
    assert {"isi", "uwisc", "fnal"} <= set(report.pools_used())
    # science: early types central in every cluster (the paper's claim);
    # the stricter asymmetry-radius trend holds wherever statistics allow
    analyses = [r.analysis for r in report.records if r.analysis is not None]
    assert all(a.rediscovered for a in analyses)
    big = [a for a in analyses if a.n_valid >= 50]
    assert all(a.asymmetry_trend_positive for a in big)

    lines = [report.totals_table(), ""]
    lines.append(
        f"{'cluster':<8s} {'gal':>4s} {'jobs':>5s} {'xfers':>6s} {'in/x/out':>12s} "
        f"{'valid':>6s} {'dressler':>9s}"
    )
    for r in report.records:
        flags = "yes" if (r.analysis and r.analysis.rediscovered) else "n/a"
        lines.append(
            f"{r.cluster:<8s} {r.galaxies:>4d} {r.compute_jobs:>5d} {r.transfers:>6d} "
            f"{r.stage_in:>4d}/{r.inter_site:>3d}/{r.stage_out:>2d} "
            f"{r.valid_measurements:>6d} {flags:>9s}"
        )
    lines.append("")
    lines.append(f"total image data: {format_bytes(report.image_bytes)} (paper: 30 MB)")
    lines.append(
        "note: one stage-in was avoided by Pegasus replica selection — a cutout "
        "of A1656 was already materialised at fnal (the virtual-data reuse of §3.2)."
    )
    record_table("sec5_campaign", "\n".join(lines))
