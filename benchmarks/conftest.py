"""Benchmark harness plumbing.

Every bench both *times* its operation with pytest-benchmark and *records*
the reproduced table/figure content to ``benchmarks/out/<name>.txt`` so the
paper-vs-measured comparison survives the run (EXPERIMENTS.md references
these artifacts).
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def record_table():
    """Write a rendered experiment table to benchmarks/out/<name>.txt."""
    OUT_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n")

    return _record


@pytest.fixture(scope="session")
def demo_env():
    """One shared full demonstration environment (local execution mode)."""
    from repro.portal.demo import build_demo_environment

    return build_demo_environment()
