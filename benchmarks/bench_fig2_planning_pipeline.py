"""Figure 2: the Chimera-driven Pegasus pipeline, message by message.

Asserts the numbered flow — abstract DAG in, RLS resolution, reduction,
TC resolution, concrete DAG, submit files — in order, and times a full
planning pass at cluster scale.
"""

from __future__ import annotations

from repro.pegasus.options import PlannerOptions
from repro.pegasus.planner import PegasusPlanner
from repro.rls.rls import ReplicaLocationService
from repro.tc.catalog import TransformationCatalog
from repro.workflow.abstract import AbstractJob, AbstractWorkflow

FIG2_STEPS = [
    "abstract-workflow-received",  # (1)-(2) Chimera -> Request Manager
    "request-manager-dispatch",
    "rls-resolution",  # (3)-(4) logical -> physical file names
    "dag-reduction",  # (5)-(6) full -> reduced abstract DAG
    "tc-resolution",  # (7)-(8) logical -> physical transformations
    "concrete-workflow",  # (9)-(10)
    "submit-files-generated",  # (11) DAGMan files
]


def build_grid(n_galaxies: int):
    rls = ReplicaLocationService()
    for site in ("isi", "uwisc", "fnal", "store"):
        rls.add_site(site)
    tc = TransformationCatalog()
    for site in ("isi", "uwisc", "fnal"):
        tc.install("galMorph", site, "/usr/bin/galmorph")
    tc.install("concatVOTable", "store", "/usr/bin/concat")
    jobs = []
    for i in range(n_galaxies):
        rls.register(f"g{i}.fit", f"gsiftp://store.grid/data/g{i}.fit", "store")
        jobs.append(AbstractJob(f"d{i}", "galMorph", (f"g{i}.fit",), (f"g{i}.txt",)))
    jobs.append(
        AbstractJob(
            "dcat", "concatVOTable", tuple(f"g{i}.txt" for i in range(n_galaxies)), ("all.vot",)
        )
    )
    return rls, tc, AbstractWorkflow(jobs)


def test_fig2_message_order(benchmark, record_table):
    rls, tc, workflow = build_grid(37)
    planner = PegasusPlanner(
        rls, tc, PlannerOptions(output_site="store", site_selection="round-robin")
    )
    plan = benchmark.pedantic(lambda: planner.plan(workflow), rounds=1, iterations=1)

    kinds = [k for k in planner.events.kinds() if k in FIG2_STEPS]
    assert kinds == FIG2_STEPS, f"pipeline out of order: {kinds}"
    assert plan.concrete.stats()["compute"] == 38

    lines = ["Figure 2 pipeline trace (one event per numbered step):"]
    for event in planner.events:
        if event.kind in FIG2_STEPS:
            detail = ", ".join(f"{k}={v}" for k, v in event.detail.items())
            lines.append(f"  {event.kind:<28s} {detail}")
    record_table("fig2_planning_pipeline", "\n".join(lines))


def test_fig2_planning_throughput_561(benchmark):
    """Planning cost at the largest cluster's scale (562 jobs)."""
    rls, tc, workflow = build_grid(561)
    planner = PegasusPlanner(
        rls, tc, PlannerOptions(output_site="store", site_selection="round-robin")
    )
    plan = benchmark.pedantic(lambda: planner.plan(workflow), rounds=3, iterations=1)
    assert plan.concrete.stats()["compute"] == 562
