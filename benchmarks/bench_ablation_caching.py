"""Ablation (§4.3.1(3)): the service-side image cache.

"We decided to cache the galaxy image files in the web server and register
them in the RLS.  This allows the service to be used even when the image
services ... are down.  Additionally, the data is then available via
GridFTP."  First vs second analysis of the same cluster under a *different*
output name (so the short circuit doesn't trigger and the image cache is
isolated): the second run downloads nothing over SIA.
"""

from __future__ import annotations

from repro.portal.demo import build_demo_environment
from repro.sky.registry_data import demonstration_cluster


def test_image_cache_avoids_sia(benchmark, record_table):
    cluster = demonstration_cluster("MS0451")  # 52 galaxies
    env = build_demo_environment(clusters=[cluster], seed_virtual_data_reuse=False)
    session = env.portal.select_cluster("MS0451")
    env.portal.build_catalog(session)
    vot = env.portal.resolve_cutouts(session)
    service = env.compute_service

    url = service.gal_morph_compute(vot, "run1.vot", "MS0451")
    assert service.poll(url).state == "completed"
    first = list(service.requests.values())[-1]
    first_sia_seconds = env.meter.total("sia-download")

    def second_run():
        return service.gal_morph_compute(vot, "run2.vot", "MS0451")

    url2 = benchmark.pedantic(second_run, rounds=1, iterations=1)
    assert service.poll(url2).state == "completed"
    second = list(service.requests.values())[-1]
    second_sia_seconds = env.meter.total("sia-download") - first_sia_seconds

    assert first.images_downloaded == 52 and first.images_cached == 0
    assert second.images_downloaded == 0 and second.images_cached == 52
    assert second_sia_seconds == 0.0

    lines = [
        "service-side image cache (52-galaxy cluster):",
        f"  run 1: {first.images_downloaded} SIA downloads, "
        f"{first_sia_seconds:.1f} virtual seconds of SIA transfer",
        f"  run 2: {second.images_downloaded} SIA downloads "
        f"({second.images_cached} cache hits), {second_sia_seconds:.1f} virtual seconds",
        "  the repeat analysis touches the archives zero times — it would",
        "  complete 'even when the image services like MAST and CADC are down'.",
    ]
    record_table("ablation_caching", "\n".join(lines))


def test_cache_survives_archive_outage(record_table, benchmark):
    """Hard version of the §4.3.1(3) claim: cut the archives, run again."""
    from repro.core.errors import ServiceError

    cluster = demonstration_cluster("A3526")
    env = build_demo_environment(clusters=[cluster], seed_virtual_data_reuse=False)
    session = env.portal.select_cluster("A3526")
    env.portal.build_catalog(session)
    vot = env.portal.resolve_cutouts(session)
    service = env.compute_service
    url = service.gal_morph_compute(vot, "pre-outage.vot", "A3526")
    assert service.poll(url).state == "completed"

    def outage(_url: str) -> bytes:
        raise ServiceError("archive down")

    service.fetch_url = outage  # MAST/CADC go dark

    def run_during_outage():
        return service.gal_morph_compute(vot, "during-outage.vot", "A3526")

    url2 = benchmark.pedantic(run_during_outage, rounds=1, iterations=1)
    message = service.poll(url2)
    assert message.state == "completed"
    record_table(
        "ablation_cache_outage",
        "with all image archives unreachable the cached images still served a\n"
        f"complete analysis: status={message.state}, result={message.result_url}",
    )
