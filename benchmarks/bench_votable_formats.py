"""Format efficiency: TABLEDATA vs BINARY VOTable vs FITS BINTABLE.

§3.1 anticipates "successors to these interfaces ... employ[ing] more
sophisticated techniques for accessing large amounts of data efficiently".
For the campaign's largest catalog (561 rows), compare the three
interchange encodings this repository implements on document size and
(de)serialisation cost — all three carry the same rows losslessly.
"""

from __future__ import annotations

import pytest

from repro.fits.bintable import BinTableHDU, bintable_to_votable, votable_to_bintable
from repro.votable.binary import parse_votable_binary, write_votable_binary
from repro.votable.model import Field, VOTable
from repro.votable.parser import parse_votable
from repro.votable.writer import write_votable


def campaign_catalog(n_rows: int = 561) -> VOTable:
    table = VOTable(
        [
            Field("id", "char"),
            Field("ra", "double"),
            Field("dec", "double"),
            Field("valid", "boolean"),
            Field("surface_brightness", "double"),
            Field("concentration", "double"),
            Field("asymmetry", "double"),
        ],
        name="A1656-morphology",
    )
    for i in range(n_rows):
        table.append(
            [f"A1656-{i:04d}", 194.9 + i * 1e-4, 27.9 - i * 1e-4, i % 50 != 0,
             21.0 + 0.001 * i, 2.5 + 0.002 * (i % 100), 0.001 * (i % 200)]
        )
    return table


def test_tabledata_roundtrip_cost(benchmark):
    table = campaign_catalog()
    text = write_votable(table)
    assert benchmark(lambda: parse_votable(write_votable(table))) == table
    assert len(text) > 0


def test_binary_roundtrip_cost(benchmark):
    table = campaign_catalog()
    assert benchmark(lambda: parse_votable_binary(write_votable_binary(table))) == table


def test_bintable_roundtrip_cost(benchmark):
    table = campaign_catalog()

    def roundtrip():
        payload = votable_to_bintable(table).to_bytes()
        hdu, _ = BinTableHDU.from_bytes(payload)
        return bintable_to_votable(hdu)

    back = benchmark(roundtrip)
    assert len(back) == len(table)


def test_format_size_comparison(benchmark, record_table):
    table = campaign_catalog()
    tabledata, binary, bintable = benchmark.pedantic(
        lambda: (
            len(write_votable(table).encode()),
            len(write_votable_binary(table).encode()),
            len(votable_to_bintable(table).to_bytes()),
        ),
        rounds=1,
        iterations=1,
    )

    assert binary < tabledata / 2  # base64 stream halves the XML bloat
    assert bintable < tabledata  # fixed-width packing beats per-cell XML

    lines = [
        "561-row morphology catalog, one payload three ways:",
        f"  VOTable TABLEDATA : {tabledata:>8d} bytes  (the paper's transport)",
        f"  VOTable BINARY    : {binary:>8d} bytes  ({tabledata / binary:.1f}x smaller)",
        f"  FITS BINTABLE     : {bintable:>8d} bytes  ({tabledata / bintable:.1f}x smaller)",
        "",
        "all three round-trip the rows losslessly (asserted by the format",
        "property tests); the efficient encodings are the 'successors to",
        "these interfaces' §3.1 anticipates.",
    ]
    record_table("votable_formats", "\n".join(lines))
