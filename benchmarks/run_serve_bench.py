"""Serving-tier SLO benchmark: open-loop load against the asyncio portal.

Boots a complete serving stack (synthetic job runner, so the numbers
measure connection handling + admission, not morphology numerics) and
drives the three canonical loadgen scenarios against it, appending one
entry per run to ``BENCH_serve.json`` at the repo root:

* **steady-poisson** — sustainable-rate mixed-tenant traffic: the
  throughput/latency baseline.  Gated (``--check``): zero failures,
  throughput >= floor, p99 <= ceiling.
* **thundering-herd** — everything at t=0: overload must be *shed*
  (429/503 + ``Retry-After``), never *failed*.  Gated: zero failures.
* **slow-clients** — trickling readers interleaved with normal traffic:
  the p99 of well-behaved requests must stay under the ceiling.  Gated:
  zero failures, well-behaved p99 <= ceiling.

Shed responses are intentionally not failures anywhere: accept-and-shed
is the designed overload behaviour, and the herd scenario exists to
confirm the server degrades by saying "try later", not by breaking.

Usage::

    PYTHONPATH=src python benchmarks/run_serve_bench.py --quick
    PYTHONPATH=src python benchmarks/run_serve_bench.py --check
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.harness import build_serving_stack  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    demo_cluster_targets,
    herd_scenario,
    run_scenario,
    slow_client_scenario,
    steady_scenario,
)

TRAJECTORY = REPO_ROOT / "BENCH_serve.json"

#: SLO gates for --check.  Generous for shared CI runners: local runs
#: measure steady p99 around 20 ms, so an order of magnitude of headroom
#: still catches event-loop blocking, admission livelock, or a serialiser
#: regression without flaking on a noisy machine.
P99_CEILING_MS = 750.0
THROUGHPUT_FLOOR_RPS = 40.0


def _scenarios(quick: bool):
    if quick:
        return [
            steady_scenario(requests=160, rate=120.0),
            herd_scenario(requests=120),
            slow_client_scenario(requests=90, rate=60.0),
        ]
    return [
        steady_scenario(requests=400, rate=150.0),
        herd_scenario(requests=200),
        slow_client_scenario(requests=150, rate=80.0),
    ]


async def run_benchmark(quick: bool) -> list[dict]:
    """Run all three scenarios back-to-back against one shared stack.

    The stack deliberately persists across scenarios: the herd lands on a
    warm server with a populated result cache, as it would in production.
    """
    stack = build_serving_stack(runner="synthetic", port=0)
    clusters = demo_cluster_targets()
    results = []
    async with stack:
        host, port = stack.server.host, stack.server.port
        for scenario in _scenarios(quick):
            report = await run_scenario(host, port, scenario, clusters)
            d = report.as_dict()
            print(report.summary())
            results.append(d)
    return results


def check_gates(results: list[dict]) -> list[str]:
    """Return a list of gate-violation messages (empty = all green)."""
    problems: list[str] = []
    by_name = {r["scenario"]: r for r in results}

    for name, r in by_name.items():
        if r["failures"]:
            problems.append(
                f"{name}: {r['failures']} failure(s) (5xx or transport), expected 0"
            )

    steady = by_name.get("steady-poisson")
    if steady is not None:
        if steady["throughput_rps"] < THROUGHPUT_FLOOR_RPS:
            problems.append(
                f"steady-poisson: throughput {steady['throughput_rps']:.1f} rps "
                f"below floor {THROUGHPUT_FLOOR_RPS:.0f} rps"
            )
        if steady["p99_ms"] > P99_CEILING_MS:
            problems.append(
                f"steady-poisson: p99 {steady['p99_ms']:.1f} ms exceeds "
                f"ceiling {P99_CEILING_MS:.0f} ms"
            )
        if steady["shed"]:
            problems.append(
                f"steady-poisson: {steady['shed']} request(s) shed at a "
                "rate the tier is sized to absorb"
            )

    slow = by_name.get("slow-clients")
    if slow is not None and slow["p99_ms"] > P99_CEILING_MS:
        problems.append(
            f"slow-clients: well-behaved p99 {slow['p99_ms']:.1f} ms exceeds "
            f"ceiling {P99_CEILING_MS:.0f} ms — slow readers are degrading "
            "other tenants"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller scenarios for CI")
    parser.add_argument(
        "--check", action="store_true",
        help="fail unless every scenario meets its SLO gate",
    )
    args = parser.parse_args(argv)

    results = asyncio.run(run_benchmark(quick=args.quick))

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "mode": "quick" if args.quick else "full",
        "gates": {
            "p99_ceiling_ms": P99_CEILING_MS,
            "throughput_floor_rps": THROUGHPUT_FLOOR_RPS,
        },
        "scenarios": results,
    }
    history = {"history": []}
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history["history"].append(entry)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")
    print(f"trajectory -> {TRAJECTORY}")

    if args.check:
        problems = check_gates(results)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        print("checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
