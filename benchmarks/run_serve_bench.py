"""Serving-tier SLO benchmark: open-loop load against the asyncio portal.

Boots a complete serving stack (synthetic job runner, so the numbers
measure connection handling + admission, not morphology numerics) and
drives the three canonical loadgen scenarios against it, appending one
entry per run to ``BENCH_serve.json`` at the repo root:

* **steady-poisson** — sustainable-rate mixed-tenant traffic: the
  throughput/latency baseline.  Gated (``--check``): zero failures,
  throughput >= floor, p99 <= ceiling.
* **thundering-herd** — everything at t=0: overload must be *shed*
  (429/503 + ``Retry-After``), never *failed*.  Gated: zero failures.
* **slow-clients** — trickling readers interleaved with normal traffic:
  the p99 of well-behaved requests must stay under the ceiling.  Gated:
  zero failures, well-behaved p99 <= ceiling.

Shed responses are intentionally not failures anywhere: accept-and-shed
is the designed overload behaviour, and the herd scenario exists to
confirm the server degrades by saying "try later", not by breaking.

Usage::

    PYTHONPATH=src python benchmarks/run_serve_bench.py --quick
    PYTHONPATH=src python benchmarks/run_serve_bench.py --check
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.harness import build_serving_stack  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    demo_cluster_targets,
    herd_scenario,
    http_request,
    run_scenario,
    slow_client_scenario,
    steady_scenario,
)

TRAJECTORY = REPO_ROOT / "BENCH_serve.json"

#: SLO gates for --check.  Generous for shared CI runners: local runs
#: measure steady p99 around 20 ms, so an order of magnitude of headroom
#: still catches event-loop blocking, admission livelock, or a serialiser
#: regression without flaking on a noisy machine.
P99_CEILING_MS = 750.0
THROUGHPUT_FLOOR_RPS = 40.0

#: Observability-plane cost ceilings, as a fraction of no-plane throughput.
#: The *disabled* plane is one ``is not None and .enabled`` test per
#: request and must be effectively free; the enabled plane (tracing,
#: windowed counters, flight recorder, access log) buys its keep under 5%.
DISABLED_OVERHEAD_CEILING = 0.02
ENABLED_OVERHEAD_CEILING = 0.05


def _scenarios(quick: bool):
    if quick:
        return [
            steady_scenario(requests=160, rate=120.0),
            herd_scenario(requests=120),
            slow_client_scenario(requests=90, rate=60.0),
        ]
    return [
        steady_scenario(requests=400, rate=150.0),
        herd_scenario(requests=200),
        slow_client_scenario(requests=150, rate=80.0),
    ]


async def run_benchmark(quick: bool) -> list[dict]:
    """Run all three scenarios back-to-back against one shared stack.

    The stack deliberately persists across scenarios: the herd lands on a
    warm server with a populated result cache, as it would in production.
    """
    stack = build_serving_stack(runner="synthetic", port=0)
    clusters = demo_cluster_targets()
    results = []
    async with stack:
        host, port = stack.server.host, stack.server.port
        for scenario in _scenarios(quick):
            report = await run_scenario(host, port, scenario, clusters)
            d = report.as_dict()
            print(report.summary())
            results.append(d)
    return results


async def _burst(host: str, port: int, requests: int, concurrency: int = 8) -> float:
    """Drive ``requests`` GET /jobs at bounded concurrency; returns rps.

    /jobs (the empty job listing) is deliberately the target: its handler
    does identical work whether or not the plane exists, so the rps delta
    isolates the per-request plane cost.  (/health and /metrics would not
    do: their *payloads* grow when the plane is enabled.)
    """
    semaphore = asyncio.Semaphore(concurrency)

    async def one(i: int) -> None:
        async with semaphore:
            status, _, _ = await http_request(
                host,
                port,
                "GET",
                "/jobs",
                headers=[("X-Request-Id", f"bench-{i:06d}")],
            )
            assert status == 200, f"bench request got {status}"

    started = time.monotonic()
    await asyncio.gather(*(one(i) for i in range(requests)))
    return requests / (time.monotonic() - started)


async def measure_observability_overhead(quick: bool) -> dict:
    """Steady-scenario cost of the plane, against a no-plane baseline.

    Three stack configurations — no plane at all, plane wired but
    disabled (the production-default shape), plane enabled — each serve
    an identical steady open-loop scenario.  The gate is on delivered
    throughput (can the tier still absorb its steady rate?); the per
    configuration p50 is recorded alongside as the more sensitive
    per-request-cost signal.  A saturated /jobs burst is also recorded,
    informationally: at saturation, run-to-run scheduling noise on shared
    runners exceeds the gate thresholds, so it is not gated.
    """
    scenario = (
        steady_scenario(requests=160, rate=120.0)
        if quick
        else steady_scenario(requests=400, rate=150.0)
    )
    burst_requests = 200 if quick else 600
    configs = {"none": False, "disabled": None, "enabled": True}
    clusters = demo_cluster_targets()
    steady: dict[str, dict] = {}
    burst: dict[str, float] = {}
    for name, flag in configs.items():
        stack = build_serving_stack(runner="synthetic", port=0, observability=flag)
        async with stack:
            host, port = stack.server.host, stack.server.port
            report = await run_scenario(host, port, scenario, clusters)
            steady[name] = report.as_dict()
            burst[name] = await _burst(host, port, burst_requests)
    baseline = steady["none"]["throughput_rps"]
    entry = {
        "scenario": scenario.name,
        "steady_rps": {
            name: round(d["throughput_rps"], 1) for name, d in steady.items()
        },
        "steady_p50_ms": {
            name: round(d["p50_ms"], 2) for name, d in steady.items()
        },
        "burst_rps": {name: round(rate, 1) for name, rate in burst.items()},
        "disabled_overhead": round(
            1.0 - steady["disabled"]["throughput_rps"] / baseline, 4
        ),
        "enabled_overhead": round(
            1.0 - steady["enabled"]["throughput_rps"] / baseline, 4
        ),
        "gates": {
            "disabled_ceiling": DISABLED_OVERHEAD_CEILING,
            "enabled_ceiling": ENABLED_OVERHEAD_CEILING,
        },
    }
    print(
        f"observability-overhead: steady rps none "
        f"{entry['steady_rps']['none']:.1f}, disabled "
        f"{entry['steady_rps']['disabled']:.1f} "
        f"({entry['disabled_overhead']:+.1%}), enabled "
        f"{entry['steady_rps']['enabled']:.1f} "
        f"({entry['enabled_overhead']:+.1%}); p50 ms "
        f"{entry['steady_p50_ms']}"
    )
    return entry


def check_overhead_gates(overhead: dict) -> list[str]:
    problems = []
    if overhead["disabled_overhead"] > DISABLED_OVERHEAD_CEILING:
        problems.append(
            f"observability-overhead: disabled plane costs "
            f"{overhead['disabled_overhead']:.1%} of steady rps, ceiling "
            f"{DISABLED_OVERHEAD_CEILING:.0%} — the no-op guard is not free"
        )
    if overhead["enabled_overhead"] > ENABLED_OVERHEAD_CEILING:
        problems.append(
            f"observability-overhead: enabled plane costs "
            f"{overhead['enabled_overhead']:.1%} of steady rps, ceiling "
            f"{ENABLED_OVERHEAD_CEILING:.0%}"
        )
    return problems


def check_gates(results: list[dict]) -> list[str]:
    """Return a list of gate-violation messages (empty = all green)."""
    problems: list[str] = []
    by_name = {r["scenario"]: r for r in results}

    for name, r in by_name.items():
        if r["failures"]:
            problems.append(
                f"{name}: {r['failures']} failure(s) "
                "(5xx, transport, or id echo), expected 0"
            )

    steady = by_name.get("steady-poisson")
    if steady is not None:
        if steady["throughput_rps"] < THROUGHPUT_FLOOR_RPS:
            problems.append(
                f"steady-poisson: throughput {steady['throughput_rps']:.1f} rps "
                f"below floor {THROUGHPUT_FLOOR_RPS:.0f} rps"
            )
        if steady["p99_ms"] > P99_CEILING_MS:
            problems.append(
                f"steady-poisson: p99 {steady['p99_ms']:.1f} ms exceeds "
                f"ceiling {P99_CEILING_MS:.0f} ms"
            )
        if steady["shed"]:
            problems.append(
                f"steady-poisson: {steady['shed']} request(s) shed at a "
                "rate the tier is sized to absorb"
            )

    slow = by_name.get("slow-clients")
    if slow is not None and slow["p99_ms"] > P99_CEILING_MS:
        problems.append(
            f"slow-clients: well-behaved p99 {slow['p99_ms']:.1f} ms exceeds "
            f"ceiling {P99_CEILING_MS:.0f} ms — slow readers are degrading "
            "other tenants"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller scenarios for CI")
    parser.add_argument(
        "--check", action="store_true",
        help="fail unless every scenario meets its SLO gate",
    )
    args = parser.parse_args(argv)

    results = asyncio.run(run_benchmark(quick=args.quick))
    overhead = asyncio.run(measure_observability_overhead(quick=args.quick))

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "mode": "quick" if args.quick else "full",
        "gates": {
            "p99_ceiling_ms": P99_CEILING_MS,
            "throughput_floor_rps": THROUGHPUT_FLOOR_RPS,
        },
        "scenarios": results,
        "observability_overhead": overhead,
    }
    history = {"history": []}
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history["history"].append(entry)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")
    print(f"trajectory -> {TRAJECTORY}")

    if args.check:
        problems = check_gates(results) + check_overhead_gates(overhead)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        print("checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
