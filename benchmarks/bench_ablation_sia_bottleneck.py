"""Ablation (§4.2): the SIA per-image bottleneck vs batching vs GridFTP.

"The major bottleneck in the application's operation is the querying of
image servers ... an image query and download for each galaxy must be done
separately.  This could be sped up tremendously if one could query for all
images at once."  §4.3.1(3): the cache "is then available via GridFTP,
which provides much better performance than the SIA."

Sweeps galaxies-per-cluster and compares virtual transport seconds for:
per-image SIA (the paper's reality), a hypothetical batched SIA, and
GridFTP from the service cache.
"""

from __future__ import annotations

import pytest

from repro.services.transport import TransportModel

CUTOUT_BYTES = 20160
SWEEP = [37, 52, 68, 84, 97, 110, 135, 561]


def sia_per_image_seconds(model: TransportModel, n: int) -> float:
    # one metadata query + one download per galaxy
    return n * (model.sia_query.time(256) + model.sia_download.time(CUTOUT_BYTES))


def sia_batched_seconds(model: TransportModel, n: int) -> float:
    # one query for all images at once, one bulk download
    return model.batched_query_time(n, 256 * n) + model.sia_download.time(n * CUTOUT_BYTES)


def gridftp_seconds(model: TransportModel, n: int) -> float:
    return n * model.gridftp.time(CUTOUT_BYTES)


def test_sia_bottleneck_sweep(benchmark, record_table):
    model = TransportModel()

    rows = benchmark(
        lambda: [
            (n, sia_per_image_seconds(model, n), sia_batched_seconds(model, n), gridftp_seconds(model, n))
            for n in SWEEP
        ]
    )

    lines = [
        f"{'galaxies':>8s} {'per-image SIA':>14s} {'batched SIA':>12s} {'GridFTP':>9s} "
        f"{'batch speedup':>14s} {'gridftp speedup':>16s}"
    ]
    for n, per_image, batched, gridftp in rows:
        lines.append(
            f"{n:>8d} {per_image:>13.1f}s {batched:>11.1f}s {gridftp:>8.1f}s "
            f"{per_image / batched:>13.1f}x {per_image / gridftp:>15.1f}x"
        )
        # the paper's claims, as shape assertions:
        assert batched < per_image / 5  # "sped up tremendously"
        assert gridftp < per_image / 5  # "much better performance than the SIA"
    # per-image cost is linear with a large constant: doubling n ~ doubles time
    t37 = rows[0][1]
    t561 = rows[-1][1]
    assert t561 / t37 == pytest.approx(561 / 37, rel=1e-9)
    lines.append("")
    lines.append(
        "shape: per-image SIA is overhead-dominated and linear in galaxy count; "
        "batching amortises the query latency; GridFTP amortises per-request cost."
    )
    record_table("ablation_sia_bottleneck", "\n".join(lines))


def test_sia_real_download_wall_time(benchmark):
    """Real (not modelled) per-image fetch cost through the cutout service."""
    from repro.portal.demo import build_demo_environment
    from repro.sky.registry_data import demonstration_cluster

    env = build_demo_environment(clusters=[demonstration_cluster("A3526")])
    service = env.cutout_service
    urls = [service.url_for("A3526", f"A3526-{i:04d}") for i in range(10)]

    def fetch_all():
        return [service.fetch(url) for url in urls]

    payloads = benchmark(fetch_all)
    assert all(len(p) == 20160 for p in payloads)


def test_batched_portal_path_real(benchmark, record_table):
    """The batch interface, measured end-to-end through the portal (not
    just the cost model): identical catalog, ~n x fewer metered queries."""
    from repro.portal.demo import build_demo_environment
    from repro.sky.registry_data import demonstration_cluster

    cluster = demonstration_cluster("A0119")  # 84 galaxies

    def run(batched: bool):
        env = build_demo_environment(clusters=[cluster], seed_virtual_data_reuse=False)
        session = env.portal.select_cluster("A0119")
        env.portal.build_catalog(session)
        vot = env.portal.resolve_cutouts(session, batched=batched)
        key = "sia-batch-query" if batched else "sia-query"
        return vot, env.meter.count(key), env.meter.total(key)

    vot_batched, n_batched, t_batched = benchmark.pedantic(
        lambda: run(True), rounds=1, iterations=1
    )
    vot_single, n_single, t_single = run(False)

    assert vot_batched == vot_single  # identical science inputs
    assert n_batched == 1
    assert n_single >= 84
    assert t_batched < t_single / 5

    record_table(
        "ablation_sia_batched_real",
        "portal cutout resolution for 84 galaxies, measured through the real services:\n"
        f"  per-galaxy SIA: {n_single} queries, {t_single:.1f} virtual seconds\n"
        f"  batched SIA:    {n_batched} query,  {t_batched:.1f} virtual seconds "
        f"({t_single / t_batched:.0f}x less query time)\n"
        "  the returned VOTables are identical.",
    )
