"""Ablation (§4.3.1(4)): fault tolerance via validity flags + DAGMan retries.

"Often, the computation for calculating parameters of individual galaxies
would fail because of the bad quality of galaxy images ... we added a
validity flag to the set of returned values ... this prevented a few
failures from taking down the entire experiment."

Two layers are exercised: (a) data-quality failures become invalid rows in
a run that still completes; (b) injected *job-level* failures are absorbed
by DAGMan retries, and when retries are exhausted a rescue DAG resumes the
remainder.
"""

from __future__ import annotations

from repro.condor.pool import GridTopology
from repro.condor.rescue import completed_nodes, rescue_dag_text
from repro.condor.simulator import GridSimulator, SimulationOptions
from repro.portal.demo import build_demo_environment
from repro.sky.registry_data import demonstration_cluster


def test_validity_flags_keep_run_alive(benchmark, record_table):
    cluster = demonstration_cluster("A1656")  # 561 galaxies, some too faint
    env = build_demo_environment(clusters=[cluster], seed_virtual_data_reuse=False)

    session = benchmark.pedantic(
        lambda: env.portal.run_analysis("A1656"), rounds=1, iterations=1
    )
    rows = list(session.merged)
    invalid = [r for r in rows if not r["valid"]]
    assert len(rows) == 561
    assert 0 < len(invalid) < 60  # a few failures, not a collapse
    assert all(r["error"] for r in invalid)
    request = list(env.compute_service.requests.values())[-1]
    assert request.report.succeeded  # the workflow never failed

    lines = [
        f"validity-flag fault tolerance (561-galaxy cluster):",
        f"  rows returned: {len(rows)}; flagged invalid: {len(invalid)}",
        f"  sample failure reasons: "
        + "; ".join(sorted({r['error'] for r in invalid})[:3]),
        "  the workflow itself completed — failures surface as flags, not crashes.",
    ]
    record_table("ablation_fault_tolerance_flags", "\n".join(lines))


def test_injected_failures_sweep(benchmark, record_table):
    """Job failure rates 0-30%: retries absorb them; totals stay complete."""
    cluster = demonstration_cluster("MS0451")

    def run_at(rate: float):
        env = build_demo_environment(
            clusters=[cluster],
            execution_mode="simulate",
            failure_rate=rate,
            max_retries=6,
            seed_virtual_data_reuse=False,
        )
        session = env.portal.select_cluster("MS0451")
        env.portal.build_catalog(session)
        vot = env.portal.resolve_cutouts(session)
        url = env.compute_service.gal_morph_compute(vot, "ft.vot", "MS0451")
        state = env.compute_service.poll(url).state
        request = list(env.compute_service.requests.values())[-1]
        return state, request.report.retries, request.report.makespan

    rows = benchmark.pedantic(
        lambda: [(rate, *run_at(rate)) for rate in (0.0, 0.1, 0.2, 0.3)],
        rounds=1,
        iterations=1,
    )
    lines = [f"{'fail rate':>9s} {'outcome':>10s} {'retries':>8s} {'makespan':>9s}"]
    makespans = []
    for rate, state, retries, makespan in rows:
        assert state == "completed"
        lines.append(f"{rate:>8.0%} {state:>10s} {retries:>8d} {makespan:>8.1f}s")
        makespans.append(makespan)
        if rate == 0.0:
            assert retries == 0
        else:
            assert retries > 0
    assert makespans[-1] > makespans[0]  # retries cost time, not correctness
    lines.append("")
    lines.append("shape: failures raise retries and makespan; completion is unaffected.")
    record_table("ablation_fault_tolerance_injection", "\n".join(lines))


def test_rescue_dag_resumes(record_table, benchmark):
    """When retries are exhausted DAGMan emits a rescue DAG; resubmission
    runs only the remainder."""
    from repro.pegasus.options import PlannerOptions
    from repro.pegasus.planner import PegasusPlanner
    from repro.rls.rls import ReplicaLocationService
    from repro.tc.catalog import TransformationCatalog
    from repro.workflow.abstract import AbstractJob, AbstractWorkflow

    rls = ReplicaLocationService()
    for site in ("isi", "store"):
        rls.add_site(site)
    tc = TransformationCatalog()
    tc.install("t", "isi", "/bin/t")
    jobs = []
    for i in range(10):
        rls.register(f"in{i}", f"gsiftp://store.grid/data/in{i}", "store")
        jobs.append(AbstractJob(f"d{i}", "t", (f"in{i}",), (f"o{i}",)))
    plan = PegasusPlanner(
        rls, tc, PlannerOptions(output_site="store", site_selection="round-robin")
    ).plan(AbstractWorkflow(jobs))

    # doom one compute node past its retries
    sim = GridSimulator(
        GridTopology.default_demo(),
        SimulationOptions(runtime_jitter=0.0, forced_failures={"job-d3": 99}, max_retries=2),
    )
    report = benchmark.pedantic(lambda: sim.execute(plan.concrete), rounds=1, iterations=1)
    assert not report.succeeded
    assert "job-d3" in report.failed_nodes

    rescue = rescue_dag_text(plan.concrete, report, dag_name="ft-demo")
    done = completed_nodes(report)
    assert len(done) > 0
    # every successful node is marked DONE; the failed one is not
    assert f"JOB job-d3 job-d3.sub DONE" not in rescue
    n_done_lines = rescue.count(" DONE")
    assert n_done_lines == len(done)

    record_table(
        "ablation_rescue_dag",
        f"forced permanent failure of job-d3: {len(report.failed_nodes)} failed, "
        f"{len(report.unrunnable_nodes)} unrunnable, {len(done)} completed.\n"
        f"rescue DAG marks {n_done_lines} nodes DONE; resubmission re-runs only the rest.\n\n"
        + "\n".join(rescue.splitlines()[:12]) + "\n  ...",
    )
