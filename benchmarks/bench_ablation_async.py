"""Ablation (§4.3.1(2)): asynchronous vs synchronous service interface.

"We decided to use an asynchronous interface because the computations can
take a long time to get executed for bigger clusters."  The portal's
*blocking* exposure differs: synchronous blocks for the full computation;
asynchronous blocks only for cheap status polls.  Modelled in virtual
transport seconds over the cluster-size sweep, using simulated makespans.
"""

from __future__ import annotations

from repro.portal.demo import build_demo_environment
from repro.sky.registry_data import DEMONSTRATION_CLUSTERS

POLL_COST_S = 0.1
POLL_INTERVAL_S = 30.0


def simulate_makespans(names):
    out = {}
    env = build_demo_environment(execution_mode="simulate", seed_virtual_data_reuse=False)
    for name in names:
        session = env.portal.select_cluster(name)
        env.portal.build_catalog(session)
        vot = env.portal.resolve_cutouts(session)
        url = env.compute_service.gal_morph_compute(vot, f"{name}-async.vot", name)
        assert env.compute_service.poll(url).state == "completed"
        request = list(env.compute_service.requests.values())[-1]
        out[name] = (len(session.catalog), request.report.makespan)
    return out


def test_async_vs_sync_blocking(benchmark, record_table):
    names = [c.name for c in DEMONSTRATION_CLUSTERS]
    makespans = benchmark.pedantic(lambda: simulate_makespans(names), rounds=1, iterations=1)

    lines = [
        f"{'cluster':<8s} {'galaxies':>8s} {'makespan':>9s} {'sync blocks':>12s} "
        f"{'async blocks':>13s} {'ratio':>7s}"
    ]
    for name in names:
        n, makespan = makespans[name]
        sync_block = makespan  # the portal thread waits the whole time
        n_polls = max(int(makespan / POLL_INTERVAL_S), 1) + 1
        async_block = n_polls * POLL_COST_S
        lines.append(
            f"{name:<8s} {n:>8d} {makespan:>8.0f}s {sync_block:>11.0f}s "
            f"{async_block:>12.1f}s {sync_block / async_block:>6.0f}x"
        )
        assert async_block < sync_block / 10
    lines.append("")
    lines.append(
        "shape: synchronous blocking grows with cluster size (the paper saw runs "
        "'up to a few hours'); asynchronous polling stays near-constant."
    )
    record_table("ablation_async", "\n".join(lines))
