"""Figure 6: the web service design, including the RLS short circuit.

Two identical requests: the first walks all seven steps (download, cache,
VDL, plan, execute, register); the second is answered from the RLS in step
2 — the timing ratio is the virtual-data payoff.
"""

from __future__ import annotations

import time

from repro.portal.demo import build_demo_environment
from repro.sky.registry_data import demonstration_cluster


def prepared_env():
    cluster = demonstration_cluster("A3526")
    env = build_demo_environment(clusters=[cluster], seed_virtual_data_reuse=False)
    session = env.portal.select_cluster("A3526")
    env.portal.build_catalog(session)
    vot = env.portal.resolve_cutouts(session)
    return env, vot


def test_fig6_first_vs_cached_request(benchmark, record_table):
    env, vot = prepared_env()
    service = env.compute_service

    t0 = time.perf_counter()
    url1 = service.gal_morph_compute(vot, "A3526-morph.vot", "A3526")
    first_s = time.perf_counter() - t0
    assert service.poll(url1).state == "completed"
    req1 = list(service.requests.values())[-1]
    assert not req1.short_circuited
    assert req1.images_downloaded == 37

    # the benchmark times the *cached* path (step 2 short circuit)
    url2 = benchmark(lambda: service.gal_morph_compute(vot, "A3526-morph.vot", "A3526"))
    message = service.poll(url2)
    assert message.state == "completed"
    req2 = list(service.requests.values())[-1]
    assert req2.short_circuited
    assert req2.images_downloaded == 0

    t0 = time.perf_counter()
    service.gal_morph_compute(vot, "A3526-morph.vot", "A3526")
    cached_s = time.perf_counter() - t0

    lines = [
        "Figure 6 service behaviour (37-galaxy cluster, real execution):",
        f"  first request:  computed; {req1.images_downloaded} images downloaded, "
        f"{len(req1.report.compute_runs)} jobs, wall {first_s:.2f}s",
        f"  repeat request: RLS short-circuit, 0 downloads, 0 jobs, wall {cached_s * 1000:.2f}ms",
        f"  speedup: {first_s / max(cached_s, 1e-9):.0f}x",
    ]
    assert first_s / max(cached_s, 1e-9) > 10
    record_table("fig6_web_service", "\n".join(lines))


def test_fig6_status_protocol(record_table, benchmark):
    """The asynchronous polling protocol: accepted -> running -> completed."""
    env, vot = prepared_env()
    url = env.compute_service.gal_morph_compute(vot, "status.vot", "A3526")
    page = env.compute_service.status.page(url.rsplit("/", 1)[-1])
    states = [m.state for m in page.messages]
    assert states[0] == "accepted"
    assert states[-1] == "completed"
    assert "running" in states
    assert page.latest.result_url is not None

    payload = benchmark(lambda: env.compute_service.fetch_result(page.latest.result_url))
    assert payload.startswith(b"<?xml")
    record_table(
        "fig6_status_protocol",
        "status page transitions: " + " -> ".join(states)
        + f"\nresult URL: {page.latest.result_url} ({len(payload)} bytes)",
    )
