"""Table 1: data centers, collections, and the interfaces each implements.

Regenerates the paper's Table 1 from the registry and *verifies* each row by
actually exercising the declared interface against the synthetic back-end.
"""

from __future__ import annotations

from repro.portal.demo import build_demo_environment
from repro.services.protocol import ConeSearchRequest, SIARequest
from repro.sky.registry_data import DEMONSTRATION_CLUSTERS

PAPER_TABLE1 = [
    ("Chandra X-ray Center", "Chandra Data Archive", "SIA"),
    ("NASA High-Energy Astrophysical Science Archive (HEASARC)", "ROSAT X-ray data", "SIA"),
    ("NASA Infrared Processing and Analysis Center (IPAC)", "NASA Extragalactic Database (NED)", "Cone Search"),
    ("Canadian Astrophysical Data Center (CADC)", "Canadian Network for Cosmology (CNOC) Survey", "SIA, Cone Search"),
    ("Multimission Archive at Space Telescope (MAST)", "Digitized Sky Survey (DSS)", "SIA, Cone Search"),
]


def _exercise_registry(env):
    """Query every registered collection through its declared interface(s)."""
    cluster = DEMONSTRATION_CLUSTERS[0]
    sia_req = SIARequest(cluster.center.ra, cluster.center.dec, 2.2 * cluster.tidal_radius_deg)
    cone_req = ConeSearchRequest(cluster.center.ra, cluster.center.dec, cluster.tidal_radius_deg)
    services = {
        "chandra": (env.chandra_archive, None),
        "rosat": (env.rosat_archive, None),
        "ned": (None, env.photometry_service),
        "cnoc": (env.cutout_service, env.redshift_service),
        "dss": (env.optical_archive, env.photometry_service),
    }
    verified = []
    for center in env.registry.all():
        sia_service, cone_service = services[center.service_key]
        checks = []
        if "SIA" in center.interfaces:
            assert sia_service is not None
            checks.append(("SIA", len(sia_service.query(sia_req)) > 0))
        if "Cone Search" in center.interfaces:
            assert cone_service is not None
            checks.append(("Cone Search", len(cone_service.search(cone_req)) > 0))
        verified.append((center.center, center.collection, checks))
    return verified


def test_table1_interfaces(benchmark, record_table):
    env = build_demo_environment()
    verified = benchmark.pedantic(_exercise_registry, args=(env,), rounds=1, iterations=1)

    rows = env.registry.table_rows()
    assert rows == PAPER_TABLE1  # the registry IS Table 1

    lines = [f"{'Data Center':<58s} {'Collection':<46s} {'Interfaces (verified live)'}"]
    for (center, collection, checks), _ in zip(verified, rows):
        assert all(ok for _, ok in checks), f"{collection}: interface check failed"
        ifaces = ", ".join(f"{name} [OK]" for name, ok in checks)
        lines.append(f"{center:<58s} {collection:<46s} {ifaces}")
    record_table("table1_interfaces", "\n".join(lines))
