"""Figure 7: the Aladin overlay and the rediscovered Dressler relation.

"Blue dots represent the most asymmetric galaxies (i.e. spiral galaxies)
and are scattered throughout the image, while orange are the most
symmetric, indicative of elliptical galaxies, are concentrated more toward
the center."  We reproduce the statistic (asymmetry rising with radius,
early types central) and the overlay itself in ASCII.
"""

from __future__ import annotations

import numpy as np

from repro.portal.analysis import analyze_morphology_catalog
from repro.portal.demo import build_demo_environment
from repro.portal.visualize import ascii_overlay, ascii_scatter
from repro.sky.registry_data import demonstration_cluster


def test_fig7_dressler_relation(benchmark, record_table):
    cluster = demonstration_cluster("A2029")  # 135 galaxies: solid statistics
    env = build_demo_environment(clusters=[cluster], seed_virtual_data_reuse=False)
    session = env.portal.run_analysis("A2029")

    analysis = benchmark(lambda: analyze_morphology_catalog(session.merged, cluster))

    # the paper's claim, quantified:
    assert analysis.rediscovered
    assert analysis.asymmetry_radius_spearman > 0  # spirals scattered outward
    assert analysis.concentration_radius_spearman < 0  # ellipticals central
    assert analysis.radial.early_fraction[0] > analysis.radial.early_fraction[-1] + 0.2

    lines = [analysis.summary(), ""]
    lines.append("radial bins (quantile): mean asymmetry / early-type fraction")
    for center, a, f, n in zip(
        analysis.radial.bin_centers,
        analysis.radial.mean_asymmetry,
        analysis.radial.early_fraction,
        analysis.radial.counts,
    ):
        lines.append(f"  r~{center:.3f} deg  A={a:.3f}  f_early={f:.2f}  (n={n})")
    lines.append("")
    lines.append(ascii_overlay(session.merged, cluster))
    record_table("fig7_dressler", "\n".join(lines))


def test_fig7_mirage_scatter(record_table, benchmark):
    """The Mirage scatter plot the authors used: asymmetry vs radius."""
    cluster = demonstration_cluster("A0085")
    env = build_demo_environment(clusters=[cluster], seed_virtual_data_reuse=False)
    session = env.portal.run_analysis("A0085")
    rows = [r for r in session.merged if r["valid"]]
    from repro.catalog.crossmatch import radial_separation_deg

    radius = radial_separation_deg(
        cluster.center.ra, cluster.center.dec,
        np.array([r["ra"] for r in rows]), np.array([r["dec"] for r in rows]),
    )
    asym = np.array([r["asymmetry"] for r in rows])
    text = benchmark(lambda: ascii_scatter(radius, asym, xlabel="radius [deg]", ylabel="asymmetry"))
    record_table("fig7_mirage_scatter", text)
