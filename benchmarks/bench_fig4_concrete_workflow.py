"""Figure 4: the concrete, executable workflow.

"Move b from A to B -> Execute d2 at B -> Move c from B to U -> Register c
in the RLS" — assert the node sequence verbatim and execute it both for
real and in the simulator.
"""

from __future__ import annotations

from repro.condor.local import ExecutableRegistry, LocalExecutor
from repro.condor.pool import CondorPool, GridTopology
from repro.condor.simulator import GridSimulator, SimulationOptions
from repro.pegasus.options import PlannerOptions
from repro.pegasus.planner import PegasusPlanner
from repro.rls.rls import ReplicaLocationService
from repro.rls.site import StorageSite
from repro.workflow.abstract import AbstractJob, AbstractWorkflow
from repro.tc.catalog import TransformationCatalog
from repro.workflow.concrete import ComputeNode, RegistrationNode, TransferNode
from repro.workflow.viz import render_ascii


def plan_fig4():
    rls = ReplicaLocationService()
    for site in ("A", "B", "U"):
        rls.add_site(site)
    rls.register("a", "gsiftp://A.grid/data/a", "A")
    rls.register("b", "gsiftp://A.grid/data/b", "A")
    tc = TransformationCatalog()
    tc.install("t1", "B", "/bin/t1")
    tc.install("t2", "B", "/bin/t2")
    workflow = AbstractWorkflow(
        [
            AbstractJob("d1", "t1", inputs=("a",), outputs=("b",)),
            AbstractJob("d2", "t2", inputs=("b",), outputs=("c",)),
        ]
    )
    planner = PegasusPlanner(
        rls, tc, PlannerOptions(output_site="U", site_selection="round-robin", replica_selection="first")
    )
    return planner, workflow, rls


def test_fig4_concretization(benchmark, record_table):
    planner, workflow, _ = plan_fig4()
    plan = benchmark(lambda: planner.plan(workflow))
    cw = plan.concrete

    order = cw.dag.topological_order()
    sequence = []
    for node_id in order:
        payload = cw.dag.payload(node_id)
        if isinstance(payload, TransferNode):
            sequence.append(f"Move {payload.lfn} from {payload.source_site} to {payload.dest_site}")
        elif isinstance(payload, ComputeNode):
            sequence.append(f"Execute {payload.job.job_id} at {payload.site}")
        elif isinstance(payload, RegistrationNode):
            sequence.append(f"Register {payload.lfn} in the RLS")
    assert sequence == [
        "Move b from A to B",
        "Execute d2 at B",
        "Move c from B to U",
        "Register c in the RLS",
    ]
    record_table(
        "fig4_concrete_workflow",
        "paper Fig 4 node sequence, measured:\n  " + "\n  ".join(sequence)
        + "\n\n" + render_ascii(cw.dag),
    )


def test_fig4_executes_for_real(benchmark):
    planner, workflow, rls = plan_fig4()
    plan = planner.plan(workflow)
    sites = {name: StorageSite(name) for name in ("A", "B", "U")}
    sites["A"].put(sites["A"].pfn_for("b"), b"intermediate")
    registry = ExecutableRegistry()
    registry.register("t2", lambda job, inputs: {job.outputs[0]: b"final:" + inputs["b"]})

    def run():
        executor = LocalExecutor(dict(sites), registry, rls)
        return executor.execute(plan.concrete)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.succeeded
    assert sites["U"].get(sites["U"].pfn_for("c")) == b"final:intermediate"


def test_fig4_simulated_timing(benchmark):
    planner, workflow, _ = plan_fig4()
    plan = planner.plan(workflow)
    topology = GridTopology()
    topology.add_pool(CondorPool("B", slots=2))
    sim = GridSimulator(topology, SimulationOptions(runtime_jitter=0.0))
    report = benchmark(lambda: sim.execute(plan.concrete))
    assert report.succeeded
    # two transfers + one 10s default job + registration
    assert report.makespan > 10.0
