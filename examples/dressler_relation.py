#!/usr/bin/env python3
"""The science result (Figure 7): rediscovering Dressler's relation.

Runs one rich cluster through the full system, then reproduces the Aladin
overlay and the Mirage scatter plots in ASCII: symmetric (elliptical)
galaxies crowd the X-ray-bright cluster core, asymmetric (spiral) galaxies
scatter through the outskirts.

Run:  python examples/dressler_relation.py [cluster]
"""

import sys

import numpy as np

from repro.catalog.crossmatch import local_density, radial_separation_deg
from repro.portal import (
    analyze_dynamics,
    analyze_morphology_catalog,
    ascii_histogram,
    ascii_overlay,
    ascii_scatter,
    build_demo_environment,
)
from repro.sky.registry_data import demonstration_cluster


def main(cluster_name: str = "A2029") -> None:
    cluster = demonstration_cluster(cluster_name)
    env = build_demo_environment(clusters=[cluster])
    session = env.portal.run_analysis(cluster_name)
    merged = session.merged

    analysis = analyze_morphology_catalog(merged, cluster)
    print(analysis.summary())

    print("\n=== the Figure 7 overlay (X-ray background + asymmetry-graded galaxies) ===\n")
    print(ascii_overlay(merged, cluster))

    rows = [r for r in merged if r["valid"]]
    ra = np.array([r["ra"] for r in rows])
    dec = np.array([r["dec"] for r in rows])
    asym = np.array([r["asymmetry"] for r in rows])
    conc = np.array([r["concentration"] for r in rows])
    radius = radial_separation_deg(cluster.center.ra, cluster.center.dec, ra, dec)
    density = local_density(ra, dec)

    print("\n=== asymmetry vs cluster-centric radius (Mirage-style scatter) ===\n")
    print(ascii_scatter(radius, asym, xlabel="radius [deg]", ylabel="asymmetry"))

    print("\n=== concentration vs local galaxy density ===\n")
    print(ascii_scatter(np.log10(density), conc, xlabel="log10 density", ylabel="concentration"))

    print("\n=== asymmetry distribution ===\n")
    print(ascii_histogram(asym, bins=12, label="asymmetry index"))

    print("\n=== dynamical state (the §2 science goal) ===\n")
    state = analyze_dynamics(merged, cluster, n_shuffles=300)
    print(state.summary())

    print("\nradial trend (quantile bins):")
    for center, a, f, n in zip(
        analysis.radial.bin_centers,
        analysis.radial.mean_asymmetry,
        analysis.radial.early_fraction,
        analysis.radial.counts,
    ):
        bar = "#" * int(round(f * 30))
        print(f"  r~{center:.3f} deg  mean A={a:.3f}  early fraction {f:4.2f} |{bar}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "A2029")
