#!/usr/bin/env python3
"""One astronomer's walk through the Galaxy Morphology portal (Figure 5).

Stage by stage: pick a cluster from the portal's list, see the context
images the three archives return, build the galaxy catalog from the two
cone-search services, resolve the cutout references, ship the VOTable to
the compute web service, poll its status URL, and merge the results.

Run:  python examples/portal_session.py [cluster]
"""

import sys

from repro.portal import build_demo_environment
from repro.sky.registry_data import demonstration_cluster
from repro.votable.writer import to_mirage_format


def main(cluster_name: str = "MS0451") -> None:
    env = build_demo_environment(clusters=[demonstration_cluster(cluster_name)])
    portal = env.portal

    print("clusters on offer:", ", ".join(portal.list_clusters()))
    print(f"\n-- selecting {cluster_name} --")
    session = portal.select_cluster(cluster_name)
    print(f"large-scale context images found: {session.n_context_images}")
    for url in session.context_image_links[:4]:
        print("   ", url)
    print("    ...")

    print("\n-- building the galaxy catalog (two cone searches + positional join) --")
    catalog = portal.build_catalog(session)
    print(f"matched galaxies: {len(catalog)}; columns: {', '.join(catalog.field_names())}")

    print("\n-- resolving cutout references (one SIA query per galaxy) --")
    vot = portal.resolve_cutouts(session)
    print("first cutout URL:", vot.row(0)["cutout_url"])
    print(f"virtual seconds spent on SIA so far: {env.meter.total('sia-query'):.1f}")

    print("\n-- submitting to the compute web service and polling --")
    portal.submit_and_wait(session)
    print(f"status URL: {session.status_url}")
    print(f"polls until completion: {session.polls}")

    print("\n-- merging computed parameters into the catalog --")
    merged = portal.merge_results(session)
    print(f"merged rows: {len(merged)}")
    header = f"{'id':<14s} {'mag':>6s} {'C':>6s} {'A':>6s} {'valid':>6s}"
    print(header)
    for row in list(merged)[:8]:
        c = f"{row['concentration']:.2f}" if row["concentration"] is not None else "-"
        a = f"{row['asymmetry']:.3f}" if row["asymmetry"] is not None else "-"
        print(f"{row['id']:<14s} {row['mag_r']:>6.2f} {c:>6s} {a:>6s} {str(row['valid']):>6s}")

    print("\nMirage export of the first rows (the tool the authors plugged in):")
    print("\n".join(to_mirage_format(merged).splitlines()[:4]))

    print("\ntransport cost breakdown (virtual seconds):")
    for category, seconds in sorted(env.meter.breakdown().items()):
        print(f"  {category:<14s} {seconds:8.1f}s  ({env.meter.count(category)} requests)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "MS0451")
