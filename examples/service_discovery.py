#!/usr/bin/env python3
"""Service discovery and failover: the capabilities the paper asked for.

§5 of the paper lists what the prototype lacked: "a registry of data and
service resources ... allow[ing] users to discover and choose the
appropriate data resources rather than being limited to the ones that were
hard-coded into the portal", with "a higher level of fault tolerance and
recovery".  This example builds both: an NVO resource registry holding
redundant archives, capability+waveband+position discovery, and a failover
facade that survives an archive outage mid-session.

Run:  python examples/service_discovery.py
"""

from repro.core.errors import ServiceError
from repro.services.conesearch import SyntheticPhotometryCatalog, SyntheticRedshiftCatalog
from repro.services.nvoregistry import (
    FailoverConeSearch,
    FailoverSIA,
    ResourceRecord,
    ResourceRegistry,
    SkyCoverage,
)
from repro.services.protocol import ConeSearchRequest, SIARequest
from repro.services.sia import OpticalImageArchive, XrayImageArchive
from repro.sky.registry_data import demonstration_cluster


def main() -> None:
    cluster = demonstration_cluster("A0085")
    clusters = [cluster]

    # --- populate the registry with (redundant) resources ------------------
    registry = ResourceRegistry()
    registry.register(
        ResourceRecord(
            "ivo://mast/dss", "DSS at MAST", "sia",
            OpticalImageArchive(clusters, tiles_per_cluster=9),
            waveband="optical", publisher="MAST",
        )
    )
    registry.register(
        ResourceRecord(
            "ivo://mirror/dss", "DSS mirror", "sia",
            OpticalImageArchive(clusters, tiles_per_cluster=9),
            waveband="optical", publisher="Mirror Site",
        )
    )
    registry.register(
        ResourceRecord(
            "ivo://heasarc/rosat", "ROSAT at HEASARC", "sia",
            XrayImageArchive(clusters, tiles_per_cluster=4),
            waveband="x-ray", publisher="HEASARC",
        )
    )
    registry.register(
        ResourceRecord(
            "ivo://ipac/ned", "NED at IPAC", "cone-search",
            SyntheticPhotometryCatalog(clusters),
            waveband="optical", publisher="IPAC",
        )
    )
    registry.register(
        ResourceRecord(
            "ivo://cadc/cnoc", "CNOC at CADC", "cone-search",
            SyntheticRedshiftCatalog(clusters),
            waveband="optical", publisher="CADC",
            coverage=SkyCoverage(cluster.center.ra, cluster.center.dec, 20.0),
        )
    )

    print(f"registry holds {len(registry)} resources\n")

    # --- discovery by capability / waveband / position --------------------
    print("discover: SIA services in the optical covering the target field")
    optical = registry.discover(
        capability="sia", waveband="optical",
        ra=cluster.center.ra, dec=cluster.center.dec,
    )
    for record in optical:
        print(f"  {record.identifier:<22s} {record.title} ({record.publisher})")

    print("\ndiscover: x-ray imaging")
    for record in registry.discover(capability="sia", waveband="x-ray"):
        print(f"  {record.identifier:<22s} {record.title}")

    # --- failover: survive an archive outage ------------------------------
    print("\n-- failover demonstration --")
    facade = FailoverSIA(optical)
    request = SIARequest(cluster.center.ra, cluster.center.dec, 2.2 * cluster.tidal_radius_deg)
    table = facade.query(request)
    print(f"query via {facade.active_identifier}: {len(table)} images")

    # the primary archive goes dark mid-session
    primary = optical[0]

    def outage(*args, **kwargs):
        raise ServiceError(f"{primary.title} is down for maintenance")

    primary.service.query = outage  # type: ignore[assignment]
    table = facade.query(request)
    print(
        f"after the primary's outage: query answered by {facade.active_identifier} "
        f"({len(table)} images); failures so far: {facade.failures}"
    )

    # cone search failover too
    cone = FailoverConeSearch(registry.discover(capability="cone-search", waveband="optical"))
    rows = cone.search(
        ConeSearchRequest(cluster.center.ra, cluster.center.dec, cluster.tidal_radius_deg)
    )
    print(f"\ncone search via {cone.active_identifier}: {len(rows)} records")


if __name__ == "__main__":
    main()
