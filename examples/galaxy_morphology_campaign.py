#!/usr/bin/env python3
"""The full §5 campaign: eight clusters, three Condor pools, real pixels.

Reproduces the paper's headline run — "1152 compute jobs ... 1525 images,
corresponding to 30MB of data ... 2295 files" — and prints the measured
totals next to the published ones, plus the per-cluster science verdicts.

Run:  python examples/galaxy_morphology_campaign.py          (all 8, ~15 s)
      python examples/galaxy_morphology_campaign.py A3526    (one cluster)
"""

import sys
import time

from repro.portal import build_demo_environment
from repro.portal.campaign import run_campaign


def main(only: str | None = None) -> None:
    env = build_demo_environment()
    names = [only] if only else None

    t0 = time.time()
    report = run_campaign(env, cluster_names=names)
    elapsed = time.time() - t0

    print(report.totals_table())
    print(f"\nwall time for the whole campaign (real computation): {elapsed:.1f}s")
    print(f"pools used: {', '.join(report.pools_used())}")

    print(
        f"\n{'cluster':<8s} {'gal':>4s} {'jobs':>5s} {'xfers':>6s} "
        f"{'valid':>6s} {'A-r corr':>9s} {'dressler':>9s}"
    )
    for record in report.records:
        analysis = record.analysis
        corr = f"{analysis.asymmetry_radius_spearman:+.2f}" if analysis else "n/a"
        verdict = "yes" if (analysis and analysis.rediscovered) else "n/a"
        print(
            f"{record.cluster:<8s} {record.galaxies:>4d} {record.compute_jobs:>5d} "
            f"{record.transfers:>6d} {record.valid_measurements:>6d} {corr:>9s} {verdict:>9s}"
        )

    jobs_by_site: dict[str, int] = {}
    for record in report.records:
        for site, n in record.jobs_per_site.items():
            jobs_by_site[site] = jobs_by_site.get(site, 0) + n
    print("\ncompute jobs per site (the three-pool spread of §5 + the service host):")
    for site, n in sorted(jobs_by_site.items(), key=lambda kv: -kv[1]):
        print(f"  {site:<12s} {n:>5d}")

    full = [r.analysis for r in report.records if r.analysis]
    print(
        f"\nDressler density-morphology relation rediscovered in "
        f"{sum(a.rediscovered for a in full)}/{len(full)} clusters."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
