#!/usr/bin/env python3
"""Tuning the Grid: job clustering and MDS-aware scheduling, side by side.

The campaign's galMorph jobs are "fairly light" (§2), so two systems-level
knobs dominate wall-clock: how many jobs share one Condor-G submission
(horizontal clustering) and whether the planner knows the pools' live load
(the MDS integration the paper lists as future work).  This example sweeps
both on a simulated 150-galaxy workflow.

Run:  python examples/grid_tuning.py
"""

from repro.condor.mds import MdsSiteSelector, MonitoringService, ResourceRecord
from repro.condor.pool import CondorPool, GridTopology
from repro.condor.simulator import GridSimulator, SimulationOptions
from repro.pegasus.clustering import cluster_workflow
from repro.pegasus.options import PlannerOptions
from repro.pegasus.planner import PegasusPlanner
from repro.rls.rls import ReplicaLocationService
from repro.tc.catalog import TransformationCatalog
from repro.workflow.abstract import AbstractJob, AbstractWorkflow

N_JOBS = 150
JOB_OVERHEAD_S = 25.0
EXTERNAL_LOAD = {"isi": 0, "uwisc": 16, "fnal": 0}


def topology() -> GridTopology:
    topo = GridTopology()
    topo.add_pool(CondorPool("isi", slots=12, speed=1.0))
    topo.add_pool(CondorPool("uwisc", slots=20, speed=1.1))
    topo.add_pool(CondorPool("fnal", slots=12, speed=0.9))
    return topo


def loaded_topology() -> GridTopology:
    topo = GridTopology()
    for name, pool in topology().pools.items():
        topo.add_pool(
            CondorPool(name, slots=max(pool.slots - EXTERNAL_LOAD[name], 1), speed=pool.speed)
        )
    return topo


def build_planner(selector_factory=None) -> tuple[PegasusPlanner, AbstractWorkflow]:
    rls = ReplicaLocationService()
    for site in ("isi", "uwisc", "fnal", "store"):
        rls.add_site(site)
    tc = TransformationCatalog()
    for site in ("isi", "uwisc", "fnal"):
        tc.install("galMorph", site, "/bin/galmorph")
    tc.install("concatVOTable", "store", "/bin/concat")
    jobs = []
    for i in range(N_JOBS):
        rls.register(f"g{i}.fit", f"gsiftp://store.grid/data/g{i}.fit", "store")
        jobs.append(AbstractJob(f"d{i}", "galMorph", (f"g{i}.fit",), (f"g{i}.txt",)))
    jobs.append(
        AbstractJob("cat", "concatVOTable", tuple(f"g{i}.txt" for i in range(N_JOBS)), ("all.vot",))
    )
    planner = PegasusPlanner(
        rls,
        tc,
        PlannerOptions(output_site="store", site_selection="random"),
        site_selector_factory=selector_factory,
    )
    return planner, AbstractWorkflow(jobs)


def simulate(plan_concrete, topo) -> float:
    sim = GridSimulator(topo, SimulationOptions(runtime_jitter=0.0, job_overhead_s=JOB_OVERHEAD_S))
    report = sim.execute(plan_concrete)
    assert report.succeeded
    return report.makespan


def main() -> None:
    print(f"{N_JOBS} galMorph jobs, {JOB_OVERHEAD_S:.0f}s Condor-G overhead per submission\n")

    # --- knob 1: clustering ------------------------------------------------
    planner, workflow = build_planner()
    plan = planner.plan(workflow)
    print("clustering sweep (idle pools):")
    print(f"{'bundle':>7s} {'units':>6s} {'makespan':>9s}")
    for size in (1, 2, 4, 8, 16):
        cw = plan.concrete if size == 1 else cluster_workflow(plan.concrete, size)
        units = len(cw.compute_nodes()) + len(cw.clustered_nodes())
        print(f"{size:>7d} {units:>6d} {simulate(cw, topology()):>8.1f}s")

    # --- knob 2: MDS-aware placement under external load --------------------
    print(f"\nexternal load: uwisc has {EXTERNAL_LOAD['uwisc']}/20 slots busy")
    mds = MonitoringService()
    for name, pool in topology().pools.items():
        mds.publish(ResourceRecord(name, pool.slots, EXTERNAL_LOAD[name], pool.speed, 0.0))
    # the service host advertises itself too (it runs the concat job)
    mds.publish(ResourceRecord("store", 2, 0, 1.0, 0.0))

    static_plan = build_planner()[0].plan(workflow)
    planner_mds, _ = build_planner(lambda: MdsSiteSelector(mds))
    mds_plan = planner_mds.plan(workflow)

    static_makespan = simulate(static_plan.concrete, loaded_topology())
    mds_makespan = simulate(mds_plan.concrete, loaded_topology())
    print(f"{'random placement':<22s} {static_makespan:>8.1f}s")
    print(f"{'MDS-aware placement':<22s} {mds_makespan:>8.1f}s "
          f"({static_makespan / mds_makespan:.2f}x faster)")

    # --- both together -------------------------------------------------------
    best = simulate(cluster_workflow(mds_plan.concrete, 4), loaded_topology())
    print(f"{'MDS + bundles of 4':<22s} {best:>8.1f}s "
          f"({static_makespan / best:.2f}x faster than naive)")


if __name__ == "__main__":
    main()
