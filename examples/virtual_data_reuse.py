#!/usr/bin/env python3
"""Virtual data in action: reduction, caching, and the RLS short circuit.

Three escalating demonstrations of the paper's §3.2 claim that "it is more
costly to execute a component (a job) than to access the results":

1. the textbook Figure 1 -> 3 -> 4 reduction on the paper's own example;
2. a partially-materialised cluster workflow (another user already analysed
   half the galaxies) — Pegasus runs only the remainder;
3. the web service's RLS short circuit — a repeated request never touches
   the Grid at all.

Run:  python examples/virtual_data_reuse.py
"""

from repro.portal import build_demo_environment
from repro.rls.rls import ReplicaLocationService
from repro.sky.registry_data import demonstration_cluster
from repro.tc.catalog import TransformationCatalog
from repro.pegasus.options import PlannerOptions
from repro.pegasus.planner import PegasusPlanner
from repro.vdl.catalog import VirtualDataCatalog
from repro.vdl.composer import compose_workflow
from repro.workflow.viz import render_ascii


def figure_1_3_4() -> None:
    print("=" * 70)
    print("1. the paper's own example (Figures 1, 3, 4)")
    print("=" * 70)
    catalog = VirtualDataCatalog()
    catalog.define(
        """
        TR t1( in x, out y ) { }
        TR t2( in x, out y ) { }
        DV d1->t1( x=@{in:"a"}, y=@{out:"b"} );
        DV d2->t2( x=@{in:"b"}, y=@{out:"c"} );
        """
    )
    workflow = compose_workflow(catalog, ["c"])
    rls = ReplicaLocationService()
    for site in ("A", "B", "U"):
        rls.add_site(site)
    rls.register("a", "gsiftp://A.grid/data/a", "A")
    tc = TransformationCatalog()
    tc.install("t1", "B", "/bin/t1")
    tc.install("t2", "B", "/bin/t2")
    planner = PegasusPlanner(
        rls, tc, PlannerOptions(output_site="U", site_selection="round-robin", replica_selection="first")
    )

    print("\nrequest c with only raw a in the RLS:")
    print(render_ascii(planner.plan(workflow).concrete.dag))

    rls.register("b", "gsiftp://A.grid/data/b", "A")
    print("\nnow b is materialised (Figure 3): d1 is pruned (Figure 4):")
    plan = planner.plan(workflow)
    print(render_ascii(plan.concrete.dag))
    print("pruned jobs:", list(plan.reduction.pruned_jobs))


def partially_materialised_cluster() -> None:
    print()
    print("=" * 70)
    print("2. half the cluster was already analysed by someone else")
    print("=" * 70)
    cluster = demonstration_cluster("A2390")  # 68 galaxies
    env = build_demo_environment(clusters=[cluster], seed_virtual_data_reuse=False)
    session = env.portal.select_cluster("A2390")
    env.portal.build_catalog(session)
    vot = env.portal.resolve_cutouts(session)

    # First run: everything computes; its per-galaxy results are registered.
    env.compute_service.gal_morph_compute(vot, "first.vot", "A2390")
    first = list(env.compute_service.requests.values())[-1]
    print(f"\nfirst analysis: {len(first.plan.reduced)} jobs executed")

    # Drop the final VOTable from the RLS but keep the per-galaxy results —
    # exactly the state a *different* output request sees.
    url = env.compute_service.gal_morph_compute(vot, "second.vot", "A2390")
    second = list(env.compute_service.requests.values())[-1]
    print(
        f"second analysis (different output name): {len(second.plan.reduced)} job(s) "
        f"executed, {len(second.plan.reduction.pruned_jobs)} pruned, "
        f"{len(second.plan.reduction.reused_lfns)} results reused from the RLS"
    )
    print("status:", env.compute_service.poll(url).state)


def short_circuit() -> None:
    print()
    print("=" * 70)
    print("3. the web service's RLS short circuit (Figure 6 step 2)")
    print("=" * 70)
    cluster = demonstration_cluster("A3526")
    env = build_demo_environment(clusters=[cluster])
    session = env.portal.select_cluster("A3526")
    env.portal.build_catalog(session)
    vot = env.portal.resolve_cutouts(session)

    env.compute_service.gal_morph_compute(vot, "morph.vot", "A3526")
    first = list(env.compute_service.requests.values())[-1]
    env.compute_service.gal_morph_compute(vot, "morph.vot", "A3526")
    repeat = list(env.compute_service.requests.values())[-1]
    print(f"\nfirst request: short-circuited={first.short_circuited}, "
          f"downloads={first.images_downloaded}, jobs={len(first.report.compute_runs)}")
    print(f"repeat request: short-circuited={repeat.short_circuited}, "
          f"downloads={repeat.images_downloaded}, jobs=0")


if __name__ == "__main__":
    figure_1_3_4()
    partially_materialised_cluster()
    short_circuit()
