#!/usr/bin/env python3
"""Quickstart: virtual data in ten minutes.

Builds a small Grid (three Condor pools + a storage site), teaches Chimera
two transformations in the paper's Virtual Data Language, publishes one raw
file — and then simply *asks for* the final product.  Pegasus figures out
the rest: the abstract workflow (Figure 1), the concrete workflow with
transfers and registration (Figure 4), and DAGMan executes it for real.

Run:  python examples/quickstart.py
"""

from repro.core import VirtualDataSystem
from repro.pegasus.options import PlannerOptions
from repro.workflow.viz import render_ascii


def main() -> None:
    # 1. A Grid: the default demo topology (isi / uwisc / fnal pools) plus
    #    one storage site for inputs and delivered products.
    vds = VirtualDataSystem(
        planner_options=PlannerOptions(output_site="storage", site_selection="round-robin")
    )
    vds.add_storage_site("storage")

    # 2. Teach Chimera what can be derived (the paper's VDL dialect).
    vds.define(
        """
        TR sharpen( in image, out sharpened ) { }
        TR catalogize( in sharpened, out catalog ) { }

        DV step1->sharpen( image=@{in:"raw.fits"}, sharpened=@{out:"clean.fits"} );
        DV step2->catalogize( sharpened=@{in:"clean.fits"}, catalog=@{out:"sources.cat"} );
        """
    )

    # 3. Provide the executables (the Transformation Catalog says *where*
    #    they are installed; the registry says *what they do* locally).
    vds.registry.register("sharpen", lambda job, inputs: {job.outputs[0]: inputs["raw.fits"].upper()})
    vds.registry.register(
        "catalogize", lambda job, inputs: {job.outputs[0]: b"CATALOG OF " + inputs["clean.fits"]}
    )
    for pool in ("isi", "uwisc", "fnal"):
        vds.tc.install("sharpen", pool, "/usr/local/bin/sharpen")
        vds.tc.install("catalogize", pool, "/usr/local/bin/catalogize")

    # 4. Publish the raw data somewhere in the Grid.
    vds.publish("raw.fits", b"pixels of the night sky", "storage")

    # 5. Ask for the product.  Chimera composes, Pegasus plans, DAGMan runs.
    plan, report = vds.materialize(["sources.cat"])

    print("abstract workflow (Figure 1 style):")
    print(render_ascii(plan.abstract.dag))
    print("\nconcrete workflow (Figure 4 style):")
    print(render_ascii(plan.concrete.dag))
    print("\nexecution:", report.summary())
    print("result bytes:", vds.retrieve("sources.cat").decode())

    # 6. Ask again: the product is already materialised, so the reduction
    #    prunes *everything* — this is the virtual-data payoff.
    plan2 = vds.plan(["sources.cat"])
    print(
        f"\nsecond request: {len(plan2.reduced)} jobs to run "
        f"(reused: {list(plan2.reduction.reused_lfns)})"
    )

    # 7. And the provenance answers "how was this made?"
    print("\nprovenance of sources.cat:")
    for record in vds.provenance.lineage("sources.cat"):
        print(f"  {record.job_id}: {record.transformation} @ {record.site}")


if __name__ == "__main__":
    main()
